#!/usr/bin/env python3
"""Programming Model 1 in full: MPI across blocks, shared memory inside.

Section IV: "use a shared-memory model inside each block and MPI across
blocks.  The MPI_Send and MPI_Recv calls can be implemented cheaply [over]
an on-chip uncacheable shared buffer."

This example computes a distributed dot product on the 4-block × 8-core
machine: inside each block the threads share memory (barrier-annotated
partial sums), and block leaders exchange partials with MPI — a broadcast
distributes the final answer back.

Run:  python examples/hybrid_mpi.py
"""

from repro import Machine, inter_block_machine
from repro.core.config import INTER_ADDR_L
from repro.mpi.api import MPIComm

N = 512
BLOCKS = 4
PER_BLOCK = 8
THREADS = BLOCKS * PER_BLOCK


def program(ctx, comm, x, y, partials, out):
    tid = ctx.tid
    block = tid // PER_BLOCK
    leader = block * PER_BLOCK  # first thread of the block
    chunk = N // THREADS
    lo = tid * chunk

    # Shared-memory phase (inside the block): compute a thread partial and
    # post it in the block's partial slot region, barrier-ordered.
    acc = 0.0
    for i in range(lo, lo + chunk):
        xv = yield from ctx.load(x.addr(i))
        yv = yield from ctx.load(y.addr(i))
        acc += xv * yv
    yield from ctx.store(partials.addr(tid), acc)
    yield from ctx.barrier()

    if tid == leader:
        # Leader sums its block's partials (shared memory, same block).
        block_sum = 0.0
        for t in range(leader, leader + PER_BLOCK):
            v = yield from ctx.load(partials.addr(t))
            block_sum += v
        # MPI phase: non-root leaders send to the root leader.
        if block == 0:
            total = block_sum
            for other in range(1, BLOCKS):
                values = yield from comm.recv(ctx, other * PER_BLOCK)
                total += values[0]
        else:
            yield from comm.send(ctx, 0, [block_sum])
            total = None
        # Root broadcasts the final dot product to every leader.
        values = yield from comm.bcast(
            ctx, 0, [total] if block == 0 else None
        )
        yield from ctx.store(out.addr(block), values[0])
    else:
        # Non-leaders also participate in the broadcast (single write by
        # the root; every rank reads the same buffer).
        yield from comm.bcast(ctx, 0, None)
    yield from ctx.barrier()


def main():
    machine = Machine(inter_block_machine(BLOCKS, PER_BLOCK), INTER_ADDR_L,
                      num_threads=THREADS)
    comm = MPIComm(machine)
    x = machine.array("x", N)
    y = machine.array("y", N)
    partials = machine.array("partials", THREADS)
    out = machine.array("out", BLOCKS)

    xs = [0.5 + (i % 5) for i in range(N)]
    ys = [1.0 + (i % 3) for i in range(N)]
    mem = machine.hier.memory
    for i in range(N):
        mem.write_word(x.addr(i) // 4, xs[i])
        mem.write_word(y.addr(i) // 4, ys[i])

    machine.spawn_all(lambda ctx: program(ctx, comm, x, y, partials, out))
    stats = machine.run()

    want = sum(a * b for a, b in zip(xs, ys))
    for b in range(BLOCKS):
        got = machine.read_word(out.addr(b))
        assert abs(got - want) < 1e-9 * want, (b, got, want)
    print(f"dot(x, y) = {want:.1f}  (all {BLOCKS} block leaders agree)")
    print(f"exec time: {stats.exec_time} cycles; total traffic: "
          f"{stats.total_flits} flits")
    print("Shared memory carried the intra-block partials; MPI over the")
    print("uncacheable ring buffers carried the inter-block exchange.")


if __name__ == "__main__":
    main()
