#!/usr/bin/env python3
"""Figure 6: data races on the incoherent hierarchy, broken and fixed.

"Assume that two processors try to communicate with a store and a spinloop
on a variable flag ... In an incoherent cache hierarchy, the consumer may
never see the update."  This example demonstrates exactly that — a consumer
spinning on a cached flag reads its own stale copy forever — and then the
Figure-6b fix: augment the racy store with WB (data first, then flag) and
the racy load with INV.

Run:  python examples/data_race_demo.py
"""

from repro import INTRA_BASE, Machine, intra_block_machine
from repro.common.errors import DeadlockError
from repro.isa import ops as isa

SPIN_LIMIT = 50  # a real spinloop would hang; we bound it for the demo


def broken_program(ctx, arr, outcome):
    """Racy flag communication with NO annotations: the update is invisible."""
    if ctx.tid == 0:
        yield isa.Write(arr.addr(0), 42)  # data
        yield isa.Write(arr.addr(16), 1)  # flag (different line)
        # ... and no WB: the values sit in core 0's L1 forever.
    else:
        spins = 0
        while spins < SPIN_LIMIT:
            flag = yield isa.Read(arr.addr(16))  # hits the stale L1 copy
            if flag:
                break
            spins += 1
            yield isa.Compute(10)
        outcome["saw_flag"] = spins < SPIN_LIMIT
        outcome["spins"] = spins


def fixed_program(ctx, arr, outcome):
    """Figure 6b: WB after the stores, INV before the loads."""
    if ctx.tid == 0:
        yield from ctx.store(arr.addr(0), 42)
        yield isa.WB(arr.addr(0), 4)  # post the data FIRST
        yield from ctx.racy_store(arr.addr(16), 1)  # store + WB(flag)
    else:
        spins = 0
        while True:
            flag = yield from ctx.racy_load(arr.addr(16))  # INV + load
            if flag:
                break
            spins += 1
            yield isa.Compute(10)
        value = yield from ctx.racy_load(arr.addr(0))
        outcome["saw_flag"] = True
        outcome["spins"] = spins
        outcome["data"] = value


def run(program):
    machine = Machine(intra_block_machine(2), INTRA_BASE, num_threads=2)
    arr = machine.array("a", 32)
    outcome = {}
    machine.spawn_all(lambda ctx: program(ctx, arr, outcome))
    machine.run()
    return outcome


def main():
    broken = run(broken_program)
    print("Without WB/INV (the race, as written):")
    print(f"  consumer spun {broken['spins']} times and "
          f"{'saw' if broken['saw_flag'] else 'NEVER saw'} the flag")
    assert not broken["saw_flag"], "incoherent caches should hide the update"

    fixed = run(fixed_program)
    print("\nWith Figure-6b annotations (WB data, WB flag / INV flag, INV data):")
    print(f"  consumer saw the flag after {fixed['spins']} spins and "
          f"read data = {fixed['data']}")
    assert fixed["data"] == 42

    print("\nIf the program can be rewritten, the better fix is real")
    print("synchronization (flags served by the sync controller) — see")
    print("examples/task_queue_occ.py.")


if __name__ == "__main__":
    main()
