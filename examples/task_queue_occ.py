#!/usr/bin/env python3
"""Outside-critical-section communication (OCC) and the entry buffers.

The paper's Figure 4d pattern: threads publish work items *outside* any
critical section, enqueue descriptors under a lock, and other threads
dequeue and consume the published data — ordered only by the dynamically-
determined dequeue order.  The Model-1 annotator handles this with a WB ALL
before each acquire and an INV ALL after each release (plus the critical-
section INV/WB), and the MEB/IEB make the critical sections cheap.

This example runs a work-stealing pipeline under all five intra-block
configurations and prints how the MEB/IEB recover the Base configuration's
lock-stall overhead.

Run:  python examples/task_queue_occ.py
"""

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_CONFIGS
from repro.sim.stats import StallCat

N_TASKS = 48
PAYLOAD = 8  # words of data published per task
QUEUE_LOCK = 0


def program(ctx, queue, payload, results):
    n = ctx.nthreads
    yield from ctx.barrier()

    # Phase 1: every thread produces tasks and enqueues descriptors.
    my_tasks = range(ctx.tid, N_TASKS, n)
    for task in my_tasks:
        # Publish the payload OUTSIDE the critical section.
        for w in range(PAYLOAD):
            yield from ctx.store(payload.addr(task * PAYLOAD + w), task * 100 + w)
        # Enqueue the descriptor (critical section, OCC assumed).
        yield from ctx.lock_acquire(QUEUE_LOCK, occ=True)
        tail = yield from ctx.load(queue.addr(0))
        yield from ctx.store(queue.addr(2 + int(tail)), task)
        yield from ctx.store(queue.addr(0), int(tail) + 1)
        yield from ctx.lock_release(QUEUE_LOCK, occ=True)

    yield from ctx.barrier()

    # Phase 2: everyone dequeues and processes whatever is available.
    while True:
        yield from ctx.lock_acquire(QUEUE_LOCK, occ=True)
        head = yield from ctx.load(queue.addr(1))
        tail = yield from ctx.load(queue.addr(0))
        if int(head) >= int(tail):
            yield from ctx.lock_release(QUEUE_LOCK, occ=True)
            break
        task = yield from ctx.load(queue.addr(2 + int(head)))
        yield from ctx.store(queue.addr(1), int(head) + 1)
        yield from ctx.lock_release(QUEUE_LOCK, occ=True)
        # Consume the payload OUTSIDE the critical section (OCC!).
        acc = 0
        for w in range(PAYLOAD):
            v = yield from ctx.load(payload.addr(int(task) * PAYLOAD + w))
            acc += v
        yield from ctx.store(results.addr(int(task)), acc)
    yield from ctx.barrier()


def main():
    expected = [
        sum(t * 100 + w for w in range(PAYLOAD)) for t in range(N_TASKS)
    ]
    print(
        f"{'config':8s} {'exec':>8s} {'lock stall':>11s} "
        f"{'wb stall':>9s} {'inv stall':>10s}"
    )
    for config in INTRA_CONFIGS:
        machine = Machine(intra_block_machine(8), config, num_threads=8)
        queue = machine.array("queue", 2 + N_TASKS)  # tail, head, slots
        payload = machine.array("payload", N_TASKS * PAYLOAD)
        results = machine.array("results", N_TASKS)
        machine.spawn_all(lambda ctx: program(ctx, queue, payload, results))
        stats = machine.run()
        got = [machine.read_word(results.addr(t)) for t in range(N_TASKS)]
        assert got == expected, f"{config.name}: OCC data was lost!"
        print(
            f"{config.name:8s} {stats.exec_time:8d} "
            f"{stats.stall_total(StallCat.LOCK):11d} "
            f"{stats.stall_total(StallCat.WB):9d} "
            f"{stats.stall_total(StallCat.INV):10d}"
        )
    print("\nEvery configuration consumed all published payloads correctly —")
    print("the OCC annotations make dynamically-ordered communication safe.")


if __name__ == "__main__":
    main()
