#!/usr/bin/env python3
"""Quickstart: a producer-consumer program on the incoherent hierarchy.

Builds a 4-core block, runs the same barrier-synchronized program under
hardware coherence (HCC) and under the incoherent hierarchy with Model-1
annotations (Base and B+M+I), verifies the results match, and prints the
execution-time and traffic comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    INTRA_BASE,
    INTRA_BMI,
    INTRA_HCC,
    Machine,
    intra_block_machine,
)

N = 256


def program(ctx, data, out):
    """Each thread fills a chunk, then consumes its neighbor's chunk.

    ``ctx.barrier()`` carries the Figure-4a annotations automatically: a
    WB ALL before the barrier and an INV ALL after it (no-ops under HCC).
    """
    chunk = N // ctx.nthreads
    lo = ctx.tid * chunk
    for i in range(lo, lo + chunk):
        yield from ctx.store(data.addr(i), i * i)
    yield from ctx.barrier()

    src = ((ctx.tid + 1) % ctx.nthreads) * chunk
    for k in range(chunk):
        value = yield from ctx.load(data.addr(src + k))
        yield from ctx.store(out.addr(lo + k), value + 1)
    yield from ctx.barrier()


def run(config):
    machine = Machine(intra_block_machine(4), config, num_threads=4)
    data = machine.array("data", N)
    out = machine.array("out", N)
    machine.spawn_all(lambda ctx: program(ctx, data, out))
    stats = machine.run()

    # Verify against the obvious sequential answer.
    chunk = N // 4
    for t in range(4):
        src = ((t + 1) % 4) * chunk
        for k in range(chunk):
            got = machine.read_word(out.addr(t * chunk + k))
            assert got == (src + k) ** 2 + 1, (config.name, t, k, got)
    return stats


def main():
    print(f"{'config':8s} {'exec cycles':>12s} {'flits':>8s} {'L1 misses':>10s}")
    for config in (INTRA_HCC, INTRA_BASE, INTRA_BMI):
        stats = run(config)
        s = stats.summary()
        print(
            f"{config.name:8s} {stats.exec_time:12d} "
            f"{stats.total_flits:8d} {s['l1_misses']:10d}"
        )
    print("\nAll three configurations produced identical, correct results.")


if __name__ == "__main__":
    main()
