#!/usr/bin/env python3
"""Model 2 end to end: compile a stencil, inspect the plan, run level-adaptive.

Builds a 1-D stencil program in the Model-2 IR, runs the mini-ROSE pipeline
(CFG → DEF-USE → instrumentation plan), prints the WB_CONS/INV_PROD
directives the compiler inserted, then executes under Addr and Addr+L on the
4-block × 8-core machine and reports how many WB/INV lines stayed inside a
block — including under a scrambled thread placement, which the ThreadMap
hardware absorbs without recompilation.

Run:  python examples/level_adaptive_stencil.py
"""

from repro import Machine, inter_block_machine
from repro.compiler import ir
from repro.compiler.defuse import analyze
from repro.compiler.executor import ModelTwoRunner
from repro.compiler.interp import interpret
from repro.core.config import INTER_ADDR, INTER_ADDR_L
from repro.noc.placement import Placement, round_robin_placement

N = 256
ITERS = 3
THREADS = 32


def build_program():
    stencil = ir.ParallelFor(
        "stencil",
        N - 2,
        (
            ir.Assign(
                ir.Ref("b", ir.Affine(1, 1)),
                (
                    ir.Ref("a", ir.Affine(1, 0)),
                    ir.Ref("a", ir.Affine(1, 1)),
                    ir.Ref("a", ir.Affine(1, 2)),
                ),
                lambda i, w, c, e: (w + c + e) / 3.0,
            ),
        ),
    )
    copy = ir.ParallelFor(
        "copy",
        N - 2,
        (
            ir.Assign(
                ir.Ref("a", ir.Affine(1, 1)),
                (ir.Ref("b", ir.Affine(1, 1)),),
                lambda i, v: v,
            ),
        ),
    )
    return ir.IRProgram(
        "stencil1d", {"a": N, "b": N}, (ir.Loop(ITERS, (stencil, copy)),)
    )


def show_plan(program):
    plan = analyze(program, THREADS)
    print("Compiler-inserted directives for thread 8 (first of block 1):")
    for sid in sorted(plan.wb_after):
        for d in plan.wbs(sid, 8):
            print(
                f"  stmt {sid}: WB_CONS {d.array}[{d.lo}:{d.hi}] "
                f"-> consumers {sorted(d.cons) if d.cons else 'GLOBAL'}"
            )
    for sid in sorted(plan.inv_before):
        for d in plan.invs(sid, 8):
            print(
                f"  stmt {sid}: INV_PROD {d.array}[{d.lo}:{d.hi}] "
                f"<- producer {d.prod if d.prod is not None else 'GLOBAL'}"
            )


def run(program, config, placement=None):
    params = inter_block_machine(4, 8)
    machine = Machine(
        params,
        config,
        num_threads=None if placement else THREADS,
        placement=placement,
    )
    runner = ModelTwoRunner(machine, program)
    runner.preload("a", [float(i % 7) for i in range(N)])
    runner.spawn_all()
    stats = machine.run()
    return runner, stats


def main():
    program = build_program()
    show_plan(program)

    want = interpret(program, THREADS, {"a": [float(i % 7) for i in range(N)]})

    print(f"\n{'config':22s} {'exec':>8s} {'global wb/inv':>14s} {'local wb/inv':>13s}")
    for label, config, placement in (
        ("Addr", INTER_ADDR, None),
        ("Addr+L", INTER_ADDR_L, None),
        (
            "Addr+L (scattered)",
            INTER_ADDR_L,
            round_robin_placement(inter_block_machine(4, 8), THREADS),
        ),
    ):
        runner, stats = run(program, config, placement)
        assert runner.result("a") == want["a"], f"{label}: wrong result!"
        print(
            f"{label:22s} {stats.exec_time:8d} "
            f"{stats.global_wb_lines:6d}/{stats.global_inv_lines:<6d} "
            f"{stats.local_wb_lines:6d}/{stats.local_inv_lines:<6d}"
        )
    print(
        "\nThe same binary runs correctly under any placement; the ThreadMap"
        "\nhardware decides per WB_CONS/INV_PROD whether to stay in-block."
    )


if __name__ == "__main__":
    main()
