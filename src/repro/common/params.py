"""Architecture parameters (paper Table III).

All latencies are in core cycles and all sizes in bytes.  The paper models two
machines:

* **Intra-block** experiments: a single block of 16 out-of-order 4-issue cores,
  32 KB 4-way private L1 (2-cycle round trip), a shared L2 of one 128 KB 8-way
  bank per core (11-cycle local round trip), a 2D mesh at 4 cycles/hop with
  128-bit links, and off-chip memory at 150-cycle round trip.
* **Inter-block** experiments: 4 blocks of 8 cores each, plus a shared 16 MB L3
  in 4 banks (20-cycle local round trip).

Only parameters the operation-level simulator consumes are modeled; issue width
and ROB size appear as the ``overlap`` factor documented on
:class:`CoreParams`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Bytes per machine word; per-word dirty bits track this granularity.
WORD_BYTES = 4


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


def is_pow2(n: int) -> bool:
    """Return True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache (or one bank of a banked cache)."""

    size_bytes: int
    assoc: int
    line_bytes: int
    round_trip: int  # cycles, load-to-use for a local hit

    def __post_init__(self) -> None:
        _require(is_pow2(self.line_bytes), "line size must be a power of two")
        _require(self.line_bytes % WORD_BYTES == 0, "line must hold whole words")
        _require(self.assoc >= 1, "associativity must be >= 1")
        _require(
            self.size_bytes % (self.line_bytes * self.assoc) == 0,
            "cache size must be a whole number of sets",
        )
        _require(is_pow2(self.num_sets), "number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // WORD_BYTES

    @property
    def line_id_bits(self) -> int:
        """Bits needed to name a resident line (used to size MEB entries)."""
        return max(1, math.ceil(math.log2(self.num_lines)))


@dataclass(frozen=True)
class CoreParams:
    """Core model parameters.

    The paper simulates 4-issue out-of-order cores with a 176-entry ROB.  Our
    substitute is an in-order operation-level core; ``overlap`` is the fraction
    of a cache-hit latency hidden by instruction-level parallelism (0 hides
    nothing, 1 hides hits entirely).  Misses and WB/INV stalls are never
    hidden, matching the paper's observation that "the latency of WB and INV
    instructions is often hard to hide".
    """

    issue_width: int = 4
    rob_entries: int = 176
    overlap: float = 0.5

    def __post_init__(self) -> None:
        _require(self.issue_width >= 1, "issue width must be >= 1")
        _require(0.0 <= self.overlap <= 1.0, "overlap must be within [0, 1]")


@dataclass(frozen=True)
class MeshParams:
    """2D mesh interconnect: 4 cycles/hop, 128-bit (16-byte) links."""

    cycles_per_hop: int = 4
    link_bytes: int = 16  # 128-bit flits

    def __post_init__(self) -> None:
        _require(self.cycles_per_hop >= 0, "hop latency must be >= 0")
        _require(self.link_bytes > 0, "flit width must be positive")

    def flits(self, payload_bytes: int) -> int:
        """Number of flits to carry *payload_bytes* (header rides flit 0)."""
        return max(1, math.ceil(payload_bytes / self.link_bytes))


@dataclass(frozen=True)
class BufferParams:
    """Sizes of the per-core Entry Buffers (Section IV-B, Table III)."""

    meb_entries: int = 16
    ieb_entries: int = 4

    def __post_init__(self) -> None:
        _require(self.meb_entries >= 0, "MEB entries must be >= 0")
        _require(self.ieb_entries >= 0, "IEB entries must be >= 0")


@dataclass(frozen=True)
class MachineParams:
    """Full machine description: blocks of cores plus the cache hierarchy.

    ``l3`` is ``None`` for single-block (intra-block) machines; the shared L2
    is then the last-level on-chip cache and misses go straight to memory.
    """

    num_blocks: int
    cores_per_block: int
    core: CoreParams
    l1: CacheParams
    l2_bank: CacheParams  # one bank per core
    l3_bank: CacheParams | None  # one bank per L3 bank position; None intra-block
    num_l3_banks: int
    mesh: MeshParams
    buffers: BufferParams
    mem_round_trip: int = 150
    # WB ALL / INV ALL walk the tag array even when nothing is dirty; the
    # walker checks `tag_walk_sets_per_cycle` sets per cycle (all ways of a
    # set are read in parallel, and per-set valid/dirty summary bits let the
    # walker skip ahead).
    tag_walk_sets_per_cycle: int = 4

    def __post_init__(self) -> None:
        _require(self.num_blocks >= 1, "need at least one block")
        _require(self.cores_per_block >= 1, "need at least one core per block")
        if self.l3_bank is None:
            _require(self.num_l3_banks == 0, "intra-block machine has no L3 banks")
        else:
            _require(self.num_l3_banks >= 1, "need at least one L3 bank")
            _require(
                self.l3_bank.line_bytes == self.l1.line_bytes,
                "L1/L3 line sizes must match",
            )
        _require(
            self.l2_bank.line_bytes == self.l1.line_bytes,
            "L1/L2 line sizes must match",
        )
        _require(self.mem_round_trip >= 0, "memory round trip must be >= 0")

    @property
    def num_cores(self) -> int:
        return self.num_blocks * self.cores_per_block

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.l1.words_per_line

    @property
    def num_l2_banks(self) -> int:
        """The shared L2 has one bank per core (Table III)."""
        return self.num_cores

    @property
    def mesh_dim(self) -> int:
        """Side of the square mesh that tiles all cores."""
        return math.ceil(math.sqrt(self.num_cores))


def intra_block_machine(
    num_cores: int = 16,
    *,
    overlap: float = 0.5,
    buffers: BufferParams | None = None,
) -> MachineParams:
    """The intra-block machine of Table III: one block of 16 cores."""
    return MachineParams(
        num_blocks=1,
        cores_per_block=num_cores,
        core=CoreParams(overlap=overlap),
        l1=CacheParams(size_bytes=32 * 1024, assoc=4, line_bytes=64, round_trip=2),
        l2_bank=CacheParams(
            size_bytes=128 * 1024, assoc=8, line_bytes=64, round_trip=11
        ),
        l3_bank=None,
        num_l3_banks=0,
        mesh=MeshParams(),
        buffers=buffers if buffers is not None else BufferParams(),
    )


def inter_block_machine(
    num_blocks: int = 4,
    cores_per_block: int = 8,
    *,
    overlap: float = 0.5,
    buffers: BufferParams | None = None,
) -> MachineParams:
    """The inter-block machine of Table III: 4 blocks of 8 cores plus L3."""
    return MachineParams(
        num_blocks=num_blocks,
        cores_per_block=cores_per_block,
        core=CoreParams(overlap=overlap),
        l1=CacheParams(size_bytes=32 * 1024, assoc=4, line_bytes=64, round_trip=2),
        l2_bank=CacheParams(
            size_bytes=128 * 1024, assoc=8, line_bytes=64, round_trip=11
        ),
        l3_bank=CacheParams(
            size_bytes=4 * 1024 * 1024, assoc=8, line_bytes=64, round_trip=20
        ),
        num_l3_banks=4,
        mesh=MeshParams(),
        buffers=buffers if buffers is not None else BufferParams(),
    )
