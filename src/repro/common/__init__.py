"""Subpackage of repro."""
