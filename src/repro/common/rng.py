"""Deterministic random-number helpers.

Workloads and inspectors must be reproducible run-to-run so that paper figures
regenerate identically.  All randomness in the package flows through
:func:`make_rng`, seeded from a stream name plus an experiment seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default experiment seed; benches may override per sweep point.
DEFAULT_SEED = 20160516  # IPPS 2016 vintage


def make_rng(stream: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a generator whose state depends only on (*stream*, *seed*).

    Distinct stream names give statistically independent sequences, so
    workloads can draw their own randomness without perturbing each other.
    """
    digest = hashlib.sha256(f"{stream}:{seed}".encode()).digest()
    root = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(root)
