"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architecture or experiment configuration is invalid."""


class AddressError(ReproError):
    """An address is out of range, misaligned, or maps to no allocation."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated (internal bug detector)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All cores are blocked and no events are pending."""


class SyncError(ReproError):
    """Misuse of a synchronization primitive (e.g. releasing an unheld lock)."""


class CompilerError(ReproError):
    """The Model-2 loop-nest analysis was given an unsupported program."""


class SweepError(ReproError):
    """A sweep cell could not be completed (e.g. repeated worker timeouts)."""


class OrderingError(ReproError):
    """A forbidden instruction reordering (Section III-C) was attempted."""


class MPIError(ReproError):
    """Misuse of the on-chip message-passing layer."""


class AnalysisError(ReproError):
    """The static annotation analyzer could not process a kernel."""
