"""Subpackage of repro."""
