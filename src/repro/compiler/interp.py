"""Reference interpreter for Model-2 IR programs.

Executes an :class:`~repro.compiler.ir.IRProgram` directly on plain Python
lists — no caches, no timing — giving the ground-truth final array contents.
Tests compare simulated runs (any configuration, any placement) against this
interpreter; agreement demonstrates that the inserted WB/INV instrumentation
is *sufficient* for correctness on the incoherent hierarchy.

Reductions fold partials in thread-ID order; floating-point reassociation in
the simulator (critical-section arrival order) can differ, so comparisons of
float results should use a tolerance.
"""

from __future__ import annotations

from typing import Any

from repro.compiler import ir
from repro.compiler.schedule import chunk_bounds
from repro.common.errors import CompilerError


def interpret(
    program: ir.IRProgram,
    nthreads: int,
    initial: dict[str, list[Any]] | None = None,
    *,
    blocks: list[list[int]] | None = None,
) -> dict[str, list[Any]]:
    """Run *program* sequentially; return the final contents of every array.

    ``blocks`` lists the thread IDs of each block (needed only for
    :class:`~repro.compiler.ir.HierReduceStmt`); the default is a single
    block holding every thread.
    """
    mem: dict[str, list[Any]] = {
        name: [0] * size for name, size in program.arrays.items()
    }
    if initial:
        for name, values in initial.items():
            if name not in mem:
                raise CompilerError(f"initial data for undeclared array {name!r}")
            if len(values) != len(mem[name]):
                raise CompilerError(
                    f"initial data for {name!r} has wrong length"
                )
            mem[name] = list(values)
    if blocks is None:
        blocks = [list(range(nthreads))]
    _run_seq(program.stmts, mem, nthreads, blocks)
    return mem


def _run_seq(stmts, mem, nthreads: int, blocks) -> None:
    for stmt in stmts:
        if isinstance(stmt, ir.Loop):
            for _ in range(stmt.times):
                _run_seq(stmt.body, mem, nthreads, blocks)
        elif isinstance(stmt, ir.ParallelFor):
            _parallel_for(stmt, mem)
        elif isinstance(stmt, ir.SerialStmt):
            _serial(stmt, mem)
        elif isinstance(stmt, ir.ReduceStmt):
            _reduce(stmt, mem, nthreads)
        elif isinstance(stmt, ir.HierReduceStmt):
            _hier_reduce(stmt, mem, nthreads, blocks)
        else:  # pragma: no cover
            raise CompilerError(f"unexpected statement {stmt!r}")


def _read_ref(ref: ir.Ref, i: int, mem) -> Any:
    idx = ref.index
    if isinstance(idx, ir.Indirect):
        pos = idx.coeff * i + idx.offset
        return mem[ref.array][int(mem[idx.index_array][pos])]
    return mem[ref.array][idx.at(i)]


def _parallel_for(stmt: ir.ParallelFor, mem) -> None:
    # Loop-carried semantics match the simulator: within one iteration the
    # body assignments run in order; iterations are independent across
    # threads (the analyzable subset has no cross-iteration dependences
    # within one epoch), so plain sequential order is faithful.
    for i in range(stmt.length):
        for assign in stmt.body:
            vals = [_read_ref(r, i, mem) for r in assign.rhs]
            mem[assign.lhs.array][assign.lhs.index.at(i)] = assign.fn(i, *vals)


def _serial(stmt: ir.SerialStmt, mem) -> None:
    env = {r.array: mem[r.array][r.lo : r.hi] for r in stmt.reads}
    out = stmt.fn(env)
    for w in stmt.writes:
        values = out[w.array]
        if len(values) != w.hi - w.lo:
            raise CompilerError(
                f"serial stmt {stmt.name!r} returned wrong-length {w.array}"
            )
        mem[w.array][w.lo : w.hi] = values


def _reduce(stmt: ir.ReduceStmt, mem, nthreads: int) -> None:
    acc = stmt.identity_values()
    for tid in range(nthreads):
        env: dict[str, list[Any]] = {}
        for r in stmt.inputs:
            lo, hi = chunk_bounds(r.hi - r.lo, nthreads, tid)
            env[r.array] = mem[r.array][r.lo + lo : r.lo + hi]
        partial = stmt.partial_fn(tid, nthreads, env)
        acc = stmt.combine_fn(acc, partial)
    mem[stmt.result][: stmt.width] = acc
    mem[stmt.result][stmt.width] = (
        int(mem[stmt.result][stmt.width]) + nthreads
    )


def _hier_reduce(stmt: ir.HierReduceStmt, mem, nthreads: int, blocks) -> None:
    """Two-level reduction: fold within each block, then across blocks.

    Block slots are line-padded; the stride matches the executor's layout
    (16 words per line).
    """
    wpl = 16
    stride = -(-(stmt.width + 1) // wpl) * wpl
    block_vals = []
    for b, tids in enumerate(blocks):
        acc = stmt.identity_values()
        for tid in tids:
            env: dict[str, list[Any]] = {}
            for r in stmt.inputs:
                lo, hi = chunk_bounds(r.hi - r.lo, nthreads, tid)
                env[r.array] = mem[r.array][r.lo + lo : r.lo + hi]
            acc = stmt.combine_fn(acc, stmt.partial_fn(tid, nthreads, env))
        slot = b * stride
        mem[stmt.blockpart][slot : slot + stmt.width] = acc
        mem[stmt.blockpart][slot + stmt.width] = (
            int(mem[stmt.blockpart][slot + stmt.width]) + len(tids)
        )
        block_vals.append(acc)
    total = stmt.identity_values()
    for vals in block_vals:
        total = stmt.combine_fn(total, vals)
    mem[stmt.result][: stmt.width] = total
    mem[stmt.result][stmt.width] = (
        int(mem[stmt.result][stmt.width]) + len(blocks)
    )
