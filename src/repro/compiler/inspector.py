"""Inspector-executor support for irregular accesses (Section V-A.2, Fig. 8).

Sparse iterative codes (CG) read data through index arrays whose contents are
unknown at compile time but fixed across outer iterations.  The inspector is
code *inserted into the program and executed in parallel by the threads*: for
each of its consumer iterations, a thread reads the index array (simulated
loads — the inspector's cost is real and is amortized over the outer
iterations), determines the ID of the thread that produces each element it
will read, and records the result in a ``conflict`` array (simulated stores).
The executor then issues ``INV_PROD(elem, conflict[elem])`` only for elements
produced by *other* threads, skipping self-produced data entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compiler.defuse import IrregularRead
from repro.compiler.schedule import chunk_bounds, owner_of_iteration
from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.addrspace import SharedArray


def run_inspector(
    irr: IrregularRead,
    tid: int,
    nthreads: int,
    consumer_length: int,
    arrays: dict[str, "SharedArray"],
    conflict_arr: "SharedArray",
):
    """Generator: simulate the inspector loop; returns {element: writer tid}.

    Only elements written by *another* thread appear in the result (the
    paper's Figure 8 skips the INV when ``conflict[k] == tid``).
    """
    index_array = arrays[irr.index_array]
    lo, hi = chunk_bounds(consumer_length, nthreads, tid)
    conflicts: dict[int, int] = {}
    for i in range(lo, hi):
        for coeff, offset in irr.positions:
            pos = coeff * i + offset
            idx_value = yield isa.Read(index_array.addr(pos))
            elem = int(idx_value)
            if irr.producer_serial:
                writer = 0
            else:
                writer = owner_of_iteration(
                    irr.producer_length, nthreads, elem - irr.producer_offset
                )
            if writer != tid and elem not in conflicts:
                conflicts[elem] = writer
                yield isa.Write(conflict_arr.addr(elem), writer)
    return conflicts
