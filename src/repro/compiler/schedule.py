"""Static chunk scheduling (OpenMP ``schedule(static)``, Section V-A).

With static chunk scheduling the compiler knows which thread executes which
iterations: loop ``range(length)`` is split into ``nthreads`` consecutive
chunks, the first ``length % nthreads`` chunks one iteration longer.  The
producer/consumer thread IDs in WB_CONS/INV_PROD instrumentation are
equations over this mapping.
"""

from __future__ import annotations

from repro.common.errors import CompilerError


def chunk_bounds(length: int, nthreads: int, tid: int) -> tuple[int, int]:
    """Iteration interval [lo, hi) executed by *tid*."""
    if nthreads <= 0:
        raise CompilerError("need at least one thread")
    if not 0 <= tid < nthreads:
        raise CompilerError(f"tid {tid} out of range for {nthreads} threads")
    base, extra = divmod(length, nthreads)
    lo = tid * base + min(tid, extra)
    hi = lo + base + (1 if tid < extra else 0)
    return lo, hi


def owner_of_iteration(length: int, nthreads: int, i: int) -> int:
    """Inverse mapping: which thread executes iteration *i*."""
    if not 0 <= i < length:
        raise CompilerError(f"iteration {i} out of range(0, {length})")
    base, extra = divmod(length, nthreads)
    boundary = extra * (base + 1)
    if i < boundary:
        return i // (base + 1)
    if base == 0:
        raise CompilerError(f"iteration {i} unassigned ({length} < {nthreads})")
    return extra + (i - boundary) // base


def all_chunks(length: int, nthreads: int) -> list[tuple[int, int]]:
    """Every thread's [lo, hi) interval, indexed by tid."""
    return [chunk_bounds(length, nthreads, t) for t in range(nthreads)]


def overlap(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int] | None:
    """Intersection of two half-open intervals, or None when empty."""
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return (lo, hi) if lo < hi else None
