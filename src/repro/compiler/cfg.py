"""Interprocedural control-flow graph and reachability (Section V-A.1).

The paper's analysis "performs interprocedural control flow analysis to
generate an interprocedural control flow graph", then, "starting from each
*for* loop, traverses the control flow graph to find reachable *for* loops".
Our IR has the call structure already inlined; what remains is statement
sequencing plus the back edges introduced by :class:`repro.compiler.ir.Loop`
(iterative solvers), which is exactly what makes producer→consumer pairs
*across outer iterations* (Jacobi's copy loop feeding next iteration's
stencil) reachable.

Reachability is *kill-aware* when asked about a specific array: a path is
cut by any intermediate statement that completely redefines the array.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.compiler import ir
from repro.common.errors import CompilerError


@dataclass(frozen=True)
class Node:
    """One flattened, uniquely-identified statement."""

    sid: int
    stmt: ir.ParallelFor | ir.SerialStmt | ir.ReduceStmt | ir.HierReduceStmt

    @property
    def name(self) -> str:
        return self.stmt.name


class CFG:
    """Flattened statement graph with Loop back edges."""

    def __init__(self, program: ir.IRProgram) -> None:
        self.program = program
        self.nodes: list[Node] = []
        self.graph = nx.DiGraph()
        self._build(program.stmts)
        if not self.nodes:
            raise CompilerError(f"program {program.name!r} has no statements")

    # -- construction -----------------------------------------------------------

    def _build(self, stmts) -> None:
        first, last = self._build_seq(stmts)
        self._entry = first
        self._exit = last

    def _new_node(self, stmt) -> int:
        sid = len(self.nodes)
        node = Node(sid, stmt)
        self.nodes.append(node)
        self.graph.add_node(sid)
        return sid

    def _build_seq(self, stmts) -> tuple[int, int]:
        """Add a statement sequence; return (first sid, last sid)."""
        first = last = -1
        for stmt in stmts:
            if isinstance(stmt, ir.Loop):
                f, l = self._build_seq(stmt.body)
                self.graph.add_edge(l, f)  # back edge
            else:
                f = l = self._new_node(stmt)
            if last >= 0:
                self.graph.add_edge(last, f)
            if first < 0:
                first = f
            last = l
        if first < 0:
            raise CompilerError("empty statement sequence")
        return first, last

    # -- queries ------------------------------------------------------------------

    def node(self, sid: int) -> Node:
        return self.nodes[sid]

    def parallel_loops(self) -> list[Node]:
        return [n for n in self.nodes if isinstance(n.stmt, ir.ParallelFor)]

    def _writes_all_of(self, stmt, array: str, size: int) -> bool:
        """Does *stmt* completely redefine *array* (a kill)?"""
        if isinstance(stmt, ir.ParallelFor):
            for a in stmt.body:
                if a.lhs.array == array and isinstance(a.lhs.index, ir.Affine):
                    lo, hi = a.lhs.index.image(0, stmt.length)
                    if lo <= 0 and hi >= size:
                        return True
            return False
        if isinstance(stmt, ir.SerialStmt):
            return any(
                w.array == array and w.lo <= 0 and w.hi >= size
                for w in stmt.writes
            )
        if isinstance(stmt, (ir.ReduceStmt, ir.HierReduceStmt)):
            # A reduction round rewrites the whole result (plus its counter).
            return stmt.result == array
        return False

    def reachable_consumers(self, producer_sid: int, array: str) -> list[int]:
        """Statement IDs reachable from *producer* while *array* stays live.

        BFS over successors; a statement that completely redefines *array*
        still *receives* the dataflow query (it may read before writing) but
        does not propagate it further.  The producer itself is reachable via
        a back edge (self-communication across outer iterations).
        """
        size = self.program.arrays[array]
        seen: set[int] = set()
        frontier = list(self.graph.successors(producer_sid))
        out: list[int] = []
        while frontier:
            sid = frontier.pop()
            if sid in seen:
                continue
            seen.add(sid)
            out.append(sid)
            if not self._writes_all_of(self.nodes[sid].stmt, array, size):
                frontier.extend(self.graph.successors(sid))
        return sorted(out)
