"""Loop-nest IR for Model-2 programs (the mini-ROSE front end).

The paper's second programming model targets compiler-analyzable OpenMP
codes: no pointer aliasing, work-sharing ``for`` loops with static chunk
scheduling, and outermost-loop parallelism only (Section VI).  This IR
captures exactly the information that analysis consumes:

* :class:`ParallelFor` — a statically-chunked parallel loop whose body is a
  list of :class:`Assign` statements with affine (or indirect) array refs;
* :class:`SerialStmt` — a serial section (executed by thread 0) with
  explicit read/write range declarations;
* :class:`ReduceStmt` — an unordered reduction (partial per thread, serial
  combine).  Reductions have no producer→consumer ordering, so
  level-adaptive instructions cannot localize them (Section VII-C);
* :class:`Loop` — a sequential repeat wrapper providing the back edge for
  iterative codes (CG, Jacobi).

Array indices are :class:`Affine` (``coeff*i + offset``; analysis supports
``coeff == 1``), :class:`Indirect` (``index_array[i + offset]``, resolved by
the inspector at run time), or :class:`Fixed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.common.errors import CompilerError

# ---------------------------------------------------------------------------
# index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """Index ``coeff * i + offset`` of the loop variable *i*."""

    coeff: int = 1
    offset: int = 0

    def at(self, i: int) -> int:
        return self.coeff * i + self.offset

    def image(self, lo: int, hi: int) -> tuple[int, int]:
        """Element interval [lo', hi') covering iterations [lo, hi).

        For ``coeff > 1`` the interval is the convex hull of the strided
        set — a sound over-approximation (the compiler errs toward extra
        WB/INV, never toward missing one).  Non-positive strides are outside
        the analyzable subset (Section VI applies no loop transformations).
        """
        if self.coeff < 1:
            raise CompilerError(
                f"non-positive stride {self.coeff} is outside the analyzable subset"
            )
        if hi <= lo:
            return (self.offset, self.offset)
        return self.coeff * lo + self.offset, self.coeff * (hi - 1) + self.offset + 1


@dataclass(frozen=True)
class Indirect:
    """Index ``index_array[coeff*i + offset]`` — irregular, inspector territory."""

    index_array: str
    offset: int = 0
    coeff: int = 1


@dataclass(frozen=True)
class Fixed:
    """A compile-time-constant index (scalars live in 1-element arrays)."""

    index: int

    def at(self, _i: int) -> int:
        return self.index


Index = Affine | Indirect | Fixed


@dataclass(frozen=True)
class Ref:
    """One array reference ``array[index]`` in a loop body."""

    array: str
    index: Index

    @property
    def is_indirect(self) -> bool:
        return isinstance(self.index, Indirect)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``lhs[f(i)] = fn(i, rhs0[g0(i)], rhs1[g1(i)], ...)`` per iteration.

    ``fn`` receives the iteration index first, then one value per rhs ref.
    """

    lhs: Ref
    rhs: tuple[Ref, ...]
    fn: Callable[..., Any]

    def __post_init__(self) -> None:
        if self.lhs.is_indirect:
            raise CompilerError("indirect writes are outside the analyzable subset")


@dataclass(frozen=True)
class ParallelFor:
    """``#pragma omp parallel for schedule(static)`` over ``range(length)``."""

    name: str
    length: int
    body: tuple[Assign, ...]
    #: Extra compute cycles charged per iteration (models non-memory work).
    compute_cycles: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise CompilerError(f"loop {self.name!r} must have positive length")
        if not self.body:
            raise CompilerError(f"loop {self.name!r} has an empty body")

    def written_arrays(self) -> set[str]:
        return {a.lhs.array for a in self.body}

    def read_arrays(self) -> set[str]:
        return {r.array for a in self.body for r in a.rhs}


@dataclass(frozen=True)
class RangeRef:
    """A declared element range ``array[lo:hi]`` read/written by a serial stmt."""

    array: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise CompilerError(f"bad range {self.array}[{self.lo}:{self.hi}]")


@dataclass(frozen=True)
class SerialStmt:
    """Serial section executed by thread 0 only.

    ``fn`` receives ``{array_name: list_of_values}`` for every read range and
    returns ``{array_name: list_of_values}`` for every write range.
    """

    name: str
    reads: tuple[RangeRef, ...]
    writes: tuple[RangeRef, ...]
    fn: Callable[[dict[str, list[Any]]], dict[str, list[Any]]]
    compute_cycles: int = 0


@dataclass(frozen=True)
class ReduceStmt:
    """Unordered reduction (OpenMP ``reduction`` clause).

    Each thread computes a width-long partial from its chunk of the input
    ranges (``partial_fn(tid, nthreads, env)``), then folds it into the
    shared ``result`` array inside a critical section
    (``combine_fn(current, partial)``).  An arrival counter stored past the
    result (``result`` is allocated ``width + 1`` elements) resets the
    accumulator to ``identity`` at the start of each dynamic round, so the
    same reduction works inside iterative loops.

    Because the updates are unordered, the compiler cannot determine
    producer-consumer pairs: all instrumentation for the result is global
    (``peer=None``), which is why EP and IS see no benefit from
    level-adaptive instructions (Figure 11, Section VII-C).
    """

    name: str
    inputs: tuple[RangeRef, ...]
    result: str  # array of width + 1 elements (last is the arrival counter)
    width: int
    partial_fn: Callable[[int, int, dict[str, list[Any]]], list[Any]]
    combine_fn: Callable[[list[Any], list[Any]], list[Any]]
    identity: tuple[Any, ...] = ()
    compute_cycles: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CompilerError(f"reduction {self.name!r} needs width >= 1")
        if self.identity and len(self.identity) != self.width:
            raise CompilerError(
                f"reduction {self.name!r}: identity length != width"
            )

    def identity_values(self) -> list[Any]:
        return list(self.identity) if self.identity else [0] * self.width


@dataclass(frozen=True)
class HierReduceStmt:
    """Hierarchical (two-level) reduction — the paper's §VII-C rewrite.

    "To exploit local communication, one could re-write the code to have
    hierarchical reductions, which reduce first inside the block and then
    globally."  Each thread folds its partial into its *block's* slot of
    ``blockpart`` inside a block-local critical section (intra-block WB/INV
    only), then — after a barrier — one leader thread per block folds the
    block slots into ``result`` globally.  The global critical section sees
    ``num_blocks`` participants instead of ``num_threads``.

    ``blockpart`` must be declared with ``num_blocks * (width + 1)``
    elements, slots padded so different blocks never share a cache line
    (the executor validates sizes at lowering time); ``result`` with
    ``width + 1`` as for :class:`ReduceStmt`.
    """

    name: str
    inputs: tuple[RangeRef, ...]
    blockpart: str  # array of num_blocks * slot_stride elements
    result: str  # array of width + 1 elements
    width: int
    partial_fn: Callable[[int, int, dict[str, list[Any]]], list[Any]]
    combine_fn: Callable[[list[Any], list[Any]], list[Any]]
    identity: tuple[Any, ...] = ()
    compute_cycles: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CompilerError(f"reduction {self.name!r} needs width >= 1")
        if self.identity and len(self.identity) != self.width:
            raise CompilerError(
                f"reduction {self.name!r}: identity length != width"
            )

    def identity_values(self) -> list[Any]:
        return list(self.identity) if self.identity else [0] * self.width


@dataclass(frozen=True)
class Loop:
    """Sequential repetition of a statement list (iterative solvers)."""

    times: int
    body: tuple["Stmt", ...]

    def __post_init__(self) -> None:
        if self.times <= 0:
            raise CompilerError("Loop.times must be positive")
        if not self.body:
            raise CompilerError("Loop body must be non-empty")


Stmt = ParallelFor | SerialStmt | ReduceStmt | HierReduceStmt | Loop


@dataclass(frozen=True)
class IRProgram:
    """A whole Model-2 program: declarations plus a statement sequence."""

    name: str
    arrays: dict[str, int]  # array name -> element count
    stmts: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        names = set(self.arrays)
        for stmt in iter_stmts(self.stmts):
            for arr in _stmt_arrays(stmt):
                if arr not in names:
                    raise CompilerError(
                        f"statement references undeclared array {arr!r}"
                    )


def iter_stmts(stmts: Sequence[Stmt]):
    """Flatten Loop nests, yielding every non-Loop statement once."""
    for stmt in stmts:
        if isinstance(stmt, Loop):
            yield from iter_stmts(stmt.body)
        else:
            yield stmt


def _stmt_arrays(stmt: Stmt) -> set[str]:
    if isinstance(stmt, ParallelFor):
        out = stmt.written_arrays() | stmt.read_arrays()
        for a in stmt.body:
            for r in a.rhs:
                if isinstance(r.index, Indirect):
                    out.add(r.index.index_array)
        return out
    if isinstance(stmt, SerialStmt):
        return {r.array for r in stmt.reads} | {w.array for w in stmt.writes}
    if isinstance(stmt, ReduceStmt):
        return {r.array for r in stmt.inputs} | {stmt.result}
    if isinstance(stmt, HierReduceStmt):
        return {r.array for r in stmt.inputs} | {stmt.blockpart, stmt.result}
    raise CompilerError(f"unexpected statement {stmt!r}")
