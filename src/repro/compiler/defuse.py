"""DEF-USE analysis: producer→consumer extraction (Section V-A.1).

For every pair of CFG-reachable statements (P producer, C consumer) sharing
an array, the analysis compares the element sets each thread produces and
consumes under static chunk scheduling, and emits:

* ``WB_CONS`` directives at P's end — (interval, consumer-thread set); a
  single WB serves multiple consumers (the executor lowers a multi-consumer
  directive to one global ``WB_L3``, matching "single producer-multiple
  consumers with a single WB");
* ``INV_PROD`` directives at C's start — (interval, producer tid), one per
  producing peer;
* *irregular* reads (indirect indices) that static analysis cannot resolve:
  these are routed to the inspector (Section V-A.2), and their producer
  conservatively writes back its whole produced range globally ("to reduce
  the complexity of the analysis, we write everything to L3");
* reductions: a :class:`~repro.compiler.ir.ReduceStmt` has no producer→
  consumer ordering, so its result is instrumented globally (``peer=None``)
  — this is why EP and IS cannot benefit from level-adaptive instructions
  (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.compiler.cfg import CFG
from repro.compiler.schedule import all_chunks, overlap
from repro.common.errors import CompilerError

Interval = tuple[int, int]


@dataclass(frozen=True)
class WbDirective:
    """Write back array[lo:hi] at the producer epoch's end.

    ``cons`` is the consumer-thread set, or ``None`` when consumers are
    unknown (irregular / reduction) — lowered globally.
    """

    array: str
    lo: int
    hi: int
    cons: frozenset[int] | None


@dataclass(frozen=True)
class InvDirective:
    """Invalidate array[lo:hi] at the consumer epoch's start.

    ``prod`` is the producing thread, or ``None`` when unknown (global).
    """

    array: str
    lo: int
    hi: int
    prod: int | None


@dataclass(frozen=True)
class IrregularRead:
    """An indirect read resolved by the runtime inspector.

    ``positions`` are the (coeff, offset) pairs of every indirect ref to the
    same (data array, index array) in the consumer loop — the inspector
    enumerates ``index_array[coeff*i + offset]`` for each consumer iteration
    *i*.  The producer map tells the inspector which thread wrote each data
    element: iteration ``e - producer_offset`` of a ParallelFor producer, or
    always thread 0 for a SerialStmt producer.
    """

    consumer_sid: int
    array: str  # the data array read through the indirection
    index_array: str
    positions: tuple[tuple[int, int], ...]
    producer_sid: int
    producer_serial: bool  # True: SerialStmt producer (writer is thread 0)
    producer_length: int  # loop length of the producing ParallelFor
    producer_offset: int  # lhs affine offset: element e ← iteration e - offset


@dataclass
class InstrumentationPlan:
    """Everything the executor needs to lower Addr / Addr+L instrumentation."""

    nthreads: int
    #: sid -> tid -> directives (sorted, coalesced)
    wb_after: dict[int, dict[int, list[WbDirective]]] = field(default_factory=dict)
    inv_before: dict[int, dict[int, list[InvDirective]]] = field(default_factory=dict)
    #: consumer sid -> irregular reads needing the inspector
    irregular: dict[int, list[IrregularRead]] = field(default_factory=dict)

    def add_wb(self, sid: int, tid: int, d: WbDirective) -> None:
        self.wb_after.setdefault(sid, {}).setdefault(tid, []).append(d)

    def add_inv(self, sid: int, tid: int, d: InvDirective) -> None:
        self.inv_before.setdefault(sid, {}).setdefault(tid, []).append(d)

    def wbs(self, sid: int, tid: int) -> list[WbDirective]:
        return self.wb_after.get(sid, {}).get(tid, [])

    def invs(self, sid: int, tid: int) -> list[InvDirective]:
        return self.inv_before.get(sid, {}).get(tid, [])


# ---------------------------------------------------------------------------
# per-statement produced / consumed element sets
# ---------------------------------------------------------------------------


def produced_intervals(
    stmt, array: str, nthreads: int
) -> list[tuple[int, Interval]]:
    """(tid, element interval) pairs that *stmt* writes into *array*."""
    out: list[tuple[int, Interval]] = []
    if isinstance(stmt, ir.ParallelFor):
        chunks = all_chunks(stmt.length, nthreads)
        for assign in stmt.body:
            if assign.lhs.array != array:
                continue
            idx = assign.lhs.index
            if isinstance(idx, ir.Affine):
                for tid, (lo, hi) in enumerate(chunks):
                    if lo < hi:
                        out.append((tid, idx.image(lo, hi)))
            elif isinstance(idx, ir.Fixed):
                for tid, (lo, hi) in enumerate(chunks):
                    if lo < hi:
                        out.append((tid, (idx.index, idx.index + 1)))
    elif isinstance(stmt, ir.SerialStmt):
        for w in stmt.writes:
            if w.array == array:
                out.append((0, (w.lo, w.hi)))
    elif isinstance(stmt, (ir.ReduceStmt, ir.HierReduceStmt)):
        if stmt.result == array:
            # Unordered reduction: every thread may write; producer unknown.
            out.append((-1, (0, stmt.width)))
    return out


def consumed_intervals(
    stmt, array: str, nthreads: int
) -> list[tuple[int, Interval]]:
    """(tid, element interval) pairs that *stmt* reads from *array*."""
    out: list[tuple[int, Interval]] = []
    if isinstance(stmt, ir.ParallelFor):
        chunks = all_chunks(stmt.length, nthreads)
        for assign in stmt.body:
            for ref in assign.rhs:
                if ref.is_indirect:
                    # The *index array* itself is read affinely.
                    idx = ref.index
                    if idx.index_array != array:
                        continue
                    aff = ir.Affine(idx.coeff, idx.offset)
                    for tid, (lo, hi) in enumerate(chunks):
                        if lo < hi:
                            out.append((tid, aff.image(lo, hi)))
                    continue
                if ref.array != array:
                    continue
                idx = ref.index
                for tid, (lo, hi) in enumerate(chunks):
                    if lo >= hi:
                        continue
                    if isinstance(idx, ir.Affine):
                        out.append((tid, idx.image(lo, hi)))
                    elif isinstance(idx, ir.Fixed):
                        out.append((tid, (idx.index, idx.index + 1)))
    elif isinstance(stmt, ir.SerialStmt):
        for r in stmt.reads:
            if r.array == array:
                out.append((0, (r.lo, r.hi)))
    elif isinstance(stmt, (ir.ReduceStmt, ir.HierReduceStmt)):
        chunks = None
        for r in stmt.inputs:
            if r.array != array:
                continue
            if chunks is None:
                chunks = all_chunks(r.hi - r.lo, nthreads)
            for tid, (lo, hi) in enumerate(chunks):
                if lo < hi:
                    out.append((tid, (r.lo + lo, r.lo + hi)))
        # The critical-section combine reads the result; that communication
        # is instrumented by the executor inside the reduction itself.
    return out


def _irregular_reads(stmt) -> list[ir.Ref]:
    if not isinstance(stmt, ir.ParallelFor):
        return []
    return [r for a in stmt.body for r in a.rhs if r.is_indirect]


# ---------------------------------------------------------------------------
# analysis driver
# ---------------------------------------------------------------------------


def _coalesce_wb(dirs: list[WbDirective]) -> list[WbDirective]:
    """Merge overlapping/adjacent same-array WBs, unioning consumer sets."""
    out: list[WbDirective] = []
    for d in sorted(dirs, key=lambda d: (d.array, d.lo, d.hi)):
        if out and out[-1].array == d.array and d.lo <= out[-1].hi:
            prev = out[-1]
            cons = (
                None
                if prev.cons is None or d.cons is None
                else prev.cons | d.cons
            )
            out[-1] = WbDirective(d.array, prev.lo, max(prev.hi, d.hi), cons)
        else:
            out.append(d)
    return out


def _coalesce_inv(dirs: list[InvDirective]) -> list[InvDirective]:
    """Merge overlapping/adjacent same-array same-producer INVs."""
    out: list[InvDirective] = []
    key = lambda d: (d.array, -2 if d.prod is None else d.prod, d.lo, d.hi)
    for d in sorted(dirs, key=key):
        if (
            out
            and out[-1].array == d.array
            and out[-1].prod == d.prod
            and d.lo <= out[-1].hi
        ):
            prev = out[-1]
            out[-1] = InvDirective(d.array, prev.lo, max(prev.hi, d.hi), d.prod)
        else:
            out.append(d)
    return out


def analyze(program: ir.IRProgram, nthreads: int) -> InstrumentationPlan:
    """Run the full Model-2 analysis and return the instrumentation plan."""
    if nthreads < 1:
        raise CompilerError("need at least one thread")
    cfg = CFG(program)
    plan = InstrumentationPlan(nthreads)

    for pnode in cfg.nodes:
        pstmt = pnode.stmt
        written = _written_arrays(pstmt)
        for array in sorted(written):
            produced = produced_intervals(pstmt, array, nthreads)
            if not produced:
                continue
            consumers = cfg.reachable_consumers(pnode.sid, array)
            irregular_consumer = False
            for csid in consumers:
                cstmt = cfg.node(csid).stmt
                consumed = consumed_intervals(cstmt, array, nthreads)
                for j, rint in consumed:
                    for i, wint in produced:
                        if i == j:
                            continue
                        ov = overlap(wint, rint)
                        if ov is None:
                            continue
                        if i < 0:
                            # Unordered producer (reduction result).
                            plan.add_inv(
                                csid, j, InvDirective(array, ov[0], ov[1], None)
                            )
                        else:
                            plan.add_wb(
                                pnode.sid,
                                i,
                                WbDirective(array, ov[0], ov[1], frozenset({j})),
                            )
                            plan.add_inv(
                                csid, j, InvDirective(array, ov[0], ov[1], i)
                            )
                # Indirect reads of this array: register inspector work and
                # make the producer write back everything it produced.
                for ref in _irregular_reads(cstmt):
                    if ref.array != array:
                        continue
                    irregular_consumer = True
                    plan.irregular.setdefault(csid, []).append(
                        _make_irregular(csid, ref, pnode.sid, pstmt)
                    )
            if irregular_consumer:
                for i, wint in produced:
                    if i < 0:
                        continue
                    plan.add_wb(
                        pnode.sid, i, WbDirective(array, wint[0], wint[1], None)
                    )

    for sid, per_tid in plan.wb_after.items():
        for tid in per_tid:
            per_tid[tid] = _coalesce_wb(per_tid[tid])
    for sid, per_tid in plan.inv_before.items():
        for tid in per_tid:
            per_tid[tid] = _coalesce_inv(per_tid[tid])
    for sid in plan.irregular:
        plan.irregular[sid] = _group_irregular(plan.irregular[sid])
    return plan


def _group_irregular(items: list[IrregularRead]) -> list[IrregularRead]:
    """Merge same-(array, index array, producer) refs, unioning positions."""
    grouped: dict[tuple, IrregularRead] = {}
    for irr in items:
        key = (irr.consumer_sid, irr.array, irr.index_array, irr.producer_sid)
        prev = grouped.get(key)
        if prev is None:
            grouped[key] = irr
        else:
            positions = tuple(sorted(set(prev.positions) | set(irr.positions)))
            grouped[key] = IrregularRead(
                consumer_sid=irr.consumer_sid,
                array=irr.array,
                index_array=irr.index_array,
                positions=positions,
                producer_sid=irr.producer_sid,
                producer_serial=irr.producer_serial,
                producer_length=irr.producer_length,
                producer_offset=irr.producer_offset,
            )
    return list(grouped.values())


def _written_arrays(stmt) -> set[str]:
    if isinstance(stmt, ir.ParallelFor):
        return stmt.written_arrays()
    if isinstance(stmt, ir.SerialStmt):
        return {w.array for w in stmt.writes}
    if isinstance(stmt, ir.ReduceStmt):
        return {stmt.result}
    if isinstance(stmt, ir.HierReduceStmt):
        return {stmt.result}
    return set()


def _make_irregular(
    csid: int, ref: ir.Ref, psid: int, pstmt
) -> IrregularRead:
    idx = ref.index
    assert isinstance(idx, ir.Indirect)
    if isinstance(pstmt, ir.ParallelFor):
        offset = 0
        for assign in pstmt.body:
            if assign.lhs.array == ref.array and isinstance(
                assign.lhs.index, ir.Affine
            ):
                offset = assign.lhs.index.offset
                break
        return IrregularRead(
            consumer_sid=csid,
            array=ref.array,
            index_array=idx.index_array,
            positions=((idx.coeff, idx.offset),),
            producer_sid=psid,
            producer_serial=False,
            producer_length=pstmt.length,
            producer_offset=offset,
        )
    if isinstance(pstmt, ir.SerialStmt):
        return IrregularRead(
            consumer_sid=csid,
            array=ref.array,
            index_array=idx.index_array,
            positions=((idx.coeff, idx.offset),),
            producer_sid=psid,
            producer_serial=True,
            producer_length=0,
            producer_offset=0,
        )
    raise CompilerError(
        "irregular reads need a ParallelFor or SerialStmt producer"
    )
