"""Model-2 executor: lower an IR program onto the simulated machine.

:class:`ModelTwoRunner` compiles an :class:`~repro.compiler.ir.IRProgram`
(CFG + DEF-USE instrumentation plan), allocates its arrays in the machine's
shared address space, and spawns one SPMD thread program per core.  The
instrumentation is lowered per the Table II inter-block configuration:

* **HCC** — no instrumentation; the MESI hierarchy keeps caches coherent.
* **Base** — ``WB ALL`` to the L3 before every barrier and ``INV ALL`` from
  the L2 after it, with no address information.
* **Addr** — the plan's directives as explicit-level ``WB_L3`` / ``INV_L2``
  (addresses known, level always global).
* **Addr+L** — level-adaptive ``WB_CONS`` / ``INV_PROD``; directives with an
  unknown peer (reductions, irregular producers, multi-consumer broadcasts)
  fall back to the global ops.

Irregular consumers run the inspector once (first dynamic execution) and
reuse its conflict map in later outer iterations.
"""

from __future__ import annotations

from typing import Any

from repro.compiler import ir
from repro.compiler.cfg import CFG
from repro.compiler.defuse import InstrumentationPlan, analyze
from repro.compiler.inspector import run_inspector
from repro.compiler.schedule import chunk_bounds
from repro.common.errors import CompilerError
from repro.common.params import WORD_BYTES
from repro.core.config import InterMode
from repro.core.context import ThreadCtx
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.mem.addrspace import SharedArray

#: Lock IDs for reduction critical sections start here (barrier ids are low).
_REDUCE_LOCK_BASE = 1 << 16


class ModelTwoRunner:
    """Compile + allocate + spawn an IR program on a machine."""

    def __init__(self, machine: Machine, program: ir.IRProgram) -> None:
        self.machine = machine
        self.program = program
        self.mode: InterMode = machine.config.inter_mode
        self.n = machine.num_threads
        self.cfg = CFG(program)
        self._sid_of = {id(n.stmt): n.sid for n in self.cfg.nodes}
        self.plan: InstrumentationPlan | None = None
        if self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
            self.plan = analyze(program, self.n)

        self.arrays: dict[str, SharedArray] = {
            name: machine.array(name, size)
            for name, size in program.arrays.items()
        }
        self._validate_reductions()

        # Conflict arrays for irregular consumers (one per data array read
        # indirectly), plus inspector result caches keyed by (irregular, tid).
        self._conflict_arrays: dict[tuple[int, str], SharedArray] = {}
        if self.plan is not None:
            for sid, irrs in self.plan.irregular.items():
                for irr in irrs:
                    key = (sid, irr.array)
                    if key not in self._conflict_arrays:
                        self._conflict_arrays[key] = machine.array(
                            f"__conflict_{sid}_{irr.array}",
                            self.program.arrays[irr.array],
                        )
        self._inspector_cache: dict[tuple[int, int, str], dict[int, int]] = {}

    # -- setup helpers -----------------------------------------------------------

    def _validate_reductions(self) -> None:
        for stmt in ir.iter_stmts(self.program.stmts):
            if isinstance(stmt, (ir.ReduceStmt, ir.HierReduceStmt)):
                declared = self.program.arrays[stmt.result]
                if declared != stmt.width + 1:
                    raise CompilerError(
                        f"reduction {stmt.name!r}: result array must have "
                        f"width+1 = {stmt.width + 1} elements, got {declared}"
                    )
            if isinstance(stmt, ir.HierReduceStmt):
                declared = self.program.arrays[stmt.blockpart]
                stride = self._block_slot_stride(stmt)
                want = self.machine.params.num_blocks * stride
                if declared != want:
                    raise CompilerError(
                        f"hierarchical reduction {stmt.name!r}: blockpart "
                        f"must have num_blocks*{stride} = {want} elements, "
                        f"got {declared}"
                    )

    def _block_slot_stride(self, stmt: ir.HierReduceStmt) -> int:
        """Block slots are padded to whole cache lines (no false sharing)."""
        wpl = self.machine.params.words_per_line
        return -(-(stmt.width + 1) // wpl) * wpl

    def preload(self, name: str, values: list[Any]) -> None:
        """Seed an array's initial contents directly in main memory (untimed).

        Models program input that is resident in memory before the parallel
        region starts (e.g. the sparse matrix read from a file).
        """
        arr = self.arrays[name]
        if len(values) != arr.size:
            raise CompilerError(
                f"preload of {name!r}: {len(values)} values for {arr.size} slots"
            )
        mem = self.machine.hier.memory
        for addr, value in zip(arr.element_addrs(), values):
            mem.write_word(addr // WORD_BYTES, value)

    def spawn_all(self) -> None:
        self.machine.spawn_all(self._thread)

    def run(self):
        """Spawn (if needed) and execute; returns the machine statistics."""
        if not self.machine._cpus:
            self.spawn_all()
        return self.machine.run()

    def result(self, name: str) -> list[Any]:
        """Final contents of an array from main memory (after run)."""
        return self.machine.read_array(self.arrays[name])

    # -- thread program ------------------------------------------------------------

    def _thread(self, ctx: ThreadCtx):
        yield from self._run_seq(ctx, self.program.stmts)

    def _run_seq(self, ctx: ThreadCtx, stmts):
        for stmt in stmts:
            if isinstance(stmt, ir.Loop):
                for _ in range(stmt.times):
                    yield from self._run_seq(ctx, stmt.body)
            elif isinstance(stmt, ir.ParallelFor):
                yield from self._parallel_for(ctx, stmt)
            elif isinstance(stmt, ir.SerialStmt):
                yield from self._serial(ctx, stmt)
            elif isinstance(stmt, ir.ReduceStmt):
                yield from self._reduce(ctx, stmt)
            elif isinstance(stmt, ir.HierReduceStmt):
                yield from self._hier_reduce(ctx, stmt)
            else:  # pragma: no cover - IR is exhaustive
                raise CompilerError(f"unexpected statement {stmt!r}")

    # -- instrumentation lowering ------------------------------------------------------

    def _range_args(self, array: str, lo: int, hi: int) -> tuple[int, int]:
        arr = self.arrays[array]
        return arr.addr(lo), (hi - lo) * WORD_BYTES

    def _emit_invs(self, ctx: ThreadCtx, sid: int):
        if self.plan is None:
            return
        for d in self.plan.invs(sid, ctx.tid):
            addr, length = self._range_args(d.array, d.lo, d.hi)
            if self.mode == InterMode.ADDR or d.prod is None:
                yield isa.INVL2(addr, length)
            else:
                yield isa.InvProd(addr, length, d.prod)

    def _emit_wbs(self, ctx: ThreadCtx, sid: int):
        if self.plan is None:
            return
        for d in self.plan.wbs(sid, ctx.tid):
            addr, length = self._range_args(d.array, d.lo, d.hi)
            if self.mode == InterMode.ADDR or d.cons is None:
                yield isa.WBL3(addr, length)
            elif len(d.cons) > 4:
                # Many consumers (a broadcast): a single WB to the
                # last-level cache serves them all.
                yield isa.WBL3(addr, length)
            else:
                # A few known consumers: one WB_CONS each.  After the first
                # writes the lines back, later ones find them clean — the
                # hardware dedupes the data movement, and a remote consumer
                # among them still pushes the words parked in the L2 up to
                # the L3 (Section V-B's L1+L2 tag check).
                for cons in sorted(d.cons):
                    yield isa.WBCons(addr, length, cons)

    def _epoch_close(self, ctx: ThreadCtx, sid: int):
        """Producer-side WBs, the barrier, and Base's post-barrier INV ALL."""
        if self.mode == InterMode.BASE:
            yield isa.WBAllL3()
        else:
            yield from self._emit_wbs(ctx, sid)
        yield isa.Barrier(0, self.n)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()

    # -- irregular consumers --------------------------------------------------------------

    def _irregular_invs(self, ctx: ThreadCtx, stmt: ir.ParallelFor, sid: int):
        if self.plan is None:
            return
        for irr in self.plan.irregular.get(sid, []):
            cache_key = (sid, ctx.tid, irr.array)
            conflicts = self._inspector_cache.get(cache_key)
            if conflicts is None:
                conflicts = yield from run_inspector(
                    irr,
                    ctx.tid,
                    self.n,
                    stmt.length,
                    self.arrays,
                    self._conflict_arrays[(sid, irr.array)],
                )
                self._inspector_cache[cache_key] = conflicts
            data = self.arrays[irr.array]
            for elem in sorted(conflicts):
                writer = conflicts[elem]
                addr = data.addr(elem)
                if self.mode == InterMode.ADDR:
                    yield isa.INVL2(addr, WORD_BYTES)
                else:
                    yield isa.InvProd(addr, WORD_BYTES, writer)

    # -- statement execution -----------------------------------------------------------------

    def _parallel_for(self, ctx: ThreadCtx, stmt: ir.ParallelFor):
        sid = self._sid_of[id(stmt)]
        yield from self._emit_invs(ctx, sid)
        yield from self._irregular_invs(ctx, stmt, sid)

        lo, hi = chunk_bounds(stmt.length, self.n, ctx.tid)
        arrays = self.arrays
        for i in range(lo, hi):
            for assign in stmt.body:
                vals = []
                for ref in assign.rhs:
                    idx = ref.index
                    if isinstance(idx, ir.Indirect):
                        pos = idx.coeff * i + idx.offset
                        raw = yield isa.Read(
                            arrays[idx.index_array].addr(pos)
                        )
                        vals.append(
                            (yield isa.Read(arrays[ref.array].addr(int(raw))))
                        )
                    else:
                        vals.append(
                            (yield isa.Read(arrays[ref.array].addr(idx.at(i))))
                        )
                out = assign.fn(i, *vals)
                yield isa.Write(arrays[assign.lhs.array].addr(assign.lhs.index.at(i)), out)
            if stmt.compute_cycles:
                yield isa.Compute(stmt.compute_cycles)

        yield from self._epoch_close(ctx, sid)

    def _serial(self, ctx: ThreadCtx, stmt: ir.SerialStmt):
        sid = self._sid_of[id(stmt)]
        if ctx.tid == 0:
            yield from self._emit_invs(ctx, sid)
            env: dict[str, list[Any]] = {}
            for r in stmt.reads:
                arr = self.arrays[r.array]
                values = []
                for e in range(r.lo, r.hi):
                    values.append((yield isa.Read(arr.addr(e))))
                env[r.array] = values
            if stmt.compute_cycles:
                yield isa.Compute(stmt.compute_cycles)
            out = stmt.fn(env)
            for w in stmt.writes:
                arr = self.arrays[w.array]
                values = out[w.array]
                if len(values) != w.hi - w.lo:
                    raise CompilerError(
                        f"serial stmt {stmt.name!r} returned "
                        f"{len(values)} values for {w.array}[{w.lo}:{w.hi}]"
                    )
                for off, value in enumerate(values):
                    yield isa.Write(arr.addr(w.lo + off), value)
            yield from self._epoch_close(ctx, sid)
        else:
            if self.mode == InterMode.BASE:
                yield isa.WBAllL3()
            yield isa.Barrier(0, self.n)
            if self.mode == InterMode.BASE:
                yield isa.INVAllL2()

    def _reduce(self, ctx: ThreadCtx, stmt: ir.ReduceStmt):
        sid = self._sid_of[id(stmt)]
        yield from self._emit_invs(ctx, sid)

        # Local phase: read my chunk of every input, compute the partial.
        env: dict[str, list[Any]] = {}
        for r in stmt.inputs:
            arr = self.arrays[r.array]
            lo, hi = chunk_bounds(r.hi - r.lo, self.n, ctx.tid)
            values = []
            for e in range(r.lo + lo, r.lo + hi):
                values.append((yield isa.Read(arr.addr(e))))
            env[r.array] = values
        if stmt.compute_cycles:
            yield isa.Compute(stmt.compute_cycles)
        partial = stmt.partial_fn(ctx.tid, self.n, env)
        if len(partial) != stmt.width:
            raise CompilerError(
                f"reduction {stmt.name!r}: partial has {len(partial)} values, "
                f"expected {stmt.width}"
            )

        # Combine phase: unordered critical-section update of the result.
        result = self.arrays[stmt.result]
        res_addr, res_len = self._range_args(stmt.result, 0, stmt.width + 1)
        lid = _REDUCE_LOCK_BASE + sid
        yield isa.LockAcquire(lid)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()
        elif self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
            yield isa.INVL2(res_addr, res_len)
        counter = yield isa.Read(result.addr(stmt.width))
        if int(counter) % self.n == 0:
            current = stmt.identity_values()
        else:
            current = []
            for k in range(stmt.width):
                current.append((yield isa.Read(result.addr(k))))
        new = stmt.combine_fn(current, partial)
        for k in range(stmt.width):
            yield isa.Write(result.addr(k), new[k])
        yield isa.Write(result.addr(stmt.width), int(counter) + 1)
        if self.mode == InterMode.BASE:
            yield isa.WBAllL3()
        elif self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
            yield isa.WBL3(res_addr, res_len)
        yield isa.LockRelease(lid)

        yield isa.Barrier(0, self.n)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()

    def _hier_reduce(self, ctx: ThreadCtx, stmt: ir.HierReduceStmt):
        """Two-level reduction (Section VII-C's suggested rewrite).

        Level 1: fold the thread partial into the *block's* slot under a
        block-local lock; in Addr+L the slot's WB/INV stay at the L1↔L2
        level because every participant shares the block.  Level 2: one
        leader per block folds the block slots into the global result —
        a critical section with ``num_blocks`` participants instead of
        ``num_threads``.
        """
        sid = self._sid_of[id(stmt)]
        yield from self._emit_invs(ctx, sid)
        placement = self.machine.placement
        block = placement.block_of_thread(ctx.tid)
        block_threads = placement.threads_in_block(block)
        stride = self._block_slot_stride(stmt)

        # Local phase: thread partial over its input chunk.
        env: dict[str, list[Any]] = {}
        for r in stmt.inputs:
            arr = self.arrays[r.array]
            lo, hi = chunk_bounds(r.hi - r.lo, self.n, ctx.tid)
            values = []
            for e in range(r.lo + lo, r.lo + hi):
                values.append((yield isa.Read(arr.addr(e))))
            env[r.array] = values
        if stmt.compute_cycles:
            yield isa.Compute(stmt.compute_cycles)
        partial = stmt.partial_fn(ctx.tid, self.n, env)

        # Level 1: block-local critical section on the block's slot.
        bp = self.arrays[stmt.blockpart]
        slot = block * stride
        slot_addr, slot_len = self._range_args(
            stmt.blockpart, slot, slot + stmt.width + 1
        )
        lid = (
            _REDUCE_LOCK_BASE
            + 2 * sid * self.machine.params.num_blocks
            + block
        )
        yield isa.LockAcquire(lid)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()
        elif self.mode == InterMode.ADDR:
            yield isa.INVL2(slot_addr, slot_len)
        elif self.mode == InterMode.ADDR_LEVEL:
            yield isa.INV(slot_addr, slot_len)  # in-block: L1-level only
        counter = yield isa.Read(bp.addr(slot + stmt.width))
        if int(counter) % len(block_threads) == 0:
            current = stmt.identity_values()
        else:
            current = []
            for k in range(stmt.width):
                current.append((yield isa.Read(bp.addr(slot + k))))
        new = stmt.combine_fn(current, partial)
        for k in range(stmt.width):
            yield isa.Write(bp.addr(slot + k), new[k])
        yield isa.Write(bp.addr(slot + stmt.width), int(counter) + 1)
        if self.mode == InterMode.BASE:
            yield isa.WBAllL3()
        elif self.mode == InterMode.ADDR:
            yield isa.WBL3(slot_addr, slot_len)
        elif self.mode == InterMode.ADDR_LEVEL:
            yield isa.WB(slot_addr, slot_len)  # in-block: to the L2 only
        yield isa.LockRelease(lid)
        yield isa.Barrier(0, self.n)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()

        # Level 2: block leaders combine the block slots globally.
        if ctx.tid == min(block_threads):
            result = self.arrays[stmt.result]
            res_addr, res_len = self._range_args(stmt.result, 0, stmt.width + 1)
            glid = (
                _REDUCE_LOCK_BASE
                + (2 * sid + 1) * self.machine.params.num_blocks
            )
            if self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
                yield isa.INV(slot_addr, slot_len)  # refresh own block slot
            block_vals = []
            for k in range(stmt.width):
                block_vals.append((yield isa.Read(bp.addr(slot + k))))
            yield isa.LockAcquire(glid)
            if self.mode == InterMode.BASE:
                yield isa.INVAllL2()
            elif self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
                yield isa.INVL2(res_addr, res_len)
            gcounter = yield isa.Read(result.addr(stmt.width))
            if int(gcounter) % self.machine.params.num_blocks == 0:
                current = stmt.identity_values()
            else:
                current = []
                for k in range(stmt.width):
                    current.append((yield isa.Read(result.addr(k))))
            new = stmt.combine_fn(current, block_vals)
            for k in range(stmt.width):
                yield isa.Write(result.addr(k), new[k])
            yield isa.Write(result.addr(stmt.width), int(gcounter) + 1)
            if self.mode == InterMode.BASE:
                yield isa.WBAllL3()
            elif self.mode in (InterMode.ADDR, InterMode.ADDR_LEVEL):
                yield isa.WBL3(res_addr, res_len)
            yield isa.LockRelease(glid)
        yield isa.Barrier(0, self.n)
        if self.mode == InterMode.BASE:
            yield isa.INVAllL2()
