"""Command-line interface: run experiments and regenerate paper artifacts.

Usage (also via ``python -m repro``)::

    repro list                              # workloads and configurations
    repro run fft --config B+M+I            # one intra-block run
    repro run cg --config Addr+L --scale .5 # one inter-block run
    repro fig9 [--scale S] [--jobs N]       # regenerate a figure/table
    repro fig10 | fig11 | fig12 | table1 | table3 | storage
    repro trace fft --config B+M+I --out t.jsonl   # traced replay of a cell
    repro gen zipf_hot --seed 7 --config B+M+I     # one generated scenario
    repro replay t.jsonl --roundtrip        # trace -> workload -> re-trace
    repro fleet --scenarios 32 --engines ref,fast  # auto-checked scenario fleet
    repro lint --all-workloads              # static WB/INV annotation check
    repro lint missing_annotations --fix    # auto-insert + verify vs HCC
    repro litmus mp_flag --model rc         # one litmus kernel, one model
    repro litmus --matrix --json            # model x kernel x engine grid
    repro chaos --plans 100 --seed 7        # seeded fault-injection sweep
    repro chaos --list-faults               # injectable fault catalog
    repro bench fig9 --engine fast --repeat 3      # timed sweep -> BENCH json
    repro bench fig9 --profile              # cProfile the sweep (top 25)
    repro serve --port 8787 --workers 8     # HTTP/JSON job server (SERVICE.md)
    repro serve --journal j/ --resume       # durable: WAL + crash recovery
    repro serve --bench --jobs-count 120    # load-gen -> BENCH_serve.json
    repro serve --bench --chaos-kill        # SIGKILL/corrupt/resume drill
    repro cache stats | verify | gc         # result-cache integrity tooling

Engine selection: ``--engine {ref,fast}`` (or ``$REPRO_ENGINE``) picks the
simulator core — ``ref`` is the dict-based reference, ``fast`` the
packed-array core (see ``repro.engines``).  Both are bit-identical by
contract, so figure sweeps may serve either engine's runs from the shared
result cache.

Memory-model selection: ``--model {base,rc,sisd}`` (or ``$REPRO_MODEL``)
picks the registered consistency backend for software-coherent
configurations (see ``repro.models``; hardware-coherent Table II configs
always run directory MESI).  Models are *not* bit-identical in timing, so
the result cache keys on the effective model id.  ``repro litmus --matrix``
is the conformance grid over every registered model.

Figure sweeps fan out over ``--jobs`` worker processes (default: CPU count)
and reuse verified results from the persistent cache under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-sweeps``); ``--no-cache``
forces fresh simulation and ``--clear-cache`` empties the cache first.

Observability: ``--trace DIR`` / ``--metrics PATH`` on the figure commands
replay the sweep serially in-process with per-operation event tracing and a
metrics registry attached (tracing is bit-identical-neutral, so the printed
table does not change); ``repro trace`` does the same for a single cell and
can also emit a Chrome ``trace_event`` file for chrome://tracing.

Every ``run`` is functionally verified before its statistics print, exactly
like the test suite.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.params import inter_block_machine, intra_block_machine
from repro.core.config import (
    INTER_CONFIGS,
    INTRA_CONFIGS,
    inter_config,
    intra_config,
)
from repro.eval import report as rpt
from repro.eval.runner import run_inter, run_intra, sweep_inter, sweep_intra
from repro.eval.storage import storage_report
from repro.sim.stats import StallCat
from repro.workloads import MODEL_ONE, MODEL_TWO


def _cmd_list(_args) -> int:
    from repro.workloads.litmus import LITMUS

    print("Model-1 workloads (intra-block, SPLASH-2):")
    for name, cls in sorted(MODEL_ONE.items()):
        print(f"  {name:14s} main: {', '.join(cls.main_patterns)}")
    print("Model-2 workloads (inter-block, NAS/Jacobi):")
    for name in sorted(MODEL_TWO):
        print(f"  {name}")
    print("Litmus kernels (repro lint --litmus / tests/coherence):")
    for name, kernel in LITMUS.items():
        tag = "ok" if kernel.lint_clean else ",".join(kernel.expect_rules)
        print(f"  {name:34s} [{kernel.model}] {tag}")
    print("Intra configs: " + ", ".join(c.name for c in INTRA_CONFIGS))
    print("Inter configs: " + ", ".join(c.name for c in INTER_CONFIGS))
    return 0


def _cmd_run(args) -> int:
    app = args.workload
    if app in MODEL_ONE:
        config = intra_config(args.config)
        if args.staleness:
            from repro.core.machine import Machine

            machine = Machine(
                intra_block_machine(16),
                config,
                num_threads=16,
                detect_staleness=True,
                engine=args.engine,
                model=args.model,
            )
            MODEL_ONE[app](scale=args.scale).run_on(machine)
            n = len(machine.stale_reads)
            print(f"{app} under {config.name}: verified OK, "
                  f"{n} stale read(s) detected")
            for event in machine.stale_reads[:10]:
                print(f"  {event!r}")
            return 0 if n == 0 else 1
        result = run_intra(
            app, config, scale=args.scale, engine=args.engine, model=args.model
        )
    elif app in MODEL_TWO:
        config = inter_config(args.config)
        result = run_inter(
            app, config, scale=args.scale, engine=args.engine, model=args.model
        )
    else:
        print(f"unknown workload {app!r} (try `repro list`)", file=sys.stderr)
        return 2
    stats = result.stats
    print(f"{app} under {config.name}: verified OK")
    print(f"  exec time     {stats.exec_time} cycles")
    for cat in StallCat:
        print(f"  {cat.value:14s}{stats.breakdown()[cat.value]:12.0f}")
    print(f"  traffic       {stats.total_flits} flits "
          + str({c.value: v for c, v in stats.traffic.items()}))
    s = stats.summary()
    print(f"  loads/stores  {s['loads']}/{s['stores']}  "
          f"L1 miss rate {s['l1_misses'] / max(1, s['loads'] + s['stores']):.3f}")
    if stats.global_wb_lines or stats.local_wb_lines:
        print(f"  WB lines      global {stats.global_wb_lines}, "
              f"local {stats.local_wb_lines}")
        print(f"  INV lines     global {stats.global_inv_lines}, "
              f"local {stats.local_inv_lines}")
    return 0


_PAPER_INTER_APPS = ["cg", "ep", "is", "jacobi"]


def _sweep_executor(args):
    """Build the SweepExecutor a figure command asked for on its flags."""
    from repro.eval.cache import ResultCache
    from repro.eval.parallel import SweepExecutor

    cache = None if args.no_cache else ResultCache()
    if args.clear_cache:
        n = (cache or ResultCache()).clear()
        print(f"cache cleared ({n} entries)", file=sys.stderr)
    return SweepExecutor(jobs=args.jobs, cache=cache)


def _figure_sweep(args, kind: str, apps, configs):
    """Run one figure's sweep matrix, traced or pooled per the flags.

    With ``--trace``/``--metrics`` the matrix is replayed serially
    in-process (tracers do not cross process boundaries); otherwise it fans
    out through the worker pool and the persistent cache.  Tracing is
    bit-identical-neutral, so both paths feed the renderer the same numbers.

    ``--engine`` is exported via ``$REPRO_ENGINE`` (which worker processes
    inherit) rather than threaded through the cell kwargs, so the result
    cache stays engine-agnostic — engines are bit-identical by contract.
    ``--model`` takes the same env-var route (``$REPRO_MODEL``), but the
    cache is *not* model-agnostic: the cell describer folds the effective
    model id into the key, so each model's sweep caches separately.
    """
    if getattr(args, "engine", None) is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "model", None) is not None:
        os.environ["REPRO_MODEL"] = args.model
    if args.trace is not None or args.metrics is not None:
        from repro.obs.replay import traced_sweep

        results = traced_sweep(
            kind, apps, configs,
            trace_dir=args.trace, metrics_path=args.metrics, scale=args.scale,
        )
        if args.trace is not None:
            print(f"traces written under {args.trace}", file=sys.stderr)
        if args.metrics is not None:
            print(f"metrics written to {args.metrics}", file=sys.stderr)
        return results
    ex = _sweep_executor(args)
    sweep = sweep_intra if kind == "intra" else sweep_inter
    results = sweep(list(apps), list(configs), executor=ex, scale=args.scale)
    print(ex.stats.summary(), file=sys.stderr)
    return results


def _cmd_fig9(args) -> int:
    results = _figure_sweep(args, "intra", sorted(MODEL_ONE), INTRA_CONFIGS)
    print(rpt.render_fig9(results))
    return 0


def _cmd_fig10(args) -> int:
    from repro.core.config import INTRA_BMI, INTRA_HCC

    results = _figure_sweep(args, "intra", sorted(MODEL_ONE), [INTRA_HCC, INTRA_BMI])
    print(rpt.render_fig10(results))
    return 0


def _cmd_fig11(args) -> int:
    from repro.core.config import INTER_ADDR, INTER_ADDR_L

    results = _figure_sweep(
        args, "inter", _PAPER_INTER_APPS, [INTER_ADDR, INTER_ADDR_L]
    )
    print(rpt.render_fig11(results))
    return 0


def _cmd_fig12(args) -> int:
    results = _figure_sweep(args, "inter", _PAPER_INTER_APPS, INTER_CONFIGS)
    print(rpt.render_fig12(results))
    return 0


def _cmd_trace(args) -> int:
    """Replay one (workload, config) cell with tracing and metrics on."""
    import json
    import pathlib

    from repro.obs.replay import cell_trace_name, kind_of_app, run_traced

    kind = kind_of_app(args.workload)
    if args.config is None:
        args.config = "B+M+I" if kind == "intra" else "Addr+L"
    config = (
        intra_config(args.config) if kind == "intra" else inter_config(args.config)
    )
    result, tracer, metrics = run_traced(
        kind, args.workload, config, scale=args.scale
    )
    out = pathlib.Path(args.out or cell_trace_name(args.workload, config.name))
    tracer.write_jsonl(out)
    print(f"{args.workload} under {config.name}: verified OK, "
          f"{len(tracer.events)} events -> {out}")
    if args.chrome is not None:
        tracer.write_chrome(args.chrome)
        print(f"chrome trace -> {args.chrome}  "
              "(open chrome://tracing and load it)")
    if args.metrics is not None:
        pathlib.Path(args.metrics).write_text(
            json.dumps(metrics.snapshot(), indent=1, sort_keys=True)
        )
        print(f"metrics -> {args.metrics}")
    print(f"  exec time     {result.exec_time} cycles")
    for name in ("proto.lines_written_back", "proto.lines_invalidated",
                 "proto.stale_reads", "mesi.dir_invalidations"):
        if name in metrics.counters:
            print(f"  {name:26s}{metrics.counters[name]:10d}")
    return 0


def _cmd_gen(args) -> int:
    """Build, run, and verify one generated scenario."""
    from repro.common.rng import DEFAULT_SEED
    from repro.workloads.gen import (
        PATTERNS,
        ScenarioSpec,
        build_scenario,
        lint_scenario,
        run_gen,
    )

    if args.list_patterns:
        print("Generator patterns (repro.workloads.gen):")
        for name in PATTERNS:
            print(f"  {name}")
        return 0
    if args.pattern is None:
        print("repro gen: name a pattern (see --list-patterns)", file=sys.stderr)
        return 2
    spec = ScenarioSpec(
        pattern=args.pattern,
        seed=DEFAULT_SEED if args.seed is None else args.seed,
        threads=args.threads,
        footprint_lines=args.footprint,
        rounds=args.rounds,
        skew=args.skew,
    )
    config = intra_config(args.config)
    scenario = build_scenario(spec)
    result = run_gen(spec, config, memory_digest=True, engine=args.engine)
    ops = sum(len(p) for p in scenario.programs)
    print(f"{spec.name} under {config.name}: verified OK")
    print(f"  spec digest    {spec.digest()}")
    print(f"  program digest {scenario.program_digest()}")
    print(f"  macros         {ops} across {spec.threads} thread(s)")
    print(f"  exec time      {result.exec_time} cycles")
    print(f"  memory digest  {result.memory_digest}")
    if not config.hardware_coherent:
        report = lint_scenario(spec, config)
        verdict = "clean" if report.clean else ", ".join(
            f.rule_id for f in report.findings
        )
        print(f"  lint           {verdict}")
        return 0 if report.clean else 1
    return 0


def _cmd_replay(args) -> int:
    """Replay a recorded JSONL trace as a first-class workload."""
    from repro.common.errors import ConfigError
    from repro.obs.schema import TraceSchemaError
    from repro.obs.trace import Tracer
    from repro.workloads.replay import (
        infer_num_threads,
        load_events,
        programs_by_core,
        run_replay,
    )

    try:
        events = load_events(args.trace)
    except (OSError, TraceSchemaError) as exc:
        raise ConfigError(f"cannot replay {args.trace}: {exc}") from None
    streams = programs_by_core(events)
    num_threads = args.threads or infer_num_threads(streams)
    name = args.config or ("B+M+I" if args.model == "intra" else "Addr+L")
    config = intra_config(name) if args.model == "intra" else inter_config(name)
    if args.model == "intra":
        params = intra_block_machine(max(4, num_threads))
    else:
        params = inter_block_machine(args.blocks, args.cores_per_block)
    tracer = Tracer() if (args.out or args.roundtrip) else None
    result = run_replay(
        events, config, machine_params=params, num_threads=num_threads,
        tracer=tracer, memory_digest=True, engine=args.engine,
    )
    nops = sum(len(s) for s in streams.values())
    print(f"replay of {args.trace} under {config.name}: "
          f"{nops} op(s) on {num_threads} thread(s)")
    print(f"  exec time     {result.exec_time} cycles")
    print(f"  memory digest {result.memory_digest}")
    if args.out:
        tracer.write_jsonl(args.out)
        print(f"  re-recorded   {len(tracer.events)} event(s) -> {args.out}")
    if args.roundtrip:
        if tracer.events == events:
            print(f"  round-trip    bit-identical ({len(events)} events)")
        else:
            diffs = sum(
                1 for a, b in zip(tracer.events, events) if a != b
            ) + abs(len(tracer.events) - len(events))
            print(f"  round-trip    FAILED: {diffs} differing event(s) "
                  f"({len(events)} recorded, {len(tracer.events)} replayed)")
            return 1
    return 0


def _cmd_fleet(args) -> int:
    """N generated scenarios × configs × engines with an oracle verdict."""
    import json
    import pathlib

    from repro.common.errors import ConfigError
    from repro.eval.fleet import run_default_fleet

    engines = [e for e in args.engines.split(",") if e]
    configs = []
    for name in args.configs.split(","):
        if not name:
            continue
        cfg = intra_config(name)
        if cfg.hardware_coherent:
            raise ConfigError(
                "fleet configs must be software-coherent "
                "(the HCC reference is implicit)"
            )
        configs.append(cfg)
    verdict = run_default_fleet(
        args.scenarios,
        seed=args.seed,
        configs=configs,
        engines=engines,
        executor=_sweep_executor(args),
        lint=not args.no_lint,
    )
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(verdict, indent=1, sort_keys=True)
        )
        print(f"fleet verdict -> {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(verdict, indent=1, sort_keys=True))
    else:
        print(f"fleet: {verdict['scenarios']} scenario(s) "
              f"({', '.join(f'{k}={v}' for k, v in sorted(verdict['patterns'].items()))})")
        print(f"  configs  {', '.join(verdict['configs'])}  "
              f"engines {', '.join(verdict['engines'])}  "
              f"cells {verdict['cells']}")
        print(f"  oracle divergences  {verdict['oracle_divergences']}")
        print(f"  engine mismatches   {verdict['engine_mismatches']}")
        print(f"  lint violations     {verdict['lint_violations']} "
              f"({verdict['lint_checks']} check(s))")
        print(f"  {verdict['sweep']}")
        print("  verdict: CLEAN" if verdict["clean"] else "  verdict: DIRTY")
    return 0 if verdict["clean"] else 1


def _lint_targets(args):
    """Resolve the lint targets: (kind, name) pairs in a stable order."""
    from repro.common.errors import ConfigError
    from repro.workloads.litmus import LITMUS

    if args.all_workloads:
        return [("m1", n) for n in sorted(MODEL_ONE)] + [
            ("m2", n) for n in sorted(MODEL_TWO)
        ]
    if args.litmus:
        return [("litmus", n) for n in LITMUS]
    if not args.workload:
        raise ConfigError(
            "nothing to lint: name a workload/litmus kernel, or pass "
            "--all-workloads / --litmus"
        )
    targets = []
    for name in args.workload:
        if name in MODEL_ONE:
            targets.append(("m1", name))
        elif name in MODEL_TWO:
            targets.append(("m2", name))
        elif name in LITMUS:
            targets.append(("litmus", name))
        else:
            raise ConfigError(
                f"unknown workload or litmus kernel {name!r} (try `repro "
                "list`)"
            )
    return targets


def _lint_config(kind: str, name: str, config_name: str | None):
    """The Table II config a lint target is analyzed under (never HCC)."""
    from repro.common.errors import ConfigError
    from repro.workloads.litmus import LITMUS

    if kind == "litmus":
        model = LITMUS[name].model
    else:
        model = "intra" if kind == "m1" else "inter"
    if config_name is None:
        config_name = "Base" if model == "intra" else "Addr"
    config = (
        intra_config(config_name) if model == "intra"
        else inter_config(config_name)
    )
    if config.hardware_coherent:
        raise ConfigError(
            "HCC keeps the hierarchy coherent in hardware; annotations "
            "are disabled, so there is nothing to lint"
        )
    return config


def _lint_machine(kind: str, name: str, config, scale: float):
    """A fresh machine with the target prepared (spawned, not yet run)."""
    from repro.core.machine import Machine
    from repro.workloads.litmus import (
        LITMUS,
        machine_params,
        spawn_litmus,
    )

    if kind == "litmus":
        kernel = LITMUS[name]
        machine = Machine(
            machine_params(kernel), config, num_threads=kernel.threads
        )
        spawn_litmus(kernel, machine)
        return machine
    if kind == "m1":
        machine = Machine(intra_block_machine(4), config, num_threads=4)
        MODEL_ONE[name](scale=scale).prepare(machine)
    else:
        machine = Machine(inter_block_machine(2, 2), config, num_threads=4)
        cls = MODEL_TWO[name]
        try:
            workload = cls(scale=scale, num_blocks=2)
        except TypeError:  # most Model-2 workloads are block-agnostic
            workload = cls(scale=scale)
        workload.prepare(machine)
    return machine


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import lint_machine
    from repro.workloads.litmus import LITMUS

    targets = _lint_targets(args)
    reports = []
    worst = 0
    for kind, name in targets:
        config = _lint_config(kind, name, args.config)
        machine = _lint_machine(kind, name, config, args.scale)
        if args.dump_cfg:
            from repro.analysis import extract
            from repro.analysis.cfg import build_cfgs, render_cfg

            trace = extract(machine)
            for cfg_ in build_cfgs(trace):
                print(render_cfg(cfg_))
            continue
        report = lint_machine(
            machine, name=name, config=config.name, model=args.model
        )
        entry = report.to_dict()
        if kind == "litmus":
            kernel = LITMUS[name]
            got = {f.rule_id for f in report.findings}
            ok = set(kernel.expect_rules) <= got and (
                bool(kernel.expect_rules) or report.clean
            )
            entry["expected_rules"] = sorted(kernel.expect_rules)
            entry["as_expected"] = ok
        reports.append((kind, name, report, entry))
        if not args.json:
            print(report.render())
            if args.litmus and kind == "litmus":
                verdict = "as expected" if entry["as_expected"] else (
                    "UNEXPECTED (wanted "
                    + (", ".join(entry["expected_rules"]) or "clean") + ")"
                )
                print(f"  -> {verdict}")
        fixed: int | None = None
        if args.fix and report.errors:
            if kind != "litmus":
                print(f"{name}: --fix supports litmus kernels only",
                      file=sys.stderr)
                return 2
            fixed = _run_fix(name, config, report, args.json)
        if args.litmus:
            # Cross-validation mode: broken kernels are *supposed* to be
            # flagged, so the exit status tracks expectation mismatches.
            if not entry["as_expected"]:
                worst = max(worst, 1)
        elif fixed is not None:
            worst = max(worst, fixed)
        elif report.errors:
            worst = max(worst, 1)
    if args.json and not args.dump_cfg:
        payload = [e for _, _, _, e in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=1, sort_keys=True))
    return worst


def _run_fix(name: str, config, report, as_json: bool) -> int:
    """Verify ``--fix`` on one litmus kernel; returns the exit status."""
    from repro.analysis import lint_machine
    from repro.analysis.fix import apply_fixes, plan_fixes, render_plan
    from repro.core.config import INTER_HCC, INTRA_HCC
    from repro.core.machine import Machine
    from repro.workloads.litmus import (
        LITMUS,
        machine_params,
        spawn_litmus,
    )

    kernel = LITMUS[name]
    hcc = INTRA_HCC if kernel.model == "intra" else INTER_HCC

    def outcome(cfg, plan=None):
        machine = Machine(
            machine_params(kernel), cfg, num_threads=kernel.threads
        )
        arrs, obs = spawn_litmus(kernel, machine)
        if plan:
            apply_fixes(machine, plan)
        machine.run()
        mem = {n: machine.read_array(a) for n, a in arrs.items()}
        return obs, mem

    planner = Machine(
        machine_params(kernel), config, num_threads=kernel.threads
    )
    spawn_litmus(kernel, planner)
    plan = plan_fixes(
        lint_machine(planner, name=name, config=config.name), planner
    )
    if not as_json:
        print(render_plan(plan))
    fixed = outcome(config, plan)
    reference = outcome(hcc)
    relint_machine = Machine(
        machine_params(kernel), config, num_threads=kernel.threads
    )
    spawn_litmus(kernel, relint_machine)
    apply_fixes(relint_machine, plan)
    relint = lint_machine(relint_machine, name=name, config=config.name)
    ok = fixed == reference and relint.errors == 0
    if not as_json:
        if ok:
            print(f"  fix verified: {name} under {config.name} now matches "
                  "the HCC reference bit-for-bit and re-lints clean")
        else:
            print(f"  FIX FAILED for {name} under {config.name}: "
                  f"fixed={fixed} reference={reference}, "
                  f"{relint.errors} residual error(s)")
    return 0 if ok else 1


def _cmd_litmus(args) -> int:
    """Run litmus kernels directly, or the memory-model matrix (--matrix)."""
    import json as _json
    import pathlib

    from repro.core.config import INTER_ADDR_L, INTRA_BMI
    from repro.eval.runner import run_litmus
    from repro.workloads.litmus import LITMUS

    kernels = args.kernel or None
    if args.matrix:
        from repro.eval import bench
        from repro.models.matrix import (
            matrix_bench_payload,
            render_matrix,
            run_matrix,
        )

        models = (
            [m for m in args.models.split(",") if m] if args.models else None
        )
        engines = (
            [e for e in args.engines.split(",") if e] if args.engines else None
        )

        def go():
            return run_matrix(
                models, kernels, engines, executor=_sweep_executor(args)
            )

        result, seconds = bench.measure(go)
        doc = result.to_dict()
        if args.bench:
            payload = matrix_bench_payload(result, seconds)
            path = bench.write_bench_json(payload)
            print(f"bench -> {path}", file=sys.stderr)
        if args.out:
            pathlib.Path(args.out).write_text(
                _json.dumps(doc, indent=1, sort_keys=True)
            )
            print(f"matrix -> {args.out}", file=sys.stderr)
        if args.json:
            print(_json.dumps(doc, indent=1, sort_keys=True))
        else:
            print(render_matrix(result))
        return 0 if result.ok else 1

    # Direct mode: run each kernel once under the selected model, applying
    # the kernel's self-checking oracle where it has one.
    worst = 0
    for name in kernels or list(LITMUS):
        kernel = LITMUS.get(name)
        if kernel is None:
            from repro.common.errors import ConfigError

            raise ConfigError(f"unknown litmus kernel {name!r} (try `repro list`)")
        config = INTER_ADDR_L if kernel.model == "inter" else INTRA_BMI
        verify = kernel.determinate
        try:
            result = run_litmus(
                name, config, verify=verify, memory_digest=True,
                model=args.model, engine=args.engine,
            )
        except AssertionError as exc:
            print(f"{name:36s} [{kernel.model}] ORACLE FAILED: {exc}")
            worst = 1
            continue
        tag = "verified" if verify and kernel.check else "ran (no oracle)"
        print(f"{name:36s} [{kernel.model}] {tag}  "
              f"exec {result.exec_time} cycles  digest {result.memory_digest}")
    return worst


def _cmd_chaos(args) -> int:
    """Seeded fault-injection sweep with degraded-mode verification."""
    from repro.common.errors import ConfigError
    from repro.common.rng import DEFAULT_SEED
    from repro.faults.chaos import default_targets, run_chaos
    from repro.faults.model import FAULT_CATALOG, FaultKind, random_plans
    from repro.faults import report as frpt

    if args.engine is not None:
        # Same env-var route as the figure sweeps: workers inherit it and
        # the result cache stays engine-agnostic.
        os.environ["REPRO_ENGINE"] = args.engine
    if args.list_faults:
        print("Fault kinds (repro.faults):")
        for kind in FaultKind:
            print(f"  {kind.value:22s}{FAULT_CATALOG[kind]}")
        return 0
    kinds = None
    if args.faults:
        try:
            kinds = [FaultKind(k) for k in args.faults.split(",") if k]
        except ValueError as exc:
            raise ConfigError(
                f"{exc} (see `repro chaos --list-faults`)"
            ) from None
    seed = DEFAULT_SEED if args.seed is None else args.seed
    plans = random_plans(args.plans, seed=seed, kinds=kinds)
    targets = default_targets(
        args.workload or None, scale=args.scale, model=args.model
    )
    result = run_chaos(targets, plans, executor=_sweep_executor(args))
    summary = frpt.summarize(result)
    if args.json:
        print(frpt.render_json(summary), end="")
    else:
        print(frpt.render_text(summary), end="")
    return 0 if result.clean else 1


def _cmd_bench(args) -> int:
    """Timed (or profiled) in-process sweep for the perf trajectory.

    Runs the fig9 or fig12 matrix serially in-process (``jobs=1``, no
    result cache) so the wall-clock measures the simulator core and nothing
    else, then archives median/p95 seconds to ``BENCH_<target>.json`` via
    :mod:`repro.eval.bench`.  ``--profile`` swaps the timing loop for one
    cProfile'd pass and prints the top 25 functions by cumulative time.
    """
    from repro.eval import bench
    from repro.eval.parallel import SweepExecutor

    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.model is not None:
        os.environ["REPRO_MODEL"] = args.model

    def sweep():
        executor = SweepExecutor(jobs=1, cache=None)
        if args.target == "fig12":
            return sweep_inter(
                _PAPER_INTER_APPS,
                list(INTER_CONFIGS),
                scale=args.scale,
                executor=executor,
            )
        return sweep_intra(
            sorted(MODEL_ONE),
            list(INTRA_CONFIGS),
            scale=args.scale,
            executor=executor,
        )

    if args.profile:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        sweep()
        prof.disable()
        pstats.Stats(prof).sort_stats("cumulative").print_stats(25)
        return 0

    _, seconds = bench.measure(sweep, warmup=args.warmup, repeat=args.repeat)
    payload = bench.record(
        args.target,
        seconds,
        warmup=args.warmup,
        extra={
            "scale": args.scale,
            "model": args.model or os.environ.get("REPRO_MODEL", "base"),
        },
    )
    path = bench.write_bench_json(payload, out=args.out)
    print(
        f"{args.target}: engine={payload['engine']} "
        f"median={payload['median_s']:.3f}s p95={payload['p95_s']:.3f}s "
        f"({args.repeat} run(s), warmup {args.warmup}) -> {path}"
    )
    return 0


def _cmd_serve(args) -> int:
    """Run the job server — or, with ``--bench``, the load generator."""
    from repro.common.rng import DEFAULT_SEED
    from repro.serve import ServerConfig, WorkerFaultPlan, bench_serve
    from repro.serve import server as serve_server

    if args.bench and args.chaos_kill:
        from repro.serve.drill import chaos_drill

        doc = chaos_drill(
            jobs=args.jobs_count,
            kills=args.kills,
            corrupt=args.corrupt,
            concurrency=args.concurrency,
            workers=args.workers,
            scale=args.scale,
            seed=DEFAULT_SEED if args.fault_seed is None else args.fault_seed,
            out=args.out or "BENCH_chaos_drill.json",
            work_dir=args.work_dir,
        )
        print(f"chaos drill: {doc['completed']}/{doc['jobs']} jobs done "
              f"across {doc['kills']} SIGKILL/restart cycle(s) "
              f"({doc['incarnations']} incarnations, {doc['seconds']}s)")
        print(f"  corruption: {doc['corrupted_files']} file(s) corrupted -> "
              f"{doc['corrupt_healed']} healed, "
              f"{doc['corrupt_quarantined']} quarantined, "
              f"{doc['corrupt_undetected']} undetected")
        print(f"  recovery: {doc['recovered_jobs_observed']} job(s) "
              f"recovered, {doc['deduped_jobs_observed']} deduped, "
              f"{doc['retries']} client retries, "
              f"{doc['resubmissions']} resubmissions")
        print(f"  divergences {doc['divergences']}  "
              f"failures {doc['failures']}  "
              f"-> {'OK' if doc['ok'] else 'FAILED'}")
        return 0 if doc["ok"] else 1
    if args.bench:
        doc = bench_serve(
            jobs=args.jobs_count,
            concurrency=args.concurrency,
            workers=args.workers,
            scale=args.scale,
            out=args.out or "BENCH_serve.json",
        )
        cold, hot = doc["cold"], doc["hot"]
        print(f"serve bench: {doc['jobs_per_pass']} jobs/pass x 2 passes, "
              f"{doc['concurrency']} client(s), {doc['workers']} worker(s)")
        print(f"  cold  p50 {cold['p50_ms']}ms  p99 {cold['p99_ms']}ms  "
              f"hit-ratio {cold['hit_ratio']}  ({cold['jobs_per_s']} jobs/s)")
        print(f"  hot   p50 {hot['p50_ms']}ms  p99 {hot['p99_ms']}ms  "
              f"hit-ratio {hot['hit_ratio']}  ({hot['jobs_per_s']} jobs/s)")
        print(f"  divergences {cold['divergences'] + hot['divergences']}  "
              f"failures {cold['failures'] + hot['failures']}  "
              f"hot/cold speedup {doc['speedup_hot_vs_cold']}x")
        bad = (cold["divergences"] + hot["divergences"]
               + cold["failures"] + hot["failures"])
        return 0 if bad == 0 else 1
    faults = None
    if args.fault_rate:
        faults = WorkerFaultPlan(
            rate=args.fault_rate,
            kind=args.fault_kind,
            seed=DEFAULT_SEED if args.fault_seed is None else args.fault_seed,
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        quota=args.quota,
        queue_limit=args.queue_limit,
        timeout=args.timeout,
        retries=args.retries,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        faults=faults,
        journal_dir=args.journal,
        resume=args.resume,
    )
    return serve_server.run(config)


def _cmd_cache(args) -> int:
    """Inspect, verify, or garbage-collect the persistent result cache."""
    import json as _json

    from repro.eval.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        doc = cache.stats()
    elif args.action == "verify":
        doc = cache.verify(repair=not args.no_repair)
    else:
        doc = cache.gc()
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    elif args.action == "stats":
        print(f"cache {doc['root']}: {doc['entries']} entries, "
              f"{doc['bytes']} bytes (schema {doc['schema']}, "
              f"version {doc['version']})")
        for tag in sorted(doc["by_schema"]):
            print(f"  schema {tag}: {doc['by_schema'][tag]} entries")
        print(f"  quarantined files: {doc['quarantined_files']}")
    elif args.action == "verify":
        print(f"verified {doc['checked']} entries: {doc['ok']} ok, "
              f"{doc['stale']} stale, {doc['corrupt']} corrupt "
              f"({doc['repaired']} quarantined)")
        for path in doc["corrupt_paths"]:
            print(f"  corrupt: {path}")
    else:
        print(f"gc: removed {doc['stale_removed']} stale entries, "
              f"{doc['quarantine_removed']} quarantined files "
              f"({doc['corrupt_quarantined']} newly quarantined); "
              f"kept {doc['kept']}")
    if args.action == "verify":
        return 1 if doc["corrupt"] else 0
    return 0


def _cmd_table1(_args) -> int:
    print(rpt.render_table1())
    return 0


def _cmd_table3(args) -> int:
    machine = (
        inter_block_machine() if args.machine == "inter" else intra_block_machine()
    )
    print(rpt.render_table3(machine))
    return 0


def _cmd_storage(_args) -> int:
    print(rpt.render_storage(storage_report()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (one subcommand per artifact)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations").set_defaults(
        fn=_cmd_list
    )

    p_run = sub.add_parser("run", help="run one verified (workload, config)")
    p_run.add_argument("workload")
    p_run.add_argument("--config", default=None,
                       help="Table II name (default: B+M+I or Addr+L)")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core (default: $REPRO_ENGINE or ref)",
    )
    p_run.add_argument(
        "--model", choices=("base", "rc", "sisd"), default=None,
        help="memory model for software-coherent configs "
        "(default: $REPRO_MODEL or base; HCC configs always run MESI)",
    )
    p_run.add_argument(
        "--staleness",
        action="store_true",
        help="run with the stale-read detector (Model-1 workloads); "
        "exit 1 if any read returned stale data",
    )
    p_run.set_defaults(fn=_cmd_run)

    for name, fn, needs_scale, blurb in (
        ("fig9", _cmd_fig9, True,
         "regenerate fig9: intra-block config sweep (exec-time breakdown)"),
        ("fig10", _cmd_fig10, True,
         "regenerate fig10: software coherence (B+M+I) vs hardware MESI"),
        ("fig11", _cmd_fig11, True,
         "regenerate fig11: inter-block locality (Addr vs Addr+L)"),
        ("fig12", _cmd_fig12, True,
         "regenerate fig12: inter-block config sweep (NoC traffic)"),
        ("table1", _cmd_table1, False,
         "regenerate table1: WB/INV annotation rules"),
        ("storage", _cmd_storage, False,
         "regenerate the per-structure storage-overhead report"),
    ):
        p = sub.add_parser(name, help=blurb)
        if needs_scale:
            p.add_argument("--scale", type=float, default=1.0)
            p.add_argument(
                "--engine", choices=("ref", "fast"), default=None,
                help="simulator core, exported as $REPRO_ENGINE so worker "
                "processes inherit it (default: $REPRO_ENGINE or ref)",
            )
            p.add_argument(
                "--model", choices=("base", "rc", "sisd"), default=None,
                help="memory model for the software-coherent cells, "
                "exported as $REPRO_MODEL (default: base); the result "
                "cache keys on it",
            )
            p.add_argument(
                "--jobs", type=int, default=None,
                help="parallel sweep workers (default: CPU count; 1 = serial)",
            )
            p.add_argument(
                "--no-cache", action="store_true",
                help="always simulate; do not read or write the result cache",
            )
            p.add_argument(
                "--clear-cache", action="store_true",
                help="empty the result cache ($REPRO_CACHE_DIR or "
                "~/.cache/repro-sweeps) before running",
            )
            p.add_argument(
                "--trace", metavar="DIR", default=None,
                help="replay the sweep serially with event tracing on; "
                "write one JSONL trace per cell under DIR",
            )
            p.add_argument(
                "--metrics", metavar="PATH", default=None,
                help="replay the sweep serially with a metrics registry "
                "attached; write {app: {config: snapshot}} JSON to PATH",
            )
        p.set_defaults(fn=fn)

    p_tr = sub.add_parser(
        "trace", help="replay one (workload, config) cell with tracing on"
    )
    p_tr.add_argument("workload")
    p_tr.add_argument("--config", default=None,
                      help="Table II name (default: B+M+I or Addr+L)")
    p_tr.add_argument("--scale", type=float, default=1.0)
    p_tr.add_argument("--out", metavar="PATH", default=None,
                      help="JSONL trace path (default: <app>-<cfg>.trace.jsonl)")
    p_tr.add_argument("--chrome", metavar="PATH", default=None,
                      help="also write a Chrome trace_event JSON file")
    p_tr.add_argument("--metrics", metavar="PATH", default=None,
                      help="also write the metrics snapshot as JSON")
    p_tr.set_defaults(fn=_cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection with degraded-mode verification",
        description=(
            "Run timing-independent workloads (determinate litmus kernels, "
            "lock-free SPLASH/NAS kernels, and a tiny-cache pressure "
            "target) under N seeded fault plans, and verify every degraded "
            "run's final memory bit-for-bit against the hardware-coherent "
            "(HCC) reference.  Faults may only cost cycles, never change a "
            "value: exit 1 on any divergence, 0 when clean, 2 on usage "
            "errors.  See docs/RESILIENCE.md."
        ),
    )
    p_chaos.add_argument(
        "--workload", action="append", default=None, metavar="NAME",
        help="chaos target (repeatable): a workload or litmus-kernel name, "
        "'litmus' for every determinate kernel, or 'tiny' for the "
        "small-cache pressure target (default: litmus + fft + lu_cont + "
        "is + tiny)",
    )
    p_chaos.add_argument(
        "--plans", type=int, default=10,
        help="number of seeded random fault plans (default: 10)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=None,
        help="root seed for plan generation (default: the repo-wide seed); "
        "the whole sweep reproduces from this one value",
    )
    p_chaos.add_argument(
        "--faults", default=None, metavar="KIND,KIND",
        help="restrict plans to these fault kinds "
        "(see --list-faults; default: all kinds)",
    )
    p_chaos.add_argument("--scale", type=float, default=0.5)
    p_chaos.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core, exported as $REPRO_ENGINE (default: ref)",
    )
    p_chaos.add_argument(
        "--model", choices=("base", "rc", "sisd"), default=None,
        help="memory model for the software-coherent chaos cells "
        "(default: base); HCC reference cells are unaffected",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: CPU count; 1 = serial)",
    )
    p_chaos.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; do not read or write the result cache",
    )
    p_chaos.add_argument(
        "--clear-cache", action="store_true",
        help="empty the result cache before running",
    )
    p_chaos.add_argument(
        "--json", action="store_true",
        help="emit the chaos report as JSON instead of text",
    )
    p_chaos.add_argument(
        "--list-faults", action="store_true",
        help="list the injectable fault kinds and exit",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_lit = sub.add_parser(
        "litmus",
        help="run litmus kernels; --matrix is the memory-model "
        "conformance grid",
        description=(
            "Run targeted litmus kernels through the sweep machinery.  "
            "Without --matrix, run the named kernels (default: all) once "
            "under the selected memory model and apply each kernel's "
            "self-checking oracle.  With --matrix, run every selected "
            "(model x kernel x engine) cell through one cached sweep "
            "batch, digest-compare each cell against the hardware-"
            "coherent oracle, and print the verdict grid; exit 1 on any "
            "verdict that disagrees with the documented expectation "
            "table (docs/MEMORY_MODELS.md)."
        ),
    )
    p_lit.add_argument(
        "kernel", nargs="*",
        help="litmus kernel names (default: every registered kernel)",
    )
    p_lit.add_argument(
        "--matrix", action="store_true",
        help="run the (model x kernel x engine) conformance grid",
    )
    p_lit.add_argument(
        "--model", choices=("base", "hcc", "rc", "sisd"), default=None,
        help="memory model for direct runs "
        "(default: $REPRO_MODEL or base; ignored with --matrix)",
    )
    p_lit.add_argument(
        "--models", default=None, metavar="NAME,NAME",
        help="matrix: comma-separated model axis "
        "(default: base,hcc,rc,sisd)",
    )
    p_lit.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core for direct runs "
        "(default: $REPRO_ENGINE or ref; ignored with --matrix)",
    )
    p_lit.add_argument(
        "--engines", default=None, metavar="NAME,NAME",
        help="matrix: comma-separated engine axis (default: ref,fast)",
    )
    p_lit.add_argument(
        "--jobs", type=int, default=None,
        help="matrix: parallel sweep workers (default: CPU count)",
    )
    p_lit.add_argument(
        "--no-cache", action="store_true",
        help="matrix: always simulate; do not touch the result cache",
    )
    p_lit.add_argument(
        "--clear-cache", action="store_true",
        help="matrix: empty the result cache before running",
    )
    p_lit.add_argument(
        "--json", action="store_true",
        help="matrix: print the grid document as JSON instead of text",
    )
    p_lit.add_argument(
        "--out", metavar="PATH", default=None,
        help="matrix: also write the grid JSON to PATH (the CI artifact)",
    )
    p_lit.add_argument(
        "--bench", action="store_true",
        help="matrix: archive wall-clock + per-model exec medians to "
        "BENCH_matrix.json at the repo root",
    )
    p_lit.set_defaults(fn=_cmd_litmus)

    p_bench = sub.add_parser(
        "bench",
        help="time (or profile) a paper sweep and archive BENCH_<name>.json",
        description=(
            "Run the fig9 (intra-block) or fig12 (inter-block) matrix "
            "serially in-process with the result cache disabled, so the "
            "wall-clock measures the simulator core.  Without --profile, "
            "archive per-run seconds plus median/p95, engine, and git rev "
            "to BENCH_<target>.json at the repo root (the tracked perf "
            "trajectory; see docs/PERFORMANCE.md).  With --profile, run "
            "once under cProfile and print the top 25 functions by "
            "cumulative time instead."
        ),
    )
    p_bench.add_argument(
        "target", nargs="?", choices=("fig9", "fig12"), default="fig9",
        help="which paper sweep to time (default: fig9)",
    )
    p_bench.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core (default: $REPRO_ENGINE or ref)",
    )
    p_bench.add_argument(
        "--model", choices=("base", "rc", "sisd"), default=None,
        help="memory model, exported as $REPRO_MODEL (default: base)",
    )
    p_bench.add_argument("--scale", type=float, default=1.0)
    p_bench.add_argument(
        "--warmup", type=int, default=0,
        help="untimed warmup runs before measuring (default: 0)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=1,
        help="timed runs; median/p95 are archived (default: 1)",
    )
    p_bench.add_argument(
        "--out", metavar="PATH", default=None,
        help="JSON output path (default: BENCH_<target>.json at repo root)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="cProfile one run and print the top 25 cumulative functions",
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_gen = sub.add_parser(
        "gen",
        help="run one seeded generative traffic scenario, oracle-verified",
        description=(
            "Deterministically expand a ScenarioSpec (pattern, seed, "
            "threads, footprint, rounds, skew) into a sharing-pattern "
            "program, run it, and verify the final memory word-for-word "
            "against the analytically computed oracle.  Generated programs "
            "are coherent by construction, so any Table II configuration "
            "must produce the HCC image.  See docs/ARCHITECTURE.md."
        ),
    )
    p_gen.add_argument(
        "pattern", nargs="?", default=None,
        help="sharing pattern (see --list-patterns)",
    )
    p_gen.add_argument("--seed", type=int, default=None,
                       help="scenario seed (default: the repo-wide seed)")
    p_gen.add_argument("--threads", type=int, default=4)
    p_gen.add_argument("--footprint", type=int, default=4, metavar="LINES",
                       help="shared-data footprint in cache lines (default: 4)")
    p_gen.add_argument("--rounds", type=int, default=2)
    p_gen.add_argument("--skew", type=float, default=1.2,
                       help="Zipf exponent for zipf_hot (default: 1.2)")
    p_gen.add_argument("--config", default="B+M+I",
                       help="Table II intra config (default: B+M+I)")
    p_gen.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core (default: $REPRO_ENGINE or ref)",
    )
    p_gen.add_argument("--list-patterns", action="store_true",
                       help="list the generator patterns and exit")
    p_gen.set_defaults(fn=_cmd_gen)

    p_rp = sub.add_parser(
        "replay",
        help="re-execute a recorded JSONL trace as a first-class workload",
        description=(
            "Partition a trace (the `repro trace` JSONL schema) into "
            "per-core program-order streams, rebuild each CPU-issued event "
            "as an ISA operation, and run the reconstructed program on the "
            "simulator.  Hardware-generated events (fills, evictions, "
            "grants) are skipped — the machine regenerates them.  "
            "--roundtrip re-records the replay and exits 1 unless it is "
            "bit-identical to the input trace."
        ),
    )
    p_rp.add_argument("trace", help="JSONL trace path (repro trace schema)")
    p_rp.add_argument("--model", choices=("intra", "inter"), default="intra",
                      help="machine model the trace was recorded on")
    p_rp.add_argument("--config", default=None,
                      help="Table II name (default: B+M+I or Addr+L)")
    p_rp.add_argument("--threads", type=int, default=None,
                      help="thread count (default: inferred from the trace)")
    p_rp.add_argument("--blocks", type=int, default=4,
                      help="inter-block model: number of blocks (default: 4)")
    p_rp.add_argument("--cores-per-block", type=int, default=8,
                      help="inter-block model: cores per block (default: 8)")
    p_rp.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core (default: $REPRO_ENGINE or ref)",
    )
    p_rp.add_argument("--out", metavar="PATH", default=None,
                      help="write the re-recorded replay trace to PATH")
    p_rp.add_argument(
        "--roundtrip", action="store_true",
        help="verify record -> replay -> re-record is bit-identical; "
        "exit 1 on any differing event",
    )
    p_rp.set_defaults(fn=_cmd_replay)

    p_fleet = sub.add_parser(
        "fleet",
        help="auto-checked scenario fleet: N generated scenarios × "
        "configs × engines",
        description=(
            "Sample N ScenarioSpecs across every generator pattern and run "
            "each under every requested (software-coherent config × "
            "engine) plus an implicit hardware-coherent reference cell, "
            "all through the parallel cached sweep executor.  The verdict "
            "checks three oracles — final-memory digest vs the HCC "
            "reference, bit-identical stats+digest across engines, and "
            "Section IV-A lint cleanliness — and the command exits 1 on "
            "any divergence, mismatch, or finding."
        ),
    )
    p_fleet.add_argument(
        "--scenarios", type=int, default=32, metavar="N",
        help="number of sampled scenarios (default: 32)",
    )
    p_fleet.add_argument(
        "--seed", type=int, default=None,
        help="root seed for scenario sampling (default: the repo-wide "
        "seed); the whole fleet reproduces from this one value",
    )
    p_fleet.add_argument(
        "--engines", default="ref", metavar="NAME,NAME",
        help="comma-separated simulator cores to cross-check "
        "(default: ref)",
    )
    p_fleet.add_argument(
        "--configs", default="Base,B+M+I", metavar="NAME,NAME",
        help="comma-separated software-coherent Table II intra configs "
        "(default: Base,B+M+I; the HCC reference is implicit)",
    )
    p_fleet.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: CPU count; 1 = serial)",
    )
    p_fleet.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; do not read or write the result cache",
    )
    p_fleet.add_argument(
        "--clear-cache", action="store_true",
        help="empty the result cache before running",
    )
    p_fleet.add_argument(
        "--no-lint", action="store_true",
        help="skip the static Section IV-A lint pass",
    )
    p_fleet.add_argument(
        "--json", action="store_true",
        help="print the full verdict document as JSON",
    )
    p_fleet.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the verdict JSON to PATH (the CI artifact)",
    )
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_srv = sub.add_parser(
        "serve",
        help="HTTP/JSON job server over the sweep engine (simulation "
        "as a service); --bench runs the load generator",
        description=(
            "Serve sweep/gen/litmus/chaos/lint/fleet jobs over HTTP: "
            "requests are validated against the versioned job schema, "
            "sharded across a bounded worker pool, and fronted by the "
            "persistent result cache so identical submissions from any "
            "number of clients simulate once.  Admission control: a "
            "per-client active-job quota and a global queue ceiling, both "
            "answered with HTTP 429.  SIGINT/SIGTERM drain gracefully.  "
            "With --bench, instead run the load generator against an "
            "in-process server (cold + hot pass), verify zero divergence "
            "vs direct execution, and archive p50/p99 latency plus "
            "cache-hit ratio to BENCH_serve.json.  API reference: "
            "docs/SERVICE.md."
        ),
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8787,
                       help="TCP port; 0 picks an ephemeral port "
                       "(default: 8787)")
    p_srv.add_argument("--workers", type=int, default=4,
                       help="worker pool width (default: 4)")
    p_srv.add_argument("--quota", type=int, default=8,
                       help="max active jobs per client (default: 8)")
    p_srv.add_argument("--queue-limit", type=int, default=512,
                       help="max queued+in-flight work units before "
                       "submissions get 429 (default: 512)")
    p_srv.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-unit wall-clock budget in seconds "
                       "(default: none)")
    p_srv.add_argument("--retries", type=int, default=1,
                       help="per-unit retry budget (default: 1)")
    p_srv.add_argument("--no-cache", action="store_true",
                       help="serve without the persistent result cache")
    p_srv.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory (default: "
                       "$REPRO_CACHE_DIR or ~/.cache/repro-sweeps)")
    p_srv.add_argument("--journal", default=None, metavar="DIR",
                       help="write-ahead journal directory: every job "
                       "lifecycle transition is fsync'd there before the "
                       "client sees the response (docs/RESILIENCE.md)")
    p_srv.add_argument("--resume", action="store_true",
                       help="replay the journal at startup: requeue "
                       "interrupted jobs under their original ids and "
                       "dedupe idempotent resubmissions")
    p_srv.add_argument("--fault-rate", type=float, default=0.0,
                       metavar="P",
                       help="inject seeded worker faults with per-attempt "
                       "probability P (resilience testing; default: 0)")
    p_srv.add_argument("--fault-kind", choices=("crash", "stall"),
                       default="crash",
                       help="injected fault mode (default: crash)")
    p_srv.add_argument("--fault-seed", type=int, default=None,
                       help="fault-stream seed (default: the repo-wide seed)")
    p_srv.add_argument("--bench", action="store_true",
                       help="run the load-generator benchmark instead of "
                       "serving")
    p_srv.add_argument("--jobs-count", type=int, default=120, metavar="N",
                       help="bench: submissions per pass (default: 120)")
    p_srv.add_argument("--concurrency", type=int, default=24,
                       help="bench: concurrent client threads (default: 24)")
    p_srv.add_argument("--scale", type=float, default=0.3,
                       help="bench: workload scale per cell (default: 0.3)")
    p_srv.add_argument("--out", metavar="PATH", default=None,
                       help="bench: JSON output path "
                       "(default: BENCH_serve.json at repo root)")
    p_srv.add_argument("--chaos-kill", action="store_true",
                       help="with --bench: run the durability chaos drill "
                       "instead — SIGKILL a real server subprocess "
                       "mid-flight, corrupt random cache files, resume "
                       "from the journal, and prove zero loss / zero "
                       "divergence (-> BENCH_chaos_drill.json)")
    p_srv.add_argument("--kills", type=int, default=3,
                       help="chaos drill: SIGKILL/restart cycles "
                       "(default: 3)")
    p_srv.add_argument("--corrupt", type=int, default=6, metavar="N",
                       help="chaos drill: cache files corrupted per cycle "
                       "(default: 6)")
    p_srv.add_argument("--work-dir", default=None, metavar="DIR",
                       help="chaos drill: pin the scratch dir (journal, "
                       "caches, server log) instead of a temp dir — CI "
                       "uploads the journal from here")
    p_srv.set_defaults(fn=_cmd_serve)

    p_cache = sub.add_parser(
        "cache",
        help="inspect / verify / garbage-collect the persistent "
        "result cache",
        description=(
            "Integrity tooling for the content-addressed sweep-result "
            "cache.  Every entry embeds a sha256 payload checksum "
            "(verified on load; corrupt entries are quarantined and "
            "recomputed, never served).  `stats` summarises the store, "
            "`verify` checks every entry (exit 1 if any is corrupt), "
            "`gc` reclaims stale-schema entries and the quarantine "
            "directory.  Details: docs/RESILIENCE.md."
        ),
    )
    p_cache.add_argument("action", choices=("stats", "verify", "gc"),
                         help="what to do")
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR "
                         "or ~/.cache/repro-sweeps)")
    p_cache.add_argument("--no-repair", action="store_true",
                         help="verify: report corrupt entries without "
                         "quarantining them")
    p_cache.add_argument("--json", action="store_true",
                         help="emit the raw JSON report")
    p_cache.set_defaults(fn=_cmd_cache)

    p_t3 = sub.add_parser("table3", help="print the architecture table")
    p_t3.add_argument("--machine", choices=("intra", "inter"), default="inter")
    p_t3.set_defaults(fn=_cmd_table3)

    p_lint = sub.add_parser(
        "lint",
        help="statically check WB/INV annotations (Section IV-A rules)",
        description=(
            "Extract each target's per-thread operation streams (without "
            "running the cache simulator), derive the cross-thread "
            "producer-consumer edges, and check every Table I annotation "
            "rule.  Exit 1 on any error finding (or, for litmus kernels, "
            "any deviation from the kernel's documented expectation).  "
            "Rules are documented in docs/ANNOTATIONS.md."
        ),
    )
    p_lint.add_argument(
        "workload", nargs="*",
        help="workload or litmus-kernel names (see `repro list`)",
    )
    p_lint.add_argument(
        "--all-workloads", action="store_true",
        help="lint every shipped SPLASH/NAS workload",
    )
    p_lint.add_argument(
        "--litmus", action="store_true",
        help="lint every litmus kernel and cross-validate against its "
        "documented expectation (broken kernels must be flagged)",
    )
    p_lint.add_argument(
        "--config", default=None,
        help="Table II config to analyze under (default: Base intra, "
        "Addr inter; HCC is rejected — nothing to lint)",
    )
    p_lint.add_argument(
        "--model", choices=("base", "rc", "sisd"), default="base",
        help="memory model whose lint profile parameterizes the rule "
        "catalog: findings of rules that model discharges in the "
        "protocol are waived (default: base; litmus expectations are "
        "documented for base)",
    )
    p_lint.add_argument("--scale", type=float, default=0.5)
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the report(s) as JSON instead of text",
    )
    p_lint.add_argument(
        "--fix", action="store_true",
        help="for litmus kernels with errors: insert the missing "
        "level-adaptive WB/INV ops, re-run on the simulator, and verify "
        "bit-identical observations+memory against the HCC reference",
    )
    p_lint.add_argument(
        "--dump-cfg", action="store_true",
        help="print each thread's control-flow graph instead of linting",
    )
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.common.errors import ConfigError

    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "run" and args.config is None:
        args.config = "B+M+I" if args.workload in MODEL_ONE else "Addr+L"
    try:
        return args.fn(args)
    except ConfigError as exc:
        # Bad --jobs / --config / workload parameters: a usage error, not a
        # crash — print the message without a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; the convention
        # is to die quietly with SIGPIPE's exit status.
        sys.stderr.close()  # suppress the 'lost sys.stderr' warning
        return 128 + 13


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
