"""Modified Entry Buffer (MEB) — Section IV-B.1.

A small per-core hardware buffer that accumulates the *line IDs* (tag-array
positions, not addresses — 9 bits for a 32 KB / 64 B-line L1) of lines
written during the current epoch.  At epoch end, a ``WB ALL`` consults the
MEB instead of walking the whole tag array:

* entries may go stale (the written line was evicted and replaced by a line
  never written) — stale entries are *not* removed; the WB simply skips
  non-dirty lines;
* on overflow the MEB is marked invalid and ``WB ALL`` falls back to the
  full tag walk.
"""

from __future__ import annotations


class MEB:
    """Fixed-capacity set of line IDs with overflow fallback."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._ids: set[int] = set()
        # Membership bitmask over buffered IDs (bit ``i`` set while ID *i*
        # is buffered): the per-write duplicate check is one shift/AND.
        # ``_ids`` remains the source of ``line_ids()`` iteration order.
        self._mask = 0
        self.overflowed = False
        self.recording = False
        # Counters for ablation studies.
        self.insertions = 0
        self.overflow_events = 0
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None
        self.core = 0

    def begin_epoch(self) -> None:
        """Arm recording; clears previous epoch's contents."""
        self._ids.clear()
        self._mask = 0
        self.overflowed = False
        self.recording = True

    def end_epoch(self) -> None:
        self.recording = False

    def record_write(self, line_id: int) -> None:
        """Called when a clean word is updated (write sets a new dirty bit)."""
        if not self.recording or self.overflowed:
            return
        if self._mask >> line_id & 1:
            return
        if self.faults is not None and self.faults.meb_overflow(self.core):
            self.force_overflow()
            return
        if len(self._ids) >= self.capacity:
            self.overflowed = True
            self.overflow_events += 1
            return
        self._ids.add(line_id)
        self._mask |= 1 << line_id
        self.insertions += 1

    def force_overflow(self) -> None:
        """Mark the epoch overflowed (capacity exhausted or injected fault)."""
        if not self.overflowed:
            self.overflowed = True
            self.overflow_events += 1

    @property
    def usable(self) -> bool:
        """True when WB ALL may use MEB contents instead of a tag walk."""
        return self.recording and not self.overflowed

    def line_ids(self) -> frozenset[int]:
        return frozenset(self._ids)

    def __len__(self) -> int:
        return len(self._ids)
