"""Physical cache hierarchy shared by both protocols.

Owns the cache arrays (per-core L1s, per-block banked L2s, chip-wide banked
L3), the line↔bank mapping, and the latency/traffic helpers every protocol
uses.  Policy (what a miss does, what WB/INV mean, directory state) lives in
:mod:`repro.coherence.incoherent` and :mod:`repro.coherence.mesi`.

Bank mapping: a line's home L2 bank within a block is ``line_addr mod
cores_per_block`` (one bank per core, Table III); its home L3 bank is
``line_addr mod num_l3_banks``.  Latency for a remote bank adds the mesh
round trip on top of the local-bank round-trip time.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import AddressError
from repro.common.params import WORD_BYTES, MachineParams
from repro.mem.cache import Cache
from repro.mem.line import CacheLine
from repro.mem.memory import MainMemory
from repro.noc.mesh import Mesh
from repro.sim.stats import MachineStats, TrafficCat


class Hierarchy:
    """Cache arrays plus geometry/latency/traffic plumbing for one chip.

    ``cache_class`` selects the tag-array implementation (the reference
    per-set-dict :class:`~repro.mem.cache.Cache` by default; the fast
    engine substitutes :class:`~repro.engines.fastcache.PackedCache`).
    Both expose the same interface and observable iteration order, so the
    protocols are implementation-agnostic.
    """

    def __init__(
        self,
        machine: MachineParams,
        stats: MachineStats,
        *,
        cache_class: type = Cache,
    ) -> None:
        self.machine = machine
        self.stats = stats
        self.mesh = Mesh(machine)
        self.memory = MainMemory()
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None
        self.line_bytes = machine.line_bytes
        self.words_per_line = machine.words_per_line
        self.cache_class = cache_class

        self.l1s: list[Cache] = [
            cache_class(machine.l1, name=f"L1[{c}]")
            for c in range(machine.num_cores)
        ]
        # One logical L2 per block, banked one-bank-per-core for latency and
        # capacity. We model each bank as its own Cache array.
        self.l2_banks: list[list[Cache]] = [
            [
                cache_class(machine.l2_bank, name=f"L2[b{b}][{k}]")
                for k in range(machine.cores_per_block)
            ]
            for b in range(machine.num_blocks)
        ]
        self.l3_banks: list[Cache] = [
            cache_class(machine.l3_bank, name=f"L3[{k}]")
            for k in range(machine.num_l3_banks)
        ]

        # Fault-free latency tables (geometry is static; the formula-based
        # paths below stay authoritative whenever an injector is armed).
        cpb = machine.cores_per_block
        self._l2_lat = [
            [
                machine.l2_bank.round_trip
                + 2
                * self.mesh.core_to_l2(c, (c // cpb) * cpb + local)
                for local in range(cpb)
            ]
            for c in range(machine.num_cores)
        ]
        nl3 = len(self.l3_banks)
        self._l3_lat = [
            [
                machine.l3_bank.round_trip + 2 * self.mesh.core_to_l3(c, k)
                for k in range(nl3)
            ]
            for c in range(machine.num_cores)
        ]
        self._mem_lat = []
        for c in range(machine.num_cores):
            tile = self.mesh.core_tile(c)
            corner = self.mesh.nearest_mem_tile(tile)
            self._mem_lat.append(
                machine.mem_round_trip + 2 * self.mesh.latency(tile, corner)
            )
        self._tag_walk: dict[int, int] = {}
        self._line_flits = self.mesh.data_flits(machine.line_bytes)
        self._word_flits = [
            self.mesh.data_flits(n * WORD_BYTES)
            for n in range(machine.words_per_line + 1)
        ]

    # -- address arithmetic ---------------------------------------------------

    def line_of(self, byte_addr: int) -> int:
        """Line address (addr // line size) of *byte_addr*."""
        if byte_addr < 0:
            raise AddressError(f"negative address {byte_addr}")
        return byte_addr // self.line_bytes

    def word_of(self, byte_addr: int) -> int:
        """Word index of *byte_addr* within its line."""
        return (byte_addr % self.line_bytes) // WORD_BYTES

    def word_addr(self, byte_addr: int) -> int:
        """Global word index of *byte_addr* (memory is word-addressed)."""
        return byte_addr // WORD_BYTES

    def lines_overlapping(self, byte_addr: int, length: int) -> range:
        """Line addresses overlapping the byte range [addr, addr+length)."""
        if length <= 0:
            return range(0)
        first = byte_addr // self.line_bytes
        last = (byte_addr + length - 1) // self.line_bytes
        return range(first, last + 1)

    # -- geometry --------------------------------------------------------------

    def block_of_core(self, core: int) -> int:
        """Block that *core* belongs to (contiguous core ranges)."""
        return core // self.machine.cores_per_block

    def l2_bank_of(self, block: int, line_addr: int) -> Cache:
        """Home L2 bank of *line_addr* within *block* (interleaved)."""
        return self.l2_banks[block][line_addr % self.machine.cores_per_block]

    def l2_bank_global_id(self, block: int, line_addr: int) -> int:
        """Chip-wide bank id of the line's home L2 bank (mesh position)."""
        local = line_addr % self.machine.cores_per_block
        return block * self.machine.cores_per_block + local

    def l3_bank_of(self, line_addr: int) -> Cache:
        """Home L3 bank of *line_addr* (interleaved across 4 banks)."""
        return self.l3_banks[line_addr % len(self.l3_banks)]

    def l3_bank_id(self, line_addr: int) -> int:
        """Index of the line's home L3 bank."""
        return line_addr % len(self.l3_banks)

    @property
    def has_l3(self) -> bool:
        """True on multi-block machines with a chip-wide L3."""
        return bool(self.l3_banks)

    def l2_lines_of_block(self, block: int):
        """All resident lines across the block's L2 banks."""
        for bank in self.l2_banks[block]:
            yield from bank.lines()

    def l2_lookup(self, block: int, line_addr: int, *, touch: bool = True):
        """Lookup in the block's home L2 bank (None on miss)."""
        return self.l2_bank_of(block, line_addr).lookup(line_addr, touch=touch)

    # -- latency -----------------------------------------------------------------

    def l1_latency(self) -> int:
        """L1 hit round trip (Table III: 2 cycles)."""
        return self.machine.l1.round_trip

    def l2_latency(self, core: int, line_addr: int) -> int:
        """Core→home-L2-bank round trip (local RT plus mesh hops)."""
        if self.mesh.faults is None:
            return self._l2_lat[core][line_addr % self.machine.cores_per_block]
        bank_id = self.l2_bank_global_id(self.block_of_core(core), line_addr)
        return self.machine.l2_bank.round_trip + 2 * self.mesh.core_to_l2(
            core, bank_id
        )

    def l3_latency(self, core: int, line_addr: int) -> int:
        """Core→home-L3-bank round trip (bank RT plus mesh hops)."""
        assert self.has_l3, "machine has no L3"
        if self.mesh.faults is None:
            return self._l3_lat[core][line_addr % len(self.l3_banks)]
        bank = self.l3_bank_id(line_addr)
        return self.machine.l3_bank.round_trip + 2 * self.mesh.core_to_l3(core, bank)

    def mem_latency(self, core: int) -> int:
        """Off-chip round trip from *core* via the nearest corner."""
        if self.mesh.faults is None:
            lat = self._mem_lat[core]
        else:
            tile = self.mesh.core_tile(core)
            corner = self.mesh.nearest_mem_tile(tile)
            lat = self.machine.mem_round_trip + 2 * self.mesh.latency(
                tile, corner
            )
        if self.faults is not None:
            # Delayed write-back propagation occupies the memory port; the
            # accrued delay is charged to the next round trip.
            lat += self.faults.take_mem_delay()
        return lat

    def tag_walk_latency(self, cache: Cache) -> int:
        """Cost of walking a cache's tag array (WB ALL / INV ALL)."""
        num_sets = cache.params.num_sets
        lat = self._tag_walk.get(num_sets)
        if lat is None:
            per_cycle = max(1, self.machine.tag_walk_sets_per_cycle)
            lat = self._tag_walk[num_sets] = -(-num_sets // per_cycle)
        return lat

    # -- traffic -----------------------------------------------------------------

    def count_line_transfer(self, cat: TrafficCat) -> None:
        """Account one full-line data message (header + line payload)."""
        self.stats.add_traffic(cat, self._line_flits)

    def count_partial_transfer(self, cat: TrafficCat, nwords: int) -> None:
        """Account a dirty-words-only data message."""
        if nwords <= self.machine.words_per_line:
            flits = self._word_flits[nwords]
        else:
            flits = self.mesh.data_flits(nwords * WORD_BYTES)
        self.stats.add_traffic(cat, flits)

    def count_control(self, cat: TrafficCat, messages: int = 1) -> None:
        """Account control messages (one flit each)."""
        self.stats.add_traffic(cat, messages * self.mesh.control_flits())

    # -- backing-store helpers -----------------------------------------------------

    def mem_read_line(self, line_addr: int) -> list[Any]:
        """Read a full line's words from main memory."""
        return self.memory.read_line(line_addr, self.words_per_line)

    def mem_write_back(self, line: CacheLine, mask: int | None = None) -> None:
        """Merge a line's (dirty) words into main memory."""
        use_mask = line.dirty_mask if mask is None else mask
        if use_mask:
            self.memory.write_line_words(
                line.line_addr, self.words_per_line, line.data, use_mask
            )

    def mem_write_full_line(self, line: CacheLine) -> None:
        full = (1 << self.words_per_line) - 1
        self.memory.write_line_words(
            line.line_addr, self.words_per_line, line.data, full
        )
