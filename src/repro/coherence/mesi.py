"""Hardware cache coherence baseline (HCC): full-map directory MESI.

Intra-block machines use a single-level full-map directory at the home L2
bank (presence bits over the block's cores, Table: "full-mapped directory-
based MESI protocol").  Inter-block machines use the paper's *hierarchical*
full-map directory: the L3 directory tracks which *blocks* hold a line (4
presence bits) and which block owns it dirty; each block's L2 directory
tracks its cores (8 presence bits).

The model is operation-level: directory state is exact, invalidations and
data forwards are charged latency and counted as traffic (control flits in
the *invalidation* category, data in *linefill*/*writeback*), and inclusion
is enforced (an L2/L3 eviction recalls the copies above it).  WB/INV
instructions are accepted as free no-ops — the HCC configurations insert
none, and a counter lets tests assert that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.coherence.base import Protocol
from repro.coherence.hierarchy import Hierarchy
from repro.mem.line import CacheLine, MESIState
from repro.sim.stats import TrafficCat


def _iter_bits(mask: int) -> Iterator[int]:
    """Set bit positions of *mask*, ascending — the directory's presence
    vector decoded into core/block IDs.  Iterates a snapshot (ints are
    immutable), so callers may clear bits of the live entry mid-loop."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass
class L2DirEntry:
    """Block-level directory state: which cores hold the line, who owns it.

    ``sharers`` is a presence bitmask over the block's cores — the literal
    full-map directory vector (8 bits per entry in the paper's Table) rather
    than a Python set of core IDs.
    """

    sharers: int = 0
    owner: int | None = None  # core with the line in M


@dataclass
class L3DirEntry:
    """Chip-level directory state: which blocks hold the line.

    ``blocks`` is a presence bitmask over blocks (4 bits in the paper).
    """

    blocks: int = 0
    owner_block: int | None = None  # block holding the line dirty


class MESIProtocol(Protocol):
    """Directory MESI over the same physical hierarchy as the incoherent design."""

    name = "hcc"

    def __init__(self, hierarchy: Hierarchy) -> None:
        super().__init__(hierarchy)
        self._l2_dir: list[dict[int, L2DirEntry]] = [
            {} for _ in range(self.machine.num_blocks)
        ]
        self._l3_dir: dict[int, L3DirEntry] = {}
        #: WB/INV instructions swallowed (should stay 0 in proper HCC runs).
        self.ignored_wbinv_ops = 0

    # ------------------------------------------------------------------
    # directory helpers
    # ------------------------------------------------------------------

    def _dir2(self, block: int, line_addr: int) -> L2DirEntry:
        d = self._l2_dir[block]
        entry = d.get(line_addr)
        if entry is None:
            entry = d[line_addr] = L2DirEntry()
        return entry

    def _dir3(self, line_addr: int) -> L3DirEntry:
        entry = self._l3_dir.get(line_addr)
        if entry is None:
            entry = self._l3_dir[line_addr] = L3DirEntry()
        return entry

    # ------------------------------------------------------------------
    # intra-block downgrade / invalidation
    # ------------------------------------------------------------------

    def _downgrade_owner(self, block: int, line_addr: int) -> int:
        """Owner core M→S; dirty data written into the block's L2.

        Returns the extra latency of the three-hop forward (0 if no owner).
        """
        entry = self._dir2(block, line_addr)
        owner = entry.owner
        if owner is None:
            return 0
        hier = self.hier
        l1_line = hier.l1s[owner].lookup(line_addr, touch=False)
        l2_line = self._l2_line(block, line_addr)
        if l1_line is not None:
            l2_line.data = list(l1_line.data)
            l2_line.dirty_mask |= l1_line.dirty_mask
            l1_line.state = MESIState.S
            l1_line.clean()
        hier.count_control(TrafficCat.INVALIDATION)  # fetch request to owner
        hier.count_line_transfer(TrafficCat.WRITEBACK)  # data back to L2
        self.stats.dir_forwards += 1
        if self.metrics is not None:
            self.metrics.inc("mesi.dir_forwards")
        if self.tracer is not None:
            self.tracer.emit("wb", owner, line=line_addr, level="L1", op="DIR_FWD")
        entry.owner = None
        # Cache-to-cache forward: request to the owner, data straight to the
        # requester (one-way legs, not a full round trip per leg).
        bank_tile = hier.mesh.l2_bank_tile(
            hier.l2_bank_global_id(block, line_addr)
        )
        owner_tile = hier.mesh.core_tile(owner)
        return hier.mesh.latency(bank_tile, owner_tile)

    def _invalidate_core(self, core: int, line_addr: int, block: int) -> None:
        """Drop one core's L1 copy, pulling dirty data into the L2 first."""
        hier = self.hier
        line = hier.l1s[core].remove(line_addr)
        entry = self._dir2(block, line_addr)
        if line is not None and line.dirty:
            l2_line = self._l2_line(block, line_addr)
            l2_line.data = list(line.data)
            l2_line.dirty_mask |= line.dirty_mask
            hier.count_line_transfer(TrafficCat.WRITEBACK)
        hier.count_control(TrafficCat.INVALIDATION, 2)  # inv + ack
        entry.sharers &= ~(1 << core)
        if entry.owner == core:
            entry.owner = None
        self.stats.dir_invalidations += 1
        if self.metrics is not None:
            self.metrics.inc("mesi.dir_invalidations")
        if self.tracer is not None:
            self.tracer.emit("inv", core, line=line_addr, level="L1", op="DIR_INV")

    def _invalidate_block_sharers(
        self, block: int, line_addr: int, *, keep: int | None
    ) -> int:
        """Invalidate every L1 copy in *block* except core *keep*.

        Returns the latency of the farthest invalidation round trip.
        """
        entry = self._dir2(block, line_addr)
        targets = entry.sharers
        if entry.owner is not None:
            targets |= 1 << entry.owner
        if keep is not None:
            targets &= ~(1 << keep)
        if not targets:
            return 0
        hier = self.hier
        bank_tile = hier.mesh.l2_bank_tile(hier.l2_bank_global_id(block, line_addr))
        worst = 0
        for core in _iter_bits(targets):
            self._invalidate_core(core, line_addr, block)
            worst = max(
                worst,
                2 * hier.mesh.latency(bank_tile, hier.mesh.core_tile(core)),
            )
        return worst

    # ------------------------------------------------------------------
    # L2 / L3 fills with inclusion
    # ------------------------------------------------------------------

    def _l2_line(self, block: int, line_addr: int) -> CacheLine:
        """The block's L2 copy, filling from L3/memory if absent."""
        hier = self.hier
        bank = hier.l2_bank_of(block, line_addr)
        line = bank.lookup(line_addr)
        if line is not None:
            return line
        if hier.has_l3:
            l3_line = self._l3_line(line_addr)
            data = list(l3_line.data)
            hier.count_line_transfer(TrafficCat.LINEFILL)
        else:
            data = hier.mem_read_line(line_addr)
            hier.count_line_transfer(TrafficCat.MEMORY)
        line = CacheLine(line_addr, data)
        victim = bank.insert(line)
        if victim is not None:
            self._evict_l2_victim(block, victim)
        self._dir3(line_addr).blocks |= 1 << block
        return line

    def _l3_line(self, line_addr: int) -> CacheLine:
        hier = self.hier
        bank = hier.l3_bank_of(line_addr)
        line = bank.lookup(line_addr)
        if line is not None:
            return line
        data = hier.mem_read_line(line_addr)
        line = CacheLine(line_addr, data)
        victim = bank.insert(line)
        if victim is not None:
            self._evict_l3_victim(victim)
        hier.count_line_transfer(TrafficCat.MEMORY)
        return line

    def _evict_l2_victim(self, block: int, victim: CacheLine) -> None:
        """Inclusion recall: L2 eviction drops every L1 copy in the block."""
        hier = self.hier
        la = victim.line_addr
        entry = self._l2_dir[block].pop(la, None)
        if entry is not None:
            recall = entry.sharers
            if entry.owner is not None:
                recall |= 1 << entry.owner
            for core in _iter_bits(recall):
                line = hier.l1s[core].remove(la)
                if line is not None and line.dirty:
                    victim.data = list(line.data)
                    victim.dirty_mask |= line.dirty_mask
                    hier.count_line_transfer(TrafficCat.WRITEBACK)
                hier.count_control(TrafficCat.INVALIDATION, 2)
        if victim.dirty:
            if hier.has_l3:
                l3_line = self._l3_line(la)
                l3_line.data = list(victim.data)
                l3_line.dirty_mask |= victim.dirty_mask
                hier.count_line_transfer(TrafficCat.WRITEBACK)
            else:
                hier.mem_write_back(victim)
                hier.count_line_transfer(TrafficCat.MEMORY)
        d3 = self._l3_dir.get(la)
        if d3 is not None:
            d3.blocks &= ~(1 << block)
            if d3.owner_block == block:
                d3.owner_block = None

    def _evict_l3_victim(self, victim: CacheLine) -> None:
        """Inclusion recall at chip level: drop the line from every block."""
        la = victim.line_addr
        entry = self._l3_dir.pop(la, None)
        if entry is not None:
            for block in _iter_bits(entry.blocks):
                bank = self.hier.l2_bank_of(block, la)
                l2_victim = bank.remove(la)
                if l2_victim is not None:
                    self._evict_l2_victim(block, l2_victim)
                    if l2_victim.dirty:
                        victim.data = list(l2_victim.data)
                        victim.dirty_mask |= l2_victim.dirty_mask
        if victim.dirty:
            self.hier.mem_write_back(victim)
            self.hier.count_line_transfer(TrafficCat.MEMORY)

    # ------------------------------------------------------------------
    # chip-level (inter-block) coherence
    # ------------------------------------------------------------------

    def _acquire_block_copy(
        self, core: int, block: int, line_addr: int, *, exclusive: bool
    ) -> tuple[int, CacheLine]:
        """Give *block* a coherent L2 copy; handle remote-block state.

        Returns (latency beyond the local L2 round trip, the L2 line).
        """
        hier = self.hier
        lat = 0
        if hier.has_l3:
            d3 = self._dir3(line_addr)
            remote_owner = (
                d3.owner_block
                if d3.owner_block is not None and d3.owner_block != block
                else None
            )
            if remote_owner is not None:
                # Remote block holds the line dirty: downgrade it through L3.
                lat += hier.l3_latency(core, line_addr)
                lat += self._downgrade_owner(remote_owner, line_addr)
                remote_l2 = hier.l2_lookup(remote_owner, line_addr, touch=False)
                if remote_l2 is not None and remote_l2.dirty:
                    l3_line = self._l3_line(line_addr)
                    l3_line.data = list(remote_l2.data)
                    l3_line.dirty_mask |= remote_l2.dirty_mask
                    remote_l2.clean()
                    hier.count_line_transfer(TrafficCat.WRITEBACK)
                d3.owner_block = None
            if exclusive:
                others = self._dir3(line_addr).blocks & ~(1 << block)
                for other in _iter_bits(others):
                    inv_lat = self._invalidate_block_sharers(
                        other, line_addr, keep=None
                    )
                    bank = hier.l2_bank_of(other, line_addr)
                    l2_victim = bank.remove(line_addr)
                    if l2_victim is not None and l2_victim.dirty:
                        l3_line = self._l3_line(line_addr)
                        l3_line.data = list(l2_victim.data)
                        l3_line.dirty_mask |= l2_victim.dirty_mask
                        hier.count_line_transfer(TrafficCat.WRITEBACK)
                    self._l2_dir[other].pop(line_addr, None)
                    self._dir3(line_addr).blocks &= ~(1 << other)
                    hier.count_control(TrafficCat.INVALIDATION, 2)
                    lat = max(lat, hier.l3_latency(core, line_addr) + inv_lat)
                d3 = self._dir3(line_addr)
                d3.owner_block = block
        block_bank = hier.l2_bank_of(block, line_addr)
        resident = block_bank.lookup(line_addr) is not None
        l2_line = self._l2_line(block, line_addr)
        if not resident:
            # The fill above came from L3 (charged) or memory.
            if hier.has_l3:
                lat += hier.l3_latency(core, line_addr)
            else:
                lat += hier.mem_latency(core)
        return lat, l2_line

    # ------------------------------------------------------------------
    # plain accesses
    # ------------------------------------------------------------------

    def read(self, core: int, byte_addr: int) -> tuple[int, Any]:
        hier = self.hier
        line_addr = hier.line_of(byte_addr)
        word = hier.word_of(byte_addr)
        l1 = hier.l1s[core]
        line = l1.lookup(line_addr)
        stats = self.stats.per_core[core]
        if line is not None and line.state != MESIState.I:
            stats.l1_hits += 1
            return self._overlapped(hier.l1_latency()), line.data[word]

        stats.l1_misses += 1
        block = hier.block_of_core(core)
        lat = hier.l2_latency(core, line_addr)
        extra, l2_line = self._acquire_block_copy(
            core, block, line_addr, exclusive=False
        )
        lat += extra
        # Intra-block: a dirty peer forwards its copy.
        lat += self._downgrade_owner(block, line_addr)
        self._demote_exclusive_peers(core, block, line_addr)
        l2_line = self._l2_line(block, line_addr)
        entry = self._dir2(block, line_addr)
        state = (
            MESIState.E
            if not entry.sharers and not self._other_block_has(block, line_addr)
            else MESIState.S
        )
        entry.sharers |= 1 << core
        new_line = CacheLine(line_addr, list(l2_line.data), state=state)
        victim = l1.insert(new_line)
        if victim is not None:
            self._l1_victim(core, block, victim)
        hier.count_line_transfer(TrafficCat.LINEFILL)
        if self.tracer is not None or self.metrics is not None:
            self._obs_fill(core, line_addr)
        return lat, new_line.data[word]

    def write(self, core: int, byte_addr: int, value: Any) -> int:
        hier = self.hier
        line_addr = hier.line_of(byte_addr)
        word = hier.word_of(byte_addr)
        l1 = hier.l1s[core]
        line = l1.lookup(line_addr)
        stats = self.stats.per_core[core]
        block = hier.block_of_core(core)

        if line is not None and line.state in (MESIState.M, MESIState.E):
            if line.state == MESIState.E:
                line.state = MESIState.M
                self._dir2(block, line_addr).owner = core
                d3 = self._l3_dir.get(line_addr)
                if d3 is not None:
                    d3.owner_block = block
            line.data[word] = value
            line.mark_dirty(word)
            stats.l1_hits += 1
            return self._overlapped(hier.l1_latency())

        if line is not None and line.state == MESIState.S:  # noqa: SIM114
            # Upgrade: invalidate other sharers through the directory.
            stats.l1_hits += 1
            lat = hier.l2_latency(core, line_addr)
            lat += self._claim_exclusive(core, block, line_addr)
            line.state = MESIState.M
            line.data[word] = value
            line.mark_dirty(word)
            entry = self._dir2(block, line_addr)
            entry.sharers = 1 << core
            entry.owner = core
            return self._overlapped(lat)

        # Write miss: read-for-ownership.
        stats.l1_misses += 1
        lat = hier.l2_latency(core, line_addr)
        extra, _ = self._acquire_block_copy(core, block, line_addr, exclusive=True)
        lat += extra
        lat += self._downgrade_owner(block, line_addr)
        lat += self._invalidate_block_sharers(block, line_addr, keep=core)
        l2_line = self._l2_line(block, line_addr)
        new_line = CacheLine(line_addr, list(l2_line.data), state=MESIState.M)
        new_line.data[word] = value
        new_line.mark_dirty(word)
        victim = l1.insert(new_line)
        if victim is not None:
            self._l1_victim(core, block, victim)
        entry = self._dir2(block, line_addr)
        entry.sharers = 1 << core
        entry.owner = core
        if hier.has_l3:
            self._dir3(line_addr).owner_block = block
        hier.count_line_transfer(TrafficCat.LINEFILL)
        if self.tracer is not None or self.metrics is not None:
            self._obs_fill(core, line_addr)
        return self._overlapped(lat)

    def _demote_exclusive_peers(self, core: int, block: int, line_addr: int) -> None:
        """A new reader demotes every other E copy chip-wide to S.

        Without this, an E holder would silently upgrade to M while the new
        reader keeps a stale S copy.  The directory knows exactly who holds
        each line (full map), so the demotion is a state fix-up with no
        extra messages beyond the fill already charged.
        """
        blocks = (
            _iter_bits(self._dir3(line_addr).blocks)
            if self.hier.has_l3
            else range(self.machine.num_blocks)
        )
        for b in blocks:
            entry = self._l2_dir[b].get(line_addr)
            if entry is None:
                continue
            for sharer in _iter_bits(entry.sharers & ~(1 << core)):
                line = self.hier.l1s[sharer].lookup(line_addr, touch=False)
                if line is not None and line.state == MESIState.E:
                    line.state = MESIState.S

    def _other_block_has(self, block: int, line_addr: int) -> bool:
        """Does any other block hold a copy (L2 or L1)?  Gates E grants."""
        if not self.hier.has_l3:
            return False
        d3 = self._l3_dir.get(line_addr)
        if d3 is None:
            return False
        return bool(d3.blocks & ~(1 << block))

    def _claim_exclusive(self, core: int, block: int, line_addr: int) -> int:
        """Invalidate every other copy chip-wide; return the added latency."""
        lat = 0
        if self.hier.has_l3:
            extra, _ = self._acquire_block_copy(
                core, block, line_addr, exclusive=True
            )
            lat += extra
        lat += self._invalidate_block_sharers(block, line_addr, keep=core)
        return lat

    def _l1_victim(self, core: int, block: int, victim: CacheLine) -> None:
        """Handle an L1 replacement: M data goes to L2, presence updated."""
        hier = self.hier
        entry = self._dir2(block, victim.line_addr)
        entry.sharers &= ~(1 << core)
        if entry.owner == core:
            entry.owner = None
        if victim.dirty:
            l2_line = self._l2_line(block, victim.line_addr)
            l2_line.data = list(victim.data)
            l2_line.dirty_mask |= victim.dirty_mask
            hier.count_line_transfer(TrafficCat.WRITEBACK)
        else:
            hier.count_control(TrafficCat.INVALIDATION)  # replacement hint

    def _overlapped(self, latency: int) -> int:
        """ILP / write-buffer latency hiding for L1 hits and stores."""
        cached = self._ov_cache.get(latency)
        if cached is None:
            overlap = self.machine.core.overlap
            cached = max(1, round(latency * (1.0 - overlap)))
            self._ov_cache[latency] = cached
        return cached

    def _obs_fill(self, core: int, line_addr: int) -> None:
        """Report one L1 fill to the attached observability sinks."""
        if self.tracer is not None:
            self.tracer.emit("fill", core, line=line_addr, level="L1")
        if self.metrics is not None:
            self.metrics.inc("proto.fill.L1")

    # ------------------------------------------------------------------
    # WB/INV flavors: free no-ops under hardware coherence
    # ------------------------------------------------------------------

    def _ignore(self) -> int:
        self.ignored_wbinv_ops += 1
        return 0

    def wb_range(self, core: int, byte_addr: int, length: int) -> int:
        return self._ignore()

    def wb_all(self, core: int, via_meb: bool = False) -> int:
        return self._ignore()

    def wb_cons(self, core: int, byte_addr: int, length: int, cons_tid: int) -> int:
        return self._ignore()

    def wb_cons_all(self, core: int, cons_tid: int) -> int:
        return self._ignore()

    def wb_l3(self, core: int, byte_addr: int, length: int) -> int:
        return self._ignore()

    def wb_all_l3(self, core: int) -> int:
        return self._ignore()

    def inv_range(self, core: int, byte_addr: int, length: int) -> int:
        return self._ignore()

    def inv_all(self, core: int) -> int:
        return self._ignore()

    def inv_prod(self, core: int, byte_addr: int, length: int, prod_tid: int) -> int:
        return self._ignore()

    def inv_prod_all(self, core: int, prod_tid: int) -> int:
        return self._ignore()

    def inv_l2(self, core: int, byte_addr: int, length: int) -> int:
        return self._ignore()

    def inv_all_l2(self, core: int) -> int:
        return self._ignore()

    def epoch_begin(self, core: int, record_meb: bool, ieb_mode: bool) -> int:
        return 0

    def epoch_end(self, core: int) -> int:
        return 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        hier = self.hier
        for core, l1 in enumerate(hier.l1s):
            block = hier.block_of_core(core)
            for line in list(l1.lines()):
                if line.dirty:
                    l2_line = self._l2_line(block, line.line_addr)
                    l2_line.data = list(line.data)
                    l2_line.dirty_mask |= line.dirty_mask
                    line.clean()
        for block in range(self.machine.num_blocks):
            for bank in hier.l2_banks[block]:
                for line in bank.dirty_lines():
                    if hier.has_l3:
                        l3_line = self._l3_line(line.line_addr)
                        l3_line.data = list(line.data)
                        l3_line.dirty_mask |= line.dirty_mask
                    else:
                        hier.mem_write_back(line)
                    line.clean()
        for bank in hier.l3_banks:
            for line in bank.dirty_lines():
                hier.mem_write_back(line)
                line.clean()
