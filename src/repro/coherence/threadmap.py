"""ThreadMap — the per-L2 hardware table behind level-adaptive WB/INV.

Section V-B: each block's L2 controller holds the IDs of the threads mapped
onto that block.  ``WB_CONS(addr, ConsID)`` / ``INV_PROD(addr, ProdID)``
consult the *local* block's table: when the named peer thread runs in the
same block, the operation stays local (L1↔L2); otherwise it reaches the
global level (L3 for WB, L2 invalidation for INV).  The table is filled by
the runtime at spawn time and threads never migrate.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.noc.placement import Placement


class ThreadMap:
    """One block's table of resident thread IDs."""

    def __init__(self, block: int, thread_ids: set[int]) -> None:
        self.block = block
        self._threads = frozenset(thread_ids)

    def is_local(self, tid: int) -> bool:
        return tid in self._threads

    @property
    def thread_ids(self) -> frozenset[int]:
        return self._threads

    def __len__(self) -> int:
        return len(self._threads)


class ThreadMapTable:
    """All blocks' ThreadMaps, built from a placement at spawn time."""

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        machine = placement.machine
        self._maps = [
            ThreadMap(b, set(placement.threads_in_block(b)))
            for b in range(machine.num_blocks)
        ]
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None

    def for_block(self, block: int) -> ThreadMap:
        if not 0 <= block < len(self._maps):
            raise ConfigError(f"block {block} out of range")
        return self._maps[block]

    def peer_is_local(self, my_core: int, peer_tid: int) -> bool:
        """Level-adaptive resolution: does *peer_tid* run in *my_core*'s block?"""
        if self.faults is not None and self.faults.threadmap_displace(my_core):
            # Displaced entry: answer conservatively — the global level is
            # always correct, only slower (Section V-B).
            return False
        block = self.placement.block_of_core(my_core)
        return self._maps[block].is_local(peer_tid)
