"""Invalidated Entry Buffer (IEB) — Section IV-B.2.

A tiny per-core buffer (4 entries of full line addresses) that makes INV ALL
at epoch *entry* unnecessary: instead of invalidating everything up front,
each read in the epoch is checked —

* line address already in the IEB → already refreshed this epoch, no action;
* read hits and the target word is *dirty* → written by this core this
  epoch, cannot be stale, no action;
* otherwise: the line address is inserted into the IEB (evicting the oldest
  entry — FIFO), a resident copy is invalidated (first read in the epoch),
  and the read fetches fresh data from the shared cache.

The IEB holds exact information.  When it overflows, evicted lines will be
re-invalidated on their next read — correct but slower.
"""

from __future__ import annotations

from collections import OrderedDict


class IEB:
    """Fixed-capacity FIFO of line addresses that need no re-invalidation."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._addrs: OrderedDict[int, None] = OrderedDict()
        # Membership bitmask over line addresses (bit ``la`` set while the
        # line is buffered): the hot-path containment test is one shift/AND
        # instead of a hash probe.  ``_addrs`` stays the source of FIFO
        # order; the mask mirrors its key set exactly.
        self._mask = 0
        # Lines refreshed at least once this epoch: a re-insert of one of
        # these means its IEB entry was evicted and the read just paid a
        # redundant re-invalidation (the Section IV-B.2 overflow cost).
        self._seen: set[int] = set()
        self.armed = False
        # Counters for ablation studies.
        self.evictions = 0
        self.redundant_invalidations = 0
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None
        self.core = 0

    def begin_epoch(self) -> None:
        """Arm the IEB for a new epoch; starts empty."""
        self._addrs.clear()
        self._mask = 0
        self._seen.clear()
        self.armed = True

    def end_epoch(self) -> None:
        self.armed = False
        self._addrs.clear()
        self._mask = 0
        self._seen.clear()

    def contains(self, line_addr: int) -> bool:
        return bool(self._mask >> line_addr & 1)

    def insert(self, line_addr: int) -> None:
        """Record that *line_addr* is now fresh; evict FIFO on overflow."""
        if self._mask >> line_addr & 1:
            return
        if self.capacity <= 0:
            return
        if line_addr in self._seen:
            self.redundant_invalidations += 1
        else:
            self._seen.add(line_addr)
        if (
            self.faults is not None
            and self._addrs
            and self.faults.ieb_displace(self.core)
        ):
            # Injected displacement: the evicted line's next read pays a
            # redundant re-invalidation — correct but slower.
            evicted, _ = self._addrs.popitem(last=False)
            self._mask &= ~(1 << evicted)
            self.evictions += 1
        if len(self._addrs) >= self.capacity:
            evicted, _ = self._addrs.popitem(last=False)
            self._mask &= ~(1 << evicted)
            self.evictions += 1
        self._addrs[line_addr] = None
        self._mask |= 1 << line_addr

    def __len__(self) -> int:
        return len(self._addrs)
