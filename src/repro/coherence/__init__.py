"""Subpackage of repro."""
