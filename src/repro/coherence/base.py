"""Protocol interface implemented by the incoherent and MESI hierarchies.

Every method executes one operation against the hierarchy *state* and returns
its latency in cycles (reads also return the loaded value).  The core model
(:mod:`repro.core.cpu`) charges latencies and attributes them to Figure 9
stall categories.

The interface deliberately includes every WB/INV flavor: the hardware-
coherent baseline accepts them as no-ops (counted, so tests can assert the
HCC configuration never pays for them), matching the paper's HCC runs where
no WB/INV instructions are inserted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.coherence.hierarchy import Hierarchy


class Protocol(ABC):
    """One chip-wide coherence policy over a :class:`Hierarchy`."""

    name = "abstract"

    def __init__(self, hierarchy: Hierarchy) -> None:
        self.hier = hierarchy
        self.stats = hierarchy.stats
        self.machine = hierarchy.machine
        #: Observability sinks (:mod:`repro.obs`), attached by the Machine
        #: when requested.  ``None`` means disabled: every hook point in a
        #: protocol is one ``is not None`` check, nothing more.
        self.tracer = None
        self.metrics = None
        #: Memo for ``_overlapped``: distinct latencies are few (table-driven
        #: geometry), so overlap scaling is computed once per value.
        self._ov_cache: dict[int, int] = {}

    # -- plain accesses -------------------------------------------------------

    @abstractmethod
    def read(self, core: int, byte_addr: int) -> tuple[int, Any]:
        """Load one word; return (latency, value)."""

    @abstractmethod
    def write(self, core: int, byte_addr: int, value: Any) -> int:
        """Store one word; return latency."""

    # -- WB flavors ------------------------------------------------------------

    @abstractmethod
    def wb_range(self, core: int, byte_addr: int, length: int) -> int:
        """WB: write back dirty words of lines overlapping the range."""

    @abstractmethod
    def wb_all(self, core: int, via_meb: bool = False) -> int:
        """WB ALL: write back the whole L1 (via the MEB when armed)."""

    @abstractmethod
    def wb_cons(self, core: int, byte_addr: int, length: int, cons_tid: int) -> int:
        """WB_CONS: level-adaptive write back toward consumer *cons_tid*."""

    @abstractmethod
    def wb_cons_all(self, core: int, cons_tid: int) -> int:
        """WB_CONS ALL: whole-cache level-adaptive write back."""

    @abstractmethod
    def wb_l3(self, core: int, byte_addr: int, length: int) -> int:
        """WB_L3: explicit-level write back to the L3 (through the L2)."""

    @abstractmethod
    def wb_all_l3(self, core: int) -> int:
        """WB ALL to the L3: flush L1 then the whole block L2 downward."""

    # -- INV flavors -------------------------------------------------------------

    @abstractmethod
    def inv_range(self, core: int, byte_addr: int, length: int) -> int:
        """INV: self-invalidate overlapping lines (dirty words spill first)."""

    @abstractmethod
    def inv_all(self, core: int) -> int:
        """INV ALL: self-invalidate the whole L1."""

    @abstractmethod
    def inv_prod(self, core: int, byte_addr: int, length: int, prod_tid: int) -> int:
        """INV_PROD: level-adaptive invalidation against producer *prod_tid*."""

    @abstractmethod
    def inv_prod_all(self, core: int, prod_tid: int) -> int:
        """INV_PROD ALL: whole-cache level-adaptive invalidation."""

    @abstractmethod
    def inv_l2(self, core: int, byte_addr: int, length: int) -> int:
        """INV_L2: explicit-level invalidation from the L2 (and L1)."""

    @abstractmethod
    def inv_all_l2(self, core: int) -> int:
        """INV ALL from both the L1 and the whole block L2."""

    # -- epochs ---------------------------------------------------------------------

    @abstractmethod
    def epoch_begin(self, core: int, record_meb: bool, ieb_mode: bool) -> int:
        """Start an epoch: arm the MEB recorder and/or the IEB checker."""

    @abstractmethod
    def epoch_end(self, core: int) -> int:
        """End the epoch: disarm both entry buffers."""

    # -- lifecycle ---------------------------------------------------------------------

    @abstractmethod
    def finalize(self) -> None:
        """Flush all cached state to memory (untimed; enables verification)."""
