"""The hardware-incoherent cache hierarchy (Sections III-B, IV-B, V-B).

Semantics implemented here:

* Caches never snoop and there is no directory.  Loads hit on any valid
  resident line — including *stale* ones.  Functional data values flow with
  the lines, so a missing annotation genuinely yields stale reads.
* ``WB`` writes back only the dirty words of overlapping lines (per-word
  dirty bits); the line stays clean-valid.  Two cores that dirty different
  words of one line never clobber each other.
* ``INV`` writes dirty words back first, then drops whole lines (one valid
  bit per line).
* ``WB ALL`` / ``INV ALL`` walk the tag array (charged) unless the MEB
  supplies the written-line set (``via_meb``); the IEB replaces up-front
  INV ALL in armed epochs by per-read refresh checks.
* Level-adaptive ``WB_CONS`` / ``INV_PROD`` consult the block's ThreadMap:
  local peers keep traffic inside the block (L1↔L2); remote peers push
  through the L3 / invalidate down from the L2.

Timing model: the first line of a multi-line operation pays the full round
trip to its target level; subsequent lines pipeline behind it at flit-
injection cost.  Evictions are off the critical path (traffic only).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.coherence.base import Protocol
from repro.coherence.hierarchy import Hierarchy
from repro.coherence.ieb import IEB
from repro.coherence.meb import MEB
from repro.coherence.threadmap import ThreadMapTable
from repro.common.errors import ConfigError
from repro.common.params import WORD_BYTES
from repro.mem.cache import Cache
from repro.mem.line import CacheLine
from repro.sim.stats import TrafficCat


class StaleRead:
    """One detected stale read (debugging aid; see ``detect_staleness``)."""

    __slots__ = ("core", "byte_addr", "got", "latest")

    def __init__(self, core: int, byte_addr: int, got, latest) -> None:
        self.core = core
        self.byte_addr = byte_addr
        self.got = got
        self.latest = latest

    def __repr__(self) -> str:
        return (
            f"StaleRead(core={self.core}, addr={self.byte_addr:#x}, "
            f"got={self.got!r}, latest={self.latest!r})"
        )

    def __str__(self) -> str:
        return (
            f"core {self.core} read stale value {self.got!r} at address "
            f"{self.byte_addr:#x} (latest value is {self.latest!r})"
        )


class IncoherentProtocol(Protocol):
    """Software-managed hierarchy with WB/INV ISA, MEB/IEB, and ThreadMap."""

    name = "incoherent"

    def __init__(
        self,
        hierarchy: Hierarchy,
        *,
        use_meb: bool = False,
        use_ieb: bool = False,
        threadmap: ThreadMapTable | None = None,
        detect_staleness: bool = False,
    ) -> None:
        super().__init__(hierarchy)
        self.use_meb = use_meb
        self.use_ieb = use_ieb
        self.threadmap = threadmap
        buffers = self.machine.buffers
        self.mebs = [MEB(buffers.meb_entries) for _ in range(self.machine.num_cores)]
        self.iebs = [IEB(buffers.ieb_entries) for _ in range(self.machine.num_cores)]
        #: Staleness detector (a porting aid, not hardware): tracks the
        #: globally most-recent value written to each word; any read whose
        #: value differs is logged.  A program whose annotations are
        #: sufficient — and which is free of data races — logs nothing.
        self.detect_staleness = detect_staleness
        self._shadow: dict[int, Any] = {}
        self.stale_reads: list[StaleRead] = []

    def _check_stale(self, core: int, byte_addr: int, value: Any) -> None:
        word_addr = self.hier.word_addr(byte_addr)
        if word_addr in self._shadow:
            latest = self._shadow[word_addr]
        else:
            latest = self.hier.memory.read_word(word_addr)
        if value != latest:
            self.stale_reads.append(StaleRead(core, byte_addr, value, latest))
            if self.metrics is not None:
                self.metrics.inc("proto.stale_reads")

    def _obs_line_event(self, kind: str, core: int, line_addr: int, level: str) -> None:
        """Report one fill/evict to the attached observability sinks.

        Call sites guard on ``tracer``/``metrics`` being attached, so the
        disabled path never reaches this method.
        """
        if self.tracer is not None:
            self.tracer.emit(kind, core, line=line_addr, level=level)
        if self.metrics is not None:
            self.metrics.inc(f"proto.{kind}.{level}")

    # ------------------------------------------------------------------
    # internal: fills and writebacks
    # ------------------------------------------------------------------

    def _fill_l3(self, core: int, line_addr: int) -> tuple[int, CacheLine]:
        """Ensure *line_addr* is resident in its L3 bank; return (lat, line)."""
        hier = self.hier
        bank = hier.l3_bank_of(line_addr)
        line = bank.lookup(line_addr)
        if line is not None:
            return hier.l3_latency(core, line_addr), line
        data = hier.mem_read_line(line_addr)
        line = CacheLine(line_addr, data)
        victim = bank.insert(line)
        if victim is not None and victim.dirty:
            hier.mem_write_back(victim)
            hier.count_partial_transfer(TrafficCat.MEMORY, victim.num_dirty_words())
            if self.tracer is not None or self.metrics is not None:
                self._obs_line_event("evict", core, victim.line_addr, "L3")
        hier.count_line_transfer(TrafficCat.MEMORY)
        if self.tracer is not None or self.metrics is not None:
            self._obs_line_event("fill", core, line_addr, "L3")
        return hier.mem_latency(core), line

    def _fill_l2(self, core: int, line_addr: int) -> tuple[int, CacheLine]:
        """Ensure residency in the requesting block's L2; return (lat, line)."""
        hier = self.hier
        block = hier.block_of_core(core)
        bank = hier.l2_bank_of(block, line_addr)
        line = bank.lookup(line_addr)
        if line is not None:
            return hier.l2_latency(core, line_addr), line
        if hier.has_l3:
            lat, l3_line = self._fill_l3(core, line_addr)
            data = list(l3_line.data)
            hier.count_line_transfer(TrafficCat.LINEFILL)
        else:
            lat = hier.mem_latency(core)
            data = hier.mem_read_line(line_addr)
            hier.count_line_transfer(TrafficCat.MEMORY)
        lat += hier.l2_latency(core, line_addr)
        line = CacheLine(line_addr, data)
        victim = bank.insert(line)
        if victim is not None and victim.dirty:
            self._spill_l2_victim(core, victim)
        if self.tracer is not None or self.metrics is not None:
            self._obs_line_event("fill", core, line_addr, "L2")
        return lat, line

    def _spill_l2_victim(self, core: int, victim: CacheLine) -> None:
        """Off-critical-path writeback of a dirty L2 victim to L3 or memory."""
        hier = self.hier
        nwords = victim.num_dirty_words()
        if self.tracer is not None or self.metrics is not None:
            self._obs_line_event("evict", core, victim.line_addr, "L2")
        if hier.has_l3:
            bank = hier.l3_bank_of(victim.line_addr)
            l3_line = bank.lookup(victim.line_addr)
            if l3_line is None:
                l3_line = CacheLine(victim.line_addr, list(victim.data))
                l3_line.dirty_mask = victim.dirty_mask
                l3_victim = bank.insert(l3_line)
                if l3_victim is not None and l3_victim.dirty:
                    hier.mem_write_back(l3_victim)
                    hier.count_partial_transfer(
                        TrafficCat.MEMORY, l3_victim.num_dirty_words()
                    )
            else:
                self._merge_words(l3_line, victim, victim.dirty_mask)
            hier.count_partial_transfer(TrafficCat.WRITEBACK, nwords)
        else:
            hier.mem_write_back(victim)
            hier.count_partial_transfer(TrafficCat.MEMORY, nwords)

    def _global_level_latency(self, core: int, line_addr: int) -> int:
        """Round trip to the global level: the L3, or memory without one."""
        hier = self.hier
        if hier.has_l3:
            return hier.l3_latency(core, line_addr)
        return hier.mem_latency(core)

    @staticmethod
    def _merge_words(dst: CacheLine, src: CacheLine, mask: int) -> None:
        """Copy the words of *src* selected by *mask* into *dst*, dirtying them."""
        i = 0
        m = mask
        while m:
            if m & 1:
                dst.data[i] = src.data[i]
            m >>= 1
            i += 1
        dst.dirty_mask |= mask

    def _fetch_into_l1(self, core: int, line_addr: int) -> tuple[int, CacheLine]:
        """Fetch a fresh copy of *line_addr* into the core's L1."""
        hier = self.hier
        lat, l2_line = self._fill_l2(core, line_addr)
        l1 = hier.l1s[core]
        line = CacheLine(line_addr, list(l2_line.data))
        victim = l1.insert(line)
        if victim is not None and victim.dirty:
            self._wb_l1_line(core, victim, critical=False)
            if self.tracer is not None or self.metrics is not None:
                self._obs_line_event("evict", core, victim.line_addr, "L1")
        hier.count_line_transfer(TrafficCat.LINEFILL)
        if self.tracer is not None or self.metrics is not None:
            self._obs_line_event("fill", core, line_addr, "L1")
        return lat, line

    def _wb_l1_line(
        self, core: int, line: CacheLine, *, critical: bool, to_l3: bool = False
    ) -> int:
        """Write a dirty L1 line's words into the block's L2 (and L3 if asked).

        Returns the flit-injection cost used for pipelined multi-line WBs
        when *critical*; always accounts traffic and merges state.
        """
        if not line.dirty:
            return 0
        hier = self.hier
        mask = line.dirty_mask
        nwords = line.num_dirty_words()
        block = hier.block_of_core(core)
        bank = hier.l2_bank_of(block, line.line_addr)
        l2_line = bank.lookup(line.line_addr)
        if l2_line is None:
            # Allocate in L2: pull the rest of the line from below, merge.
            if hier.has_l3:
                _, l3_line = self._fill_l3(core, line.line_addr)
                base = list(l3_line.data)
                hier.count_line_transfer(TrafficCat.LINEFILL)
            else:
                base = hier.mem_read_line(line.line_addr)
                hier.count_line_transfer(TrafficCat.MEMORY)
            l2_line = CacheLine(line.line_addr, base)
            victim = bank.insert(l2_line)
            if victim is not None and victim.dirty:
                self._spill_l2_victim(core, victim)
        self._merge_words(l2_line, line, mask)
        hier.count_partial_transfer(TrafficCat.WRITEBACK, nwords)
        line.clean()
        if to_l3:
            self._push_l2_words_to_l3(core, l2_line, mask)
        return hier.mesh.data_flits(nwords * WORD_BYTES) if critical else 0

    def _push_l2_words_to_l3(self, core: int, l2_line: CacheLine, mask: int) -> int:
        """Propagate the words of *mask* from an L2 line toward the L3.

        On a machine without an L3 the words go to memory instead — the
        next level down — so an explicit-level op never loses dirty data.
        """
        hier = self.hier
        if not mask:
            return 0
        if not hier.has_l3:
            saved = l2_line.dirty_mask
            l2_line.dirty_mask = mask
            hier.mem_write_back(l2_line)
            l2_line.dirty_mask = saved & ~mask
            nwords = mask.bit_count()
            hier.count_partial_transfer(TrafficCat.MEMORY, nwords)
            return hier.mesh.data_flits(nwords * WORD_BYTES)
        _, l3_line = self._fill_l3(core, l2_line.line_addr)
        self._merge_words(l3_line, l2_line, mask)
        l2_line.dirty_mask &= ~mask
        nwords = mask.bit_count()
        hier.count_partial_transfer(TrafficCat.WRITEBACK, nwords)
        return hier.mesh.data_flits(nwords * WORD_BYTES)

    # ------------------------------------------------------------------
    # plain accesses
    # ------------------------------------------------------------------

    def read(self, core: int, byte_addr: int) -> tuple[int, Any]:
        hier = self.hier
        line_addr = hier.line_of(byte_addr)
        word = hier.word_of(byte_addr)
        l1 = hier.l1s[core]
        line = l1.lookup(line_addr)
        ieb = self.iebs[core]

        if ieb.armed:
            if ieb.contains(line_addr):
                pass  # refreshed earlier this epoch
            elif line is not None and line.is_word_dirty(word):
                pass  # written by this core this epoch — cannot be stale
            else:
                # First read of this line in the epoch: refresh it.
                ieb.insert(line_addr)
                if line is not None:
                    if line.dirty:
                        self._wb_l1_line(core, line, critical=True)
                    l1.remove(line_addr)
                    self.stats.per_core[core].lines_invalidated += 1
                lat, line = self._fetch_into_l1(core, line_addr)
                self.stats.per_core[core].l1_misses += 1
                if self.detect_staleness:
                    self._check_stale(core, byte_addr, line.data[word])
                return lat, line.data[word]

        if line is not None:
            self.stats.per_core[core].l1_hits += 1
            if self.detect_staleness:
                self._check_stale(core, byte_addr, line.data[word])
            return self._overlapped(hier.l1_latency()), line.data[word]

        lat, line = self._fetch_into_l1(core, line_addr)
        self.stats.per_core[core].l1_misses += 1
        if self.detect_staleness:
            self._check_stale(core, byte_addr, line.data[word])
        return lat, line.data[word]

    def write(self, core: int, byte_addr: int, value: Any) -> int:
        hier = self.hier
        line_addr = hier.line_of(byte_addr)
        word = hier.word_of(byte_addr)
        l1 = hier.l1s[core]
        line = l1.lookup(line_addr)
        if line is None:
            lat, line = self._fetch_into_l1(core, line_addr)
            self.stats.per_core[core].l1_misses += 1
        else:
            lat = hier.l1_latency()
            self.stats.per_core[core].l1_hits += 1
        was_clean = not line.is_word_dirty(word)
        line.data[word] = value
        line.mark_dirty(word)
        if was_clean and self.use_meb:
            self.mebs[core].record_write(line_addr)
        if self.detect_staleness:
            self._shadow[hier.word_addr(byte_addr)] = value
        return self._overlapped(lat)

    def _overlapped(self, latency: int) -> int:
        """Latency partially hidden by ILP / the write buffer.

        Applied to L1 load hits and to stores (which retire through the
        write buffer, Section III-C).  Load misses and WB/INV stalls are
        charged in full — "the latency of WB and INV instructions is often
        hard to hide" (Section VII-C).
        """
        cached = self._ov_cache.get(latency)
        if cached is None:
            overlap = self.machine.core.overlap
            cached = max(1, round(latency * (1.0 - overlap)))
            self._ov_cache[latency] = cached
        return cached

    # ------------------------------------------------------------------
    # WB flavors
    # ------------------------------------------------------------------

    def _wb_lines(
        self, core: int, lines: Iterable[CacheLine], *, to_l3: bool = False
    ) -> int:
        """Write back a batch of L1 lines; return the critical-path latency."""
        hier = self.hier
        stats = self.stats.per_core[core]
        total_flits = 0
        count = 0
        sample_line = None
        for line in lines:
            if not line.dirty:
                continue
            total_flits += self._wb_l1_line(core, line, critical=True, to_l3=to_l3)
            count += 1
            sample_line = line.line_addr
        if count == 0:
            return 0
        stats.lines_written_back += count
        if self.metrics is not None:
            self.metrics.inc("proto.lines_written_back", count)
        base = (
            self._global_level_latency(core, sample_line)
            if to_l3
            else hier.l2_latency(core, sample_line)
        )
        return base + max(0, total_flits - 1)

    def _resident_lines_in_range(
        self, cache: Cache, byte_addr: int, length: int
    ) -> list[CacheLine]:
        out = []
        for la in self.hier.lines_overlapping(byte_addr, length):
            line = cache.lookup(la, touch=False)
            if line is not None:
                out.append(line)
        return out

    def wb_range(self, core: int, byte_addr: int, length: int) -> int:
        lines = self._resident_lines_in_range(self.hier.l1s[core], byte_addr, length)
        lat = self._wb_lines(core, lines)
        # Tag lookups for the addressed lines are charged even when clean.
        return max(lat, self.hier.l1_latency())

    def wb_all(self, core: int, via_meb: bool = False) -> int:
        hier = self.hier
        l1 = hier.l1s[core]
        meb = self.mebs[core]
        if via_meb and self.use_meb:
            if meb.usable:
                lines = [
                    line
                    for la in meb.line_ids()
                    if (line := l1.lookup(la, touch=False)) is not None
                ]
                return max(self._wb_lines(core, lines), hier.l1_latency())
            # MEB overflowed (or was never armed): the conservative
            # fallback — a full tag walk — is taken and counted.
            self.stats.meb_wb_fallbacks += 1
            if self.metrics is not None:
                self.metrics.inc("proto.meb_wb_fallbacks")
        lat = hier.tag_walk_latency(l1)
        return lat + self._wb_lines(core, list(l1.dirty_lines()))

    def wb_cons(self, core: int, byte_addr: int, length: int, cons_tid: int) -> int:
        self._require_threadmap()
        nlines = len(self.hier.lines_overlapping(byte_addr, length))
        if self.threadmap.peer_is_local(core, cons_tid):
            self.stats.local_wb_lines += nlines
            return self.wb_range(core, byte_addr, length)
        self.stats.global_wb_lines += nlines
        return self._wb_range_global(core, byte_addr, length)

    def _wb_range_global(self, core: int, byte_addr: int, length: int) -> int:
        """WB a range all the way to the L3 (dirty words from L1 and L2)."""
        hier = self.hier
        l1_lines = self._resident_lines_in_range(
            hier.l1s[core], byte_addr, length
        )
        lat = self._wb_lines(core, l1_lines, to_l3=True)
        # The line may carry earlier dirty words parked in the L2
        # (Section V-B: "may require checking both the L1 and L2 tags").
        block = hier.block_of_core(core)
        extra_flits = 0
        for la in hier.lines_overlapping(byte_addr, length):
            l2_line = hier.l2_lookup(block, la, touch=False)
            if l2_line is not None and l2_line.dirty:
                extra_flits += self._push_l2_words_to_l3(
                    core, l2_line, l2_line.dirty_mask
                )
        if extra_flits and lat == 0:
            lat = self._global_level_latency(core, hier.line_of(byte_addr))
        return max(lat + max(0, extra_flits - 1), hier.l1_latency())

    def wb_cons_all(self, core: int, cons_tid: int) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, cons_tid):
            return self.wb_all(core)
        return self.wb_all_l3(core)

    def wb_l3(self, core: int, byte_addr: int, length: int) -> int:
        nlines = len(self.hier.lines_overlapping(byte_addr, length))
        self.stats.global_wb_lines += nlines
        return self._wb_range_global(core, byte_addr, length)

    def wb_all_l3(self, core: int) -> int:
        """WB ALL through to the L3: local L1, then the whole block L2."""
        hier = self.hier
        l1 = hier.l1s[core]
        lat = hier.tag_walk_latency(l1)
        lat += self._wb_lines(core, list(l1.dirty_lines()), to_l3=True)
        block = hier.block_of_core(core)
        flits = 0
        dirty_l2 = [
            line for line in hier.l2_lines_of_block(block) if line.dirty
        ]
        for line in dirty_l2:
            flits += self._push_l2_words_to_l3(core, line, line.dirty_mask)
        self.stats.global_wb_lines += len(dirty_l2)
        if flits:
            lat += self._global_level_latency(
                core, dirty_l2[0].line_addr
            ) + max(0, flits - 1)
        return lat

    # ------------------------------------------------------------------
    # INV flavors
    # ------------------------------------------------------------------

    def _inv_l1_lines(self, core: int, line_addrs: Iterable[int]) -> int:
        """Invalidate L1 lines (writing dirty words back first)."""
        hier = self.hier
        l1 = hier.l1s[core]
        stats = self.stats.per_core[core]
        flits = 0
        count = 0
        for la in line_addrs:
            line = l1.lookup(la, touch=False)
            if line is None:
                continue
            if line.dirty:
                flits += self._wb_l1_line(core, line, critical=True)
            l1.remove(la)
            count += 1
        stats.lines_invalidated += count
        if self.metrics is not None and count:
            self.metrics.inc("proto.lines_invalidated", count)
        lat = max(1, count)  # one tag access per invalidated line
        if flits:
            lat += hier.l2_latency(core, next(iter(line_addrs), 0)) + flits - 1
        return lat

    def inv_range(self, core: int, byte_addr: int, length: int) -> int:
        las = list(self.hier.lines_overlapping(byte_addr, length))
        return max(self._inv_l1_lines(core, las), self.hier.l1_latency())

    def inv_all(self, core: int) -> int:
        hier = self.hier
        l1 = hier.l1s[core]
        las = l1.resident_line_addrs()
        lat = hier.tag_walk_latency(l1)
        return lat + self._inv_l1_lines(core, las)

    def inv_prod(self, core: int, byte_addr: int, length: int, prod_tid: int) -> int:
        self._require_threadmap()
        nlines = len(self.hier.lines_overlapping(byte_addr, length))
        if self.threadmap.peer_is_local(core, prod_tid):
            self.stats.local_inv_lines += nlines
            return self.inv_range(core, byte_addr, length)
        self.stats.global_inv_lines += nlines
        return self._inv_range_global(core, byte_addr, length)

    def _inv_range_global(self, core: int, byte_addr: int, length: int) -> int:
        """Invalidate a range from both L1 and the block's L2."""
        hier = self.hier
        las = list(hier.lines_overlapping(byte_addr, length))
        lat = self._inv_l1_lines(core, las)
        block = hier.block_of_core(core)
        flits = 0
        removed = 0
        for la in las:
            bank = hier.l2_bank_of(block, la)
            line = bank.lookup(la, touch=False)
            if line is None:
                continue
            if line.dirty:
                flits += self._push_l2_words_to_l3(core, line, line.dirty_mask)
            bank.remove(la)
            removed += 1
        if removed:
            lat += hier.l2_latency(core, las[0]) + max(0, flits - 1)
        return max(lat, hier.l1_latency())

    def inv_prod_all(self, core: int, prod_tid: int) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, prod_tid):
            return self.inv_all(core)
        return self.inv_all_l2(core)

    def inv_l2(self, core: int, byte_addr: int, length: int) -> int:
        nlines = len(self.hier.lines_overlapping(byte_addr, length))
        self.stats.global_inv_lines += nlines
        return self._inv_range_global(core, byte_addr, length)

    def inv_all_l2(self, core: int) -> int:
        """INV ALL from both the L1 and the whole local block L2."""
        hier = self.hier
        lat = self.inv_all(core)
        block = hier.block_of_core(core)
        flits = 0
        removed = 0
        for bank in hier.l2_banks[block]:
            for line in list(bank.lines()):
                if line.dirty:
                    flits += self._push_l2_words_to_l3(core, line, line.dirty_mask)
                bank.remove(line.line_addr)
                removed += 1
        self.stats.global_inv_lines += removed
        if removed:
            lat += hier.tag_walk_latency(hier.l2_banks[block][0]) + max(0, flits - 1)
        return lat

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------

    def epoch_begin(self, core: int, record_meb: bool, ieb_mode: bool) -> int:
        if record_meb and self.use_meb:
            self.mebs[core].begin_epoch()
        if ieb_mode and self.use_ieb:
            self.iebs[core].begin_epoch()
        return 1

    def epoch_end(self, core: int) -> int:
        self.mebs[core].end_epoch()
        self.iebs[core].end_epoch()
        return 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _require_threadmap(self) -> None:
        if self.threadmap is None:
            raise ConfigError(
                "level-adaptive WB_CONS/INV_PROD need a ThreadMapTable "
                "(inter-block machine with a placement)"
            )

    def finalize(self) -> None:
        hier = self.hier
        for core, l1 in enumerate(hier.l1s):
            for line in l1.dirty_lines():
                self._wb_l1_line(core, line, critical=False)
        for block in range(self.machine.num_blocks):
            core0 = block * self.machine.cores_per_block
            for bank in hier.l2_banks[block]:
                for line in bank.dirty_lines():
                    if hier.has_l3:
                        self._push_l2_words_to_l3(core0, line, line.dirty_mask)
                    else:
                        hier.mem_write_back(line)
                        line.clean()
        for bank in hier.l3_banks:
            for line in bank.dirty_lines():
                hier.mem_write_back(line)
                line.clean()
