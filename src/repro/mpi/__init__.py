"""Subpackage of repro."""
