"""On-chip message passing over shared buffers (Section IV, first model).

The paper's first programming model uses MPI across blocks: "a message
sender and a message receiver communicate by writing to and reading from an
on-chip uncacheable shared buffer.  Of course, sender and receiver need to
synchronize ... the library needs to handle buffer overflows.  In
communication with multiple recipients such as a broadcast, there is no need
to make multiple copies; the sender only needs to perform a single write."

Implementation notes:

* Each ordered (src → dst) pair gets a ring of ``capacity`` fixed-size slots
  in shared memory.  "Uncacheable" is realized at library level: the sender
  writes a slot and posts it *before* raising the flag (WB_L3 on multi-block
  machines, since the receiver may sit in another block), and the receiver
  self-invalidates the slot (INV_L2) *after* the flag wait — the Figure 4c
  discipline at the right hierarchy level, and free under HCC where WB/INV
  are no-ops.
* Flow control: message *k* may only be written once the receiver has
  consumed message ``k - capacity`` (monotonic counting flags both ways).
* Broadcast writes once to a per-root ring; every receiver reads the same
  slot (single write, many readers).
* ``isend``/``irecv`` return handles; the data transfer is performed
  eagerly (the paper implements true asynchrony with a helper thread per
  core, citing Friedley et al.; a library-level eager protocol preserves
  the same completion semantics for matched traffic).
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import MPIError
from repro.common.params import WORD_BYTES
from repro.core.context import ThreadCtx
from repro.core.machine import Machine
from repro.isa import ops as isa

#: Flag-ID space reserved for the MPI library.
_FLAG_BASE = 1 << 20


class _Handle:
    """Completion handle for isend/irecv."""

    __slots__ = ("done", "values", "_pending")

    def __init__(self) -> None:
        self.done = False
        self.values: list[Any] | None = None
        self._pending: tuple[int, ...] = ()

    def wait(self):
        if not self.done:
            raise MPIError("handle not completed — drive it with comm.wait()")
        return self.values
        yield  # pragma: no cover - keeps this a generator for uniform use


class MPIComm:
    """A communicator over the machine's threads (one rank per thread)."""

    def __init__(
        self,
        machine: Machine,
        *,
        capacity: int = 4,
        max_words: int = 16,
    ) -> None:
        if capacity < 1 or max_words < 1:
            raise MPIError("capacity and max_words must be >= 1")
        self.machine = machine
        self.nranks = machine.num_threads
        self.capacity = capacity
        self.max_words = max_words
        n = self.nranks
        # Pairwise rings: buf[src][dst] is capacity × (1 + max_words) words
        # (slot word 0 is the message length).
        self._rings = machine.array(
            "mpi_rings", n * n * capacity * (1 + max_words)
        )
        # Broadcast rings: one per root.
        self._bcast = machine.array("mpi_bcast", n * capacity * (1 + max_words))
        self._sent: dict[tuple[int, int], int] = {}
        self._recvd: dict[tuple[int, int], int] = {}
        self._bsent: dict[int, int] = {}
        self._brecvd: dict[tuple[int, int], int] = {}

    # -- geometry -------------------------------------------------------------

    def _slot(self, src: int, dst: int, seq: int) -> tuple[int, int]:
        """(byte address, byte length) of the pairwise slot for message seq."""
        words = 1 + self.max_words
        idx = ((src * self.nranks + dst) * self.capacity + seq % self.capacity)
        base = self._rings.addr(idx * words)
        return base, words * WORD_BYTES

    def _bslot(self, root: int, seq: int) -> tuple[int, int]:
        words = 1 + self.max_words
        idx = root * self.capacity + seq % self.capacity
        base = self._bcast.addr(idx * words)
        return base, words * WORD_BYTES

    @staticmethod
    def _sent_flag(src: int, dst: int, n: int) -> int:
        return _FLAG_BASE + 2 * (src * n + dst)

    @staticmethod
    def _ack_flag(src: int, dst: int, n: int) -> int:
        return _FLAG_BASE + 2 * (src * n + dst) + 1

    def _bcast_flag(self, root: int) -> int:
        return _FLAG_BASE + 2 * self.nranks * self.nranks + 2 * root

    def _back_flag(self, root: int, rank: int) -> int:
        base = _FLAG_BASE + 2 * self.nranks * self.nranks + 2 * self.nranks
        return base + root * self.nranks + rank

    # -- level-aware posting ----------------------------------------------------
    #
    # On a multi-block machine the peer may live in another block, so slot
    # data must travel through the L3 (WB_L3 / INV_L2); on a single-block
    # machine the shared L2 suffices.  Under HCC all of these are no-ops.

    def _post(self, base: int, length: int):
        if self.machine.params.num_blocks > 1:
            yield isa.WBL3(base, length)
        else:
            yield isa.WB(base, length)

    def _refresh(self, base: int, length: int):
        if self.machine.params.num_blocks > 1:
            yield isa.INVL2(base, length)
        else:
            yield isa.INV(base, length)

    # -- blocking point-to-point -------------------------------------------------

    def send(self, ctx: ThreadCtx, dst: int, values: list[Any]):
        """Generator: send *values* (≤ max_words) from ctx's rank to *dst*."""
        src = ctx.tid
        if dst == src or not 0 <= dst < self.nranks:
            raise MPIError(f"bad destination {dst}")
        if len(values) > self.max_words:
            raise MPIError(
                f"message of {len(values)} words exceeds max_words="
                f"{self.max_words}"
            )
        seq = self._sent.get((src, dst), 0)
        n = self.nranks
        # Flow control: wait until the slot we are about to overwrite has
        # been consumed (receiver acks each message).
        if seq >= self.capacity:
            yield isa.FlagWait(self._ack_flag(src, dst, n), seq - self.capacity + 1)
        base, length = self._slot(src, dst, seq)
        yield isa.Write(base, len(values))
        for k, v in enumerate(values):
            yield isa.Write(base + (1 + k) * WORD_BYTES, v)
        # Post the payload before raising the flag (Figure 4c: WB then set),
        # through the L3 when the receiver may sit in another block.
        yield from self._post(base, length)
        yield from ctx.flag_set(self._sent_flag(src, dst, n), seq + 1, wb=())
        self._sent[(src, dst)] = seq + 1

    def recv(self, ctx: ThreadCtx, src: int):
        """Generator: receive the next message from *src*; returns values."""
        dst = ctx.tid
        if src == dst or not 0 <= src < self.nranks:
            raise MPIError(f"bad source {src}")
        seq = self._recvd.get((src, dst), 0)
        n = self.nranks
        base, length = self._slot(src, dst, seq)
        yield from ctx.flag_wait(self._sent_flag(src, dst, n), seq + 1, inv=())
        yield from self._refresh(base, length)
        count = yield isa.Read(base)
        values = []
        for k in range(int(count)):
            values.append((yield isa.Read(base + (1 + k) * WORD_BYTES)))
        yield from ctx.flag_set(self._ack_flag(src, dst, n), seq + 1, wb=())
        self._recvd[(src, dst)] = seq + 1
        return values

    # -- non-blocking -----------------------------------------------------------------

    def isend(self, ctx: ThreadCtx, dst: int, values: list[Any]):
        """Eager non-blocking send; returns a completed handle."""
        handle = _Handle()
        yield from self.send(ctx, dst, values)
        handle.done = True
        return handle

    def irecv(self, ctx: ThreadCtx, src: int) -> _Handle:
        """Non-blocking receive: returns a handle to pass to :meth:`wait`.

        Plain call (no ``yield from``): posting the receive costs nothing;
        the data transfer happens in :meth:`wait`.
        """
        handle = _Handle()
        handle._pending = (src,)  # type: ignore[attr-defined]
        return handle

    def wait(self, ctx: ThreadCtx, handle: _Handle):
        """Complete an irecv handle (performs the actual receive)."""
        if handle.done:
            return handle.values
        src = handle._pending[0]  # type: ignore[attr-defined]
        values = yield from self.recv(ctx, src)
        handle.values = values
        handle.done = True
        return values

    # -- broadcast ------------------------------------------------------------------------

    def bcast(self, ctx: ThreadCtx, root: int, values: list[Any] | None = None):
        """Generator: broadcast from *root*; all ranks return the values.

        The root performs a *single write*; every receiver reads the same
        slot (no per-recipient copies).  Receivers ack so the ring can be
        reused.
        """
        rank = ctx.tid
        if rank == root:
            if values is None:
                raise MPIError("root must supply values")
            if len(values) > self.max_words:
                raise MPIError("broadcast message too long")
            seq = self._bsent.get(root, 0)
            if seq >= self.capacity:
                # Wait for every receiver's ack of the message being evicted.
                for peer in range(self.nranks):
                    if peer != root:
                        yield isa.FlagWait(
                            self._back_flag(root, peer), seq - self.capacity + 1
                        )
            base, length = self._bslot(root, seq)
            yield isa.Write(base, len(values))
            for k, v in enumerate(values):
                yield isa.Write(base + (1 + k) * WORD_BYTES, v)
            yield from self._post(base, length)
            yield from ctx.flag_set(self._bcast_flag(root), seq + 1, wb=())
            self._bsent[root] = seq + 1
            return list(values)
        seq = self._brecvd.get((root, rank), 0)
        base, length = self._bslot(root, seq)
        yield from ctx.flag_wait(self._bcast_flag(root), seq + 1, inv=())
        yield from self._refresh(base, length)
        count = yield isa.Read(base)
        out = []
        for k in range(int(count)):
            out.append((yield isa.Read(base + (1 + k) * WORD_BYTES)))
        yield from ctx.flag_set(self._back_flag(root, rank), seq + 1, wb=())
        self._brecvd[(root, rank)] = seq + 1
        return out
