"""Operation stream vocabulary — the simulated ISA.

Thread programs are Python generators that *yield* these operations; the core
model executes each against the memory hierarchy and sends the result (for a
``Read``) back into the generator.  The vocabulary covers:

* plain memory accesses and compute delay,
* every WB/INV flavor of Sections III-B and V (address range, ALL,
  level-adaptive ``WB_CONS``/``INV_PROD``, and explicit-level ``WB_L3`` /
  ``INV_L2``),
* the three synchronization primitives served by the shared-cache controller
  (barriers, locks, condition flags — Section III-D), and
* epoch boundary markers that arm/disarm the MEB and IEB (Section IV-B).

Operations are plain ``__slots__`` classes (not dataclasses) because the
simulator allocates millions of them.
"""

from __future__ import annotations

from typing import Any


class Op:
    """Base class for every simulated operation."""

    __slots__ = ()
    mnemonic = "op"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for cls in type(self).__mro__
            for name in getattr(cls, "__slots__", ())
        )
        return f"{type(self).__name__}({fields})"


# -- memory accesses ---------------------------------------------------------


class Read(Op):
    """Load one word; the core sends the value back into the program."""

    __slots__ = ("addr",)
    mnemonic = "ld"

    def __init__(self, addr: int) -> None:
        self.addr = addr


class Write(Op):
    """Store one word."""

    __slots__ = ("addr", "value")
    mnemonic = "st"

    def __init__(self, addr: int, value: Any) -> None:
        self.addr = addr
        self.value = value


class Compute(Op):
    """Pure computation consuming *cycles* core cycles."""

    __slots__ = ("cycles",)
    mnemonic = "compute"

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles


# -- batched memory accesses ---------------------------------------------------
#
# Batch operations are *macro-ops*: each is defined as the exact per-word
# sequence of ``Read``/``Write`` operations given in its docstring, executed
# in order, and every engine charges latency, updates cache state, and counts
# statistics word by word exactly as the scalar sequence would.  They exist
# so a hot loop can hand the core a whole run of accesses in one generator
# round-trip instead of one ``yield`` per word — the scalar and batched
# forms of a program are bit-identical in stats and final memory.


class ReadBatch(Op):
    """Load the words at *addrs* in order; the core sends back the values.

    Equivalent to ``[ (yield Read(a)) for a in addrs ]``.
    """

    __slots__ = ("addrs",)
    mnemonic = "ld_batch"

    def __init__(self, addrs) -> None:
        self.addrs = addrs


class WriteBatch(Op):
    """Store ``values[k]`` to ``addrs[k]`` in order.

    Equivalent to ``Write(a, v)`` per pair; lengths must match.
    """

    __slots__ = ("addrs", "values")
    mnemonic = "st_batch"

    def __init__(self, addrs, values) -> None:
        self.addrs = addrs
        self.values = values


class CopyBatch(Op):
    """Interleaved copy: ``v = Read(src[k]); Write(dst[k], v)`` per k.

    The value flows inside the core (the program never observes it), which
    is what makes a scatter/gather permutation batchable at all: the
    per-word read→write interleaving of the scalar loop is preserved.
    """

    __slots__ = ("src_addrs", "dst_addrs")
    mnemonic = "copy_batch"

    def __init__(self, src_addrs, dst_addrs) -> None:
        self.src_addrs = src_addrs
        self.dst_addrs = dst_addrs


class AddBatch(Op):
    """Accumulate: ``v = Read(a[k]); Write(a[k], v + deltas[k])`` per k.

    The read-modify-write interleaving of a scalar accumulation loop is
    preserved; the deltas are computed by the program before issue.
    """

    __slots__ = ("addrs", "deltas")
    mnemonic = "add_batch"

    def __init__(self, addrs, deltas) -> None:
        self.addrs = addrs
        self.deltas = deltas


# -- writeback flavors (Section III-B, V) ------------------------------------


class WB(Op):
    """Write back the dirty words of lines overlapping [addr, addr+length)."""

    __slots__ = ("addr", "length")
    mnemonic = "WB"

    def __init__(self, addr: int, length: int = 4) -> None:
        self.addr = addr
        self.length = length


class WBAll(Op):
    """WB ALL — write back the whole cache (optionally via the MEB)."""

    __slots__ = ("via_meb",)
    mnemonic = "WB_ALL"

    def __init__(self, via_meb: bool = False) -> None:
        self.via_meb = via_meb


class WBCons(Op):
    """Level-adaptive WB_CONS(addr, ConsID): reach L2 or L3 per ThreadMap."""

    __slots__ = ("addr", "length", "cons_tid")
    mnemonic = "WB_CONS"

    def __init__(self, addr: int, length: int, cons_tid: int) -> None:
        self.addr = addr
        self.length = length
        self.cons_tid = cons_tid


class WBConsAll(Op):
    """WB_CONS ALL(ConsID) — whole L1 (and L2 when consumer is remote)."""

    __slots__ = ("cons_tid",)
    mnemonic = "WB_CONS_ALL"

    def __init__(self, cons_tid: int) -> None:
        self.cons_tid = cons_tid


class WBL3(Op):
    """Explicit-level WB_L3(addr): write back to L3 (through L2)."""

    __slots__ = ("addr", "length")
    mnemonic = "WB_L3"

    def __init__(self, addr: int, length: int = 4) -> None:
        self.addr = addr
        self.length = length


class WBAllL3(Op):
    """WB ALL pushed to the L3 (inter-block Base configuration)."""

    __slots__ = ()
    mnemonic = "WB_ALL_L3"


# -- self-invalidation flavors ------------------------------------------------


class INV(Op):
    """Self-invalidate lines overlapping [addr, addr+length) from the L1."""

    __slots__ = ("addr", "length")
    mnemonic = "INV"

    def __init__(self, addr: int, length: int = 4) -> None:
        self.addr = addr
        self.length = length


class INVAll(Op):
    """INV ALL — invalidate the whole L1."""

    __slots__ = ()
    mnemonic = "INV_ALL"


class InvProd(Op):
    """Level-adaptive INV_PROD(addr, ProdID): L1-only or L1+L2 per ThreadMap."""

    __slots__ = ("addr", "length", "prod_tid")
    mnemonic = "INV_PROD"

    def __init__(self, addr: int, length: int, prod_tid: int) -> None:
        self.addr = addr
        self.length = length
        self.prod_tid = prod_tid


class InvProdAll(Op):
    """INV_PROD ALL(ProdID) — whole L1 (and L2 when producer is remote)."""

    __slots__ = ("prod_tid",)
    mnemonic = "INV_PROD_ALL"

    def __init__(self, prod_tid: int) -> None:
        self.prod_tid = prod_tid


class INVL2(Op):
    """Explicit-level INV_L2(addr): invalidate from L2 (and L1)."""

    __slots__ = ("addr", "length")
    mnemonic = "INV_L2"

    def __init__(self, addr: int, length: int = 4) -> None:
        self.addr = addr
        self.length = length


class INVAllL2(Op):
    """INV ALL applied to both L1 and local L2 (inter-block Base config)."""

    __slots__ = ()
    mnemonic = "INV_ALL_L2"


# -- synchronization (Section III-D) ------------------------------------------


class Barrier(Op):
    """Global barrier over *count* participants (queued at the controller)."""

    __slots__ = ("bid", "count")
    mnemonic = "barrier"

    def __init__(self, bid: int, count: int) -> None:
        self.bid = bid
        self.count = count


class LockAcquire(Op):
    __slots__ = ("lid",)
    mnemonic = "lock_acquire"

    def __init__(self, lid: int) -> None:
        self.lid = lid


class LockRelease(Op):
    __slots__ = ("lid",)
    mnemonic = "lock_release"

    def __init__(self, lid: int) -> None:
        self.lid = lid


class FlagSet(Op):
    """Set a condition flag to *value* (default: increment-style set to 1)."""

    __slots__ = ("fid", "value")
    mnemonic = "flag_set"

    def __init__(self, fid: int, value: int = 1) -> None:
        self.fid = fid
        self.value = value


class FlagWait(Op):
    """Block until the condition flag reaches at least *value*."""

    __slots__ = ("fid", "value")
    mnemonic = "flag_wait"

    def __init__(self, fid: int, value: int = 1) -> None:
        self.fid = fid
        self.value = value


# -- epoch markers (arm/disarm MEB and IEB, Section IV-B) ---------------------


class EpochBegin(Op):
    """Start of an epoch: optionally arm MEB recording and IEB read-checking.

    ``kind`` is a free-form label ("critical", "barrier", …) used only by
    statistics and tests.
    """

    __slots__ = ("record_meb", "ieb_mode", "kind")
    mnemonic = "epoch_begin"

    def __init__(
        self, record_meb: bool = False, ieb_mode: bool = False, kind: str = ""
    ) -> None:
        self.record_meb = record_meb
        self.ieb_mode = ieb_mode
        self.kind = kind


class EpochEnd(Op):
    """End of an epoch: disarm MEB/IEB."""

    __slots__ = ()
    mnemonic = "epoch_end"


#: Operation classes that read or write a single explicit word address.
ADDRESSED_OPS = (Read, Write)

#: Batched macro-ops; every engine and the analyzer expand these to their
#: defining per-word Read/Write sequence.
BATCH_OPS = (ReadBatch, WriteBatch, CopyBatch, AddBatch)

#: WB-family operations, used by accounting and by the write buffer model.
WB_OPS = (WB, WBAll, WBCons, WBConsAll, WBL3, WBAllL3)

#: INV-family operations.
INV_OPS = (INV, INVAll, InvProd, InvProdAll, INVL2, INVAllL2)

#: Synchronization operations served by the shared-cache sync controller.
SYNC_OPS = (Barrier, LockAcquire, LockRelease, FlagSet, FlagWait)

# -- static-analysis classification (used by repro.analysis) ------------------

#: WB/INV flavors carrying an explicit [addr, addr+length) byte range.
RANGED_WB_OPS = (WB, WBCons, WBL3)
RANGED_INV_OPS = (INV, InvProd, INVL2)

#: WB/INV flavors that sweep a whole cache (no address information).
ALL_WB_OPS = (WBAll, WBConsAll, WBAllL3)
ALL_INV_OPS = (INVAll, InvProdAll, INVAllL2)

#: Release-side synchronization: annotations posting data go *before* these.
RELEASE_SIDE_OPS = (Barrier, LockRelease, FlagSet)

#: Acquire-side synchronization: annotations exposing data go *after* these.
ACQUIRE_SIDE_OPS = (Barrier, LockAcquire, FlagWait)

#: WB flavors that reach the chip-shared last-level cache unconditionally.
GLOBAL_WB_OPS = (WBL3, WBAllL3)

#: INV flavors that invalidate from the block's L2 (not just the L1).
GLOBAL_INV_OPS = (INVL2, INVAllL2)


def byte_range(op: Op) -> tuple[int, int] | None:
    """Byte interval ``[lo, hi)`` covered by a ranged WB/INV op.

    Returns ``None`` for ALL-flavored ops (whole-cache sweeps) and for
    operations that carry no write-back/invalidation range at all.
    """
    if isinstance(op, RANGED_WB_OPS + RANGED_INV_OPS):
        return (op.addr, op.addr + op.length)
    return None


def sync_var_id(op: Op) -> int | None:
    """Synchronization variable ID of a sync op (barrier/lock/flag), else None."""
    if isinstance(op, Barrier):
        return op.bid
    if isinstance(op, (LockAcquire, LockRelease)):
        return op.lid
    if isinstance(op, (FlagSet, FlagWait)):
        return op.fid
    return None
