"""Subpackage of repro."""
