"""Write-buffer ordering model (Section III-C, Figure 3).

WB and INV proceed down the pipeline like stores and drain through the write
buffer.  The section defines which reorderings are *forbidden*, which are
*desirable to keep in order*, and which are *always allowed*:

==========================  =============================================
pair (program order)        rule
==========================  =============================================
``INV(x) -> ld x``          forbidden to reorder (load must see fresh value)
``st x  -> WB(x)``          forbidden to reorder (WB must post the new value)
``ld x  -> INV(x)``         keep in order (desirable; avoids extra misses)
``WB(x) -> st x``           keep in order (desirable; posts values promptly)
``st x -> INV(x) -> st x``  keep both orders (desirable)
``ld x  <-> WB(x)``         always reorderable (WB does not change the line)
==========================  =============================================

This module provides (a) :func:`may_reorder`, the pairwise oracle; (b)
:func:`check_execution_order`, which validates a proposed execution order of
same-address accesses against a program order; and (c) :class:`WriteBuffer`,
a drain model showing that store-buffer FIFO-per-address draining plus the
"loads may bypass WB but not INV" pipeline rule enforces every constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import OrderingError


class AccKind(str, Enum):
    LOAD = "ld"
    STORE = "st"
    WB = "WB"
    INV = "INV"


@dataclass(frozen=True)
class Access:
    """One same-address access in a reordering scenario."""

    kind: AccKind
    addr: int
    seq: int = 0  # program-order position (assigned by callers/tests)


#: (earlier kind, later kind) pairs that hardware/compiler must never swap.
FORBIDDEN_SWAPS: frozenset[tuple[AccKind, AccKind]] = frozenset(
    {
        (AccKind.INV, AccKind.LOAD),  # Figure 3a: INV(x) -> ld x
        (AccKind.STORE, AccKind.WB),  # Figure 3b: st x -> WB(x)
    }
)

#: Pairs that should be kept in order for performance (Figure 3a-c).  A
#: strict checker treats these as errors too; a permissive one only reports.
DESIRABLE_ORDER: frozenset[tuple[AccKind, AccKind]] = frozenset(
    {
        (AccKind.LOAD, AccKind.INV),
        (AccKind.WB, AccKind.STORE),
        (AccKind.STORE, AccKind.INV),
        (AccKind.INV, AccKind.STORE),
    }
)


def may_reorder(first: Access, second: Access, *, strict: bool = False) -> bool:
    """May *second* (later in program order) execute before *first*?

    Accesses to different addresses never constrain each other here (fences
    are outside Section III-C's scope).  With ``strict=True`` the desirable
    orders of Figure 3 are also enforced.
    """
    if first.addr != second.addr:
        return True
    pair = (first.kind, second.kind)
    if pair in FORBIDDEN_SWAPS:
        return False
    if strict and pair in DESIRABLE_ORDER:
        return False
    return True


def check_execution_order(
    program: list[Access], execution: list[Access], *, strict: bool = False
) -> None:
    """Raise :class:`OrderingError` if *execution* illegally reorders *program*.

    Both lists must contain the same accesses (compared by identity of their
    ``seq`` tags); *execution* is the order the machine performed them in.
    """
    if sorted(a.seq for a in program) != sorted(a.seq for a in execution):
        raise OrderingError("execution is not a permutation of the program")
    pos = {a.seq: i for i, a in enumerate(execution)}
    for i, early in enumerate(program):
        for late in program[i + 1 :]:
            if pos[late.seq] < pos[early.seq] and not may_reorder(
                early, late, strict=strict
            ):
                raise OrderingError(
                    f"illegal reorder: {late.kind.value}({late.addr:#x}) "
                    f"executed before {early.kind.value}({early.addr:#x})"
                )


class WriteBuffer:
    """FIFO-per-address drain model for stores, WBs, and INVs.

    Stores/WBs/INVs retire into the buffer in program order and drain in
    order per address.  ``load_may_proceed`` captures the pipeline rule: a
    load may bypass buffered WBs to its address (the WB does not change the
    local line) but must wait for a buffered INV to its address to drain.
    """

    def __init__(self, capacity: int = 16, *, metrics=None, faults=None) -> None:
        if capacity < 1:
            raise OrderingError("write buffer needs at least one entry")
        self.capacity = capacity
        self._entries: list[Access] = []
        #: Optional :class:`repro.obs.metrics.Metrics` registry; when
        #: attached, retires, drains, and blocked load bypasses are counted
        #: under ``wbuf.*``.
        self.metrics = metrics
        #: Optional :class:`repro.faults.injector.FaultInjector`; when
        #: armed, retirement and drain steps may suffer injected stalls,
        #: accumulated in :attr:`stall_cycles` (ordering is unaffected —
        #: a stalled drain is slower, never reordered).
        self.faults = faults
        self.stall_cycles = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def retire(self, access: Access) -> None:
        """Place a store/WB/INV into the buffer (program order)."""
        if access.kind == AccKind.LOAD:
            raise OrderingError("loads do not enter the write buffer")
        if self.full:
            raise OrderingError("write buffer overflow — drain first")
        if self.faults is not None:
            self.stall_cycles += self.faults.wbuf_stall()
        self._entries.append(access)
        if self.metrics is not None:
            self.metrics.inc(f"wbuf.retired.{access.kind.value}")

    def load_may_proceed(self, addr: int) -> bool:
        """May a load to *addr* execute now, given buffered entries?"""
        blocked = any(
            e.addr == addr and e.kind == AccKind.INV for e in self._entries
        )
        if self.metrics is not None:
            self.metrics.inc("wbuf.load_blocked" if blocked else "wbuf.load_bypass")
        return not blocked

    def pending_store_value_visible(self, addr: int) -> bool:
        """True when a buffered store to *addr* would be forwarded to a load."""
        return any(e.addr == addr and e.kind == AccKind.STORE for e in self._entries)

    def drain_one(self) -> Access:
        """Drain the oldest entry (global FIFO ⇒ per-address FIFO)."""
        if not self._entries:
            raise OrderingError("drain from empty write buffer")
        if self.faults is not None:
            self.stall_cycles += self.faults.wbuf_stall()
        if self.metrics is not None:
            self.metrics.inc("wbuf.drained")
        return self._entries.pop(0)

    def drain_all(self) -> list[Access]:
        out, self._entries = self._entries, []
        if self.metrics is not None and out:
            self.metrics.inc("wbuf.drained", len(out))
        return out
