"""Pattern builders: ScenarioSpec → concrete macro programs + oracle.

Each builder expands a :class:`~repro.workloads.gen.spec.ScenarioSpec`
into a :class:`Scenario`: named shared arrays, one straight-line *macro
program* per thread, and the analytically computed expected final memory.
Macro programs are plain tuples (no value-dependent control flow), so the
scenario is digestable without running anything, and the expected image is
derived while generating — the run-time oracle compares main memory
against it word for word.

Correctness by construction:

* every cross-thread access pair is ordered by a barrier, lock, or flag
  (data-race-free), and the runtime interpreter issues synchronization
  through the default :class:`~repro.core.context.ThreadCtx` helpers, so
  each sync op carries the Section IV-A WB ALL / INV ALL annotations the
  configuration prescribes — generated programs lint clean and produce
  the coherent result on every Table II configuration;
* shared updates are commutative integer adds or single-writer-per-word
  stores, so the final image is independent of simulated timing — the
  property the fleet's cross-config / cross-engine digest oracle relies
  on (the same contract the chaos runner imposes on its targets).

Macro vocabulary (interpreted by :func:`repro.workloads.gen.macro_program`):

=====================  ====================================================
macro                  meaning
=====================  ====================================================
``("load", a, i)``     ``acc += arrays[a][i]`` (simulated load)
``("store", a, i, v)`` ``arrays[a][i] = v``
``("add", a, i, d)``   load + store of ``value + d`` (read-modify-write)
``("store_acc", a, i)``  store the thread's accumulator register
``("compute", c)``     pure delay of ``c`` cycles
``("barrier", bid)``   global barrier over all scenario threads
``("lock", lid)`` / ``("unlock", lid)``  critical-section brackets
``("flag_set", fid, v)`` / ``("flag_wait", fid, v)``  condition flag ops
=====================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.workloads.gen.spec import ScenarioSpec

#: Words per cache line on the generator's machines (64-byte lines).
WORDS_PER_LINE = 16


@dataclass(frozen=True)
class Scenario:
    """A fully expanded generated workload.

    ``arrays`` maps array name → word count (allocation order is the
    tuple order); ``programs`` holds one macro tuple per thread;
    ``expected`` is the oracle: the exact final value of every word of
    every array (unwritten words stay 0, like main memory).
    """

    spec: ScenarioSpec
    arrays: tuple[tuple[str, int], ...]
    programs: tuple[tuple[tuple, ...], ...]
    expected: tuple[tuple[str, tuple[int, ...]], ...]

    def program_digest(self) -> str:
        """Canonical SHA-256 over arrays + macro programs (no execution)."""
        blob = json.dumps(
            {"arrays": self.arrays, "programs": self.programs},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()


def _values(rng, n: int) -> list[int]:
    """n small positive ints (kept small so checksums stay exact)."""
    return [int(v) for v in rng.integers(1, 1000, size=n)]


def _finale(progs, sink_len_threads, data_name, nwords, state, expected_sink):
    """Append the shared epilogue: barrier, full read sweep, sink store.

    Every thread reads the whole data array (after a barrier, so the reads
    observe the final image) and stores its accumulator into its private
    sink word — exercising the read path under the digest oracle.
    """
    total = sum(state)
    for t, prog in enumerate(progs):
        prog.append(("barrier", 0))
        for i in range(nwords):
            prog.append(("load", data_name, i))
        prog.append(("store_acc", "sink", t))
        prog.append(("barrier", 0))
        expected_sink[t] += total


def build_producer_consumer(spec: ScenarioSpec) -> Scenario:
    """Thread 0 publishes a block per round; consumers fan out over it."""
    T, R = spec.threads, spec.rounds
    nwords = spec.footprint_lines * WORDS_PER_LINE
    rng = spec.rng("values")
    progs: list[list[tuple]] = [[] for _ in range(T)]
    sink = [0] * T
    state = [0] * nwords
    for r in range(R):
        vals = _values(rng, nwords)
        state = vals
        progs[0].append(("compute", int(rng.integers(1, 50))))
        for i in range(nwords):
            progs[0].append(("store", "data", i, vals[i]))
        progs[0].append(("flag_set", 0, r + 1))
        for t in range(1, T):
            progs[t].append(("flag_wait", 0, r + 1))
            for i in range(nwords):
                progs[t].append(("load", "data", i))
            sink[t] += sum(vals)
            progs[t].append(("compute", int(rng.integers(1, 50))))
        # Close the round so the next publish cannot race the readers.
        for prog in progs:
            prog.append(("barrier", 0))
    _finale(progs, T, "data", nwords, state, sink)
    return Scenario(
        spec,
        (("data", nwords), ("sink", T)),
        tuple(tuple(p) for p in progs),
        (("data", tuple(state)), ("sink", tuple(sink))),
    )


def build_migratory(spec: ScenarioSpec) -> Scenario:
    """A token migrates thread to thread; each holder updates the region."""
    T, R = spec.threads, spec.rounds
    nwords = spec.footprint_lines * WORDS_PER_LINE
    rng = spec.rng("values")
    progs: list[list[tuple]] = [[] for _ in range(T)]
    sink = [0] * T
    state = [0] * nwords
    for r in range(R):
        for t in range(T):
            seq = r * T + t
            progs[t].append(("flag_wait", 0, seq))
            k = int(rng.integers(1, nwords + 1))
            idxs = sorted(int(i) for i in rng.choice(nwords, size=k, replace=False))
            for i in idxs:
                d = int(rng.integers(1, 100))
                progs[t].append(("add", "counters", i, d))
                state[i] += d
            progs[t].append(("compute", int(rng.integers(1, 30))))
            progs[t].append(("flag_set", 0, seq + 1))
    _finale(progs, T, "counters", nwords, state, sink)
    return Scenario(
        spec,
        (("counters", nwords), ("sink", T)),
        tuple(tuple(p) for p in progs),
        (("counters", tuple(state)), ("sink", tuple(sink))),
    )


def build_lock_convoy(spec: ScenarioSpec) -> Scenario:
    """All threads hammer a few lock-protected counter lines (convoying)."""
    T, R = spec.threads, spec.rounds
    nlocks = spec.footprint_lines
    nwords = nlocks * WORDS_PER_LINE
    rng = spec.rng("values")
    progs: list[list[tuple]] = [[] for _ in range(T)]
    sink = [0] * T
    state = [0] * nwords
    for r in range(R):
        for t in range(T):
            for _ in range(int(rng.integers(1, 4))):
                lid = int(rng.integers(0, nlocks))
                progs[t].append(("lock", lid))
                for _ in range(int(rng.integers(1, 4))):
                    # Only words of the lock's own line: lock lid protects
                    # exactly line lid, so every update is ordered.
                    i = lid * WORDS_PER_LINE + int(rng.integers(0, WORDS_PER_LINE))
                    d = int(rng.integers(1, 100))
                    progs[t].append(("add", "counters", i, d))
                    state[i] += d
                progs[t].append(("compute", int(rng.integers(1, 20))))
                progs[t].append(("unlock", lid))
    _finale(progs, T, "counters", nwords, state, sink)
    return Scenario(
        spec,
        (("counters", nwords), ("sink", T)),
        tuple(tuple(p) for p in progs),
        (("counters", tuple(state)), ("sink", tuple(sink))),
    )


def build_false_sharing(spec: ScenarioSpec) -> Scenario:
    """Word-interleaved single-writer stores: heavy false sharing, no races."""
    T, R = spec.threads, spec.rounds
    nwords = spec.footprint_lines * WORDS_PER_LINE
    rng = spec.rng("values")
    progs: list[list[tuple]] = [[] for _ in range(T)]
    sink = [0] * T
    state = [0] * nwords
    for r in range(R):
        vals = _values(rng, nwords)
        for t in range(T):
            for i in range(t, nwords, T):  # word i belongs to thread i % T
                progs[t].append(("store", "fs", i, vals[i]))
                state[i] = vals[i]
            progs[t].append(("barrier", 0))
        for t in range(T):
            k = int(rng.integers(1, nwords + 1))
            idxs = [int(i) for i in rng.choice(nwords, size=k, replace=False)]
            for i in sorted(idxs):
                if i % T != t:  # read the words the *other* threads wrote
                    progs[t].append(("load", "fs", i))
                    sink[t] += state[i]
            progs[t].append(("barrier", 0))
    _finale(progs, T, "fs", nwords, state, sink)
    return Scenario(
        spec,
        (("fs", nwords), ("sink", T)),
        tuple(tuple(p) for p in progs),
        (("fs", tuple(state)), ("sink", tuple(sink))),
    )


def build_zipf_hot(spec: ScenarioSpec) -> Scenario:
    """Zipf-skewed traffic: a few hot lines absorb most of the accesses."""
    T, R = spec.threads, spec.rounds
    nwords = spec.footprint_lines * WORDS_PER_LINE
    rng = spec.rng("values")
    # Zipf weights over word ranks (word 0 hottest), renormalized per the
    # index subset a draw ranges over.
    weights = [(k + 1) ** -spec.skew for k in range(nwords)]
    progs: list[list[tuple]] = [[] for _ in range(T)]
    sink = [0] * T
    state = [0] * nwords

    def draw(idxs) -> int:
        w = [weights[i] for i in idxs]
        total = sum(w)
        p = [x / total for x in w]
        return int(idxs[int(rng.choice(len(idxs), p=p))])

    for r in range(R):
        for t in range(T):
            owned = list(range(t, nwords, T))
            for _ in range(2 * WORDS_PER_LINE):
                i = draw(owned)  # single writer per word: i % T == t
                v = int(rng.integers(1, 1000))
                progs[t].append(("store", "hot", i, v))
                state[i] = v
            progs[t].append(("barrier", 0))
        for t in range(T):
            for _ in range(2 * WORDS_PER_LINE):
                i = draw(list(range(nwords)))
                progs[t].append(("load", "hot", i))
                sink[t] += state[i]
            progs[t].append(("compute", int(rng.integers(1, 30))))
            progs[t].append(("barrier", 0))
    _finale(progs, T, "hot", nwords, state, sink)
    return Scenario(
        spec,
        (("hot", nwords), ("sink", T)),
        tuple(tuple(p) for p in progs),
        (("hot", tuple(state)), ("sink", tuple(sink))),
    )


#: pattern name → builder (the dispatch table ``build_scenario`` uses).
BUILDERS = {
    "producer_consumer": build_producer_consumer,
    "migratory": build_migratory,
    "lock_convoy": build_lock_convoy,
    "false_sharing": build_false_sharing,
    "zipf_hot": build_zipf_hot,
}
