"""Seeded generative traffic engine (the "workload frontier").

Turns the Table I sharing-pattern taxonomy into a generator: a
:class:`~repro.workloads.gen.spec.ScenarioSpec` (pattern, seed, threads,
footprint, skew, rounds) deterministically expands into a macro program
per thread (:mod:`repro.workloads.gen.patterns`) plus an analytically
computed expected memory image, and :func:`run_gen` executes it as a
first-class sweep cell alongside the SPLASH/NAS/litmus workloads.

Guarantees, by construction (see :mod:`repro.workloads.gen.patterns`):

* same spec → same program digest → same run statistics and final image;
* every generated program is data-race-free, uses the default
  Section IV-A annotations through :class:`~repro.core.context.ThreadCtx`
  helpers, lints clean, and produces the coherent (HCC-equal) final
  memory on every Table II configuration and both simulator engines.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.params import intra_block_machine
from repro.core.config import ExperimentConfig
from repro.core.machine import Machine
from repro.workloads.gen.patterns import BUILDERS, Scenario, WORDS_PER_LINE
from repro.workloads.gen.spec import PATTERNS, ScenarioSpec, sample_specs

__all__ = [
    "PATTERNS",
    "ScenarioSpec",
    "Scenario",
    "WORDS_PER_LINE",
    "build_scenario",
    "gen_machine_params",
    "macro_program",
    "run_gen",
    "sample_specs",
    "spawn_scenario",
]


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Expand *spec* into its concrete (deterministic) scenario."""
    return BUILDERS[spec.pattern](spec)


def gen_machine_params(spec: ScenarioSpec):
    """Machine parameters scenarios run on (litmus-style intra block)."""
    return intra_block_machine(max(4, spec.threads))


def macro_program(scenario: Scenario, tid: int, arrays: dict):
    """Machine-spawnable program interpreting thread *tid*'s macros.

    The thread carries one local accumulator register: ``load`` macros add
    the loaded value into it and ``store_acc`` writes it out.  ``add``
    macros (read-modify-write) deliberately do NOT touch the accumulator —
    the intermediate value a lock-protected add observes depends on
    acquisition order, while the accumulator must stay timing-independent
    for the oracle.
    """
    macros = scenario.programs[tid]

    def program(ctx):
        acc = 0
        for m in macros:
            op = m[0]
            if op == "load":
                value = yield from ctx.load(arrays[m[1]].addr(m[2]))
                acc += value
            elif op == "store":
                yield from ctx.store(arrays[m[1]].addr(m[2]), m[3])
            elif op == "add":
                addr = arrays[m[1]].addr(m[2])
                value = yield from ctx.load(addr)
                yield from ctx.store(addr, value + m[3])
            elif op == "store_acc":
                yield from ctx.store(arrays[m[1]].addr(m[2]), acc)
            elif op == "compute":
                yield from ctx.compute(m[1])
            elif op == "barrier":
                yield from ctx.barrier(m[1])
            elif op == "lock":
                yield from ctx.lock_acquire(m[1])
            elif op == "unlock":
                yield from ctx.lock_release(m[1])
            elif op == "flag_set":
                yield from ctx.flag_set(m[1], m[2])
            elif op == "flag_wait":
                yield from ctx.flag_wait(m[1], m[2])
            else:  # pragma: no cover - builders emit a closed vocabulary
                raise ConfigError(f"unknown macro {m!r}")

    return program


def spawn_scenario(machine: Machine, scenario: Scenario) -> dict:
    """Allocate the scenario's arrays and spawn its threads; return arrays."""
    spec = scenario.spec
    if machine.num_threads != spec.threads:
        raise ConfigError(
            f"{spec.name} needs {spec.threads} threads; "
            f"machine has {machine.num_threads}"
        )
    arrays = {name: machine.array(name, size) for name, size in scenario.arrays}
    for tid in range(spec.threads):
        machine.spawn(macro_program(scenario, tid, arrays))
    return arrays


def verify_scenario(machine: Machine, scenario: Scenario, arrays: dict) -> None:
    """Compare post-run main memory against the scenario's oracle."""
    for name, expected in scenario.expected:
        got = machine.read_array(arrays[name])
        if list(got) != list(expected):
            bad = next(
                i for i, (g, e) in enumerate(zip(got, expected)) if g != e
            )
            raise AssertionError(
                f"{scenario.spec.name}: {name}[{bad}] = {got[bad]!r}, "
                f"expected {expected[bad]!r}"
            )


def run_gen(
    spec: ScenarioSpec,
    config: ExperimentConfig,
    *,
    verify: bool = True,
    machine_params=None,
    tracer=None,
    metrics=None,
    faults=None,
    memory_digest: bool = False,
    engine: str | None = None,
):
    """Run one generated scenario as a sweep cell (cf. ``run_litmus``).

    ``verify=True`` applies the analytic oracle: every word of the final
    memory image must equal the value the builder computed while
    generating — on *any* configuration (generated programs are coherent
    by construction, so even plain incoherent Base must agree with HCC),
    and under any armed fault plan (scenarios are timing-independent, the
    chaos contract).
    """
    from repro.eval.runner import RunResult, _make_injector
    from repro.mem.memory import image_digest

    scenario = build_scenario(spec)
    params = machine_params or gen_machine_params(spec)
    injector = _make_injector(faults)
    machine = Machine(
        params, config, num_threads=spec.threads, tracer=tracer,
        metrics=metrics, faults=injector, engine=engine,
    )
    arrays = spawn_scenario(machine, scenario)
    stats = machine.run()
    if verify:
        verify_scenario(machine, scenario, arrays)
    return RunResult(
        spec.name,
        config.name,
        stats,
        metrics.snapshot() if metrics is not None else None,
        injector.snapshot() if injector is not None else None,
        image_digest(machine.hier.memory.image()) if memory_digest else None,
    )


def lint_scenario(spec: ScenarioSpec, config: ExperimentConfig):
    """Static-check a generated scenario under *config*; return the report.

    Builds a fresh (never-run) machine, spawns the scenario, and hands it
    to the Section IV-A analyzer — the fleet requires a clean report from
    every scenario it runs.  HCC is rejected by the analyzer (nothing to
    lint), matching ``repro lint``.
    """
    from repro.analysis.lint import lint_machine

    scenario = build_scenario(spec)
    machine = Machine(
        gen_machine_params(spec), config, num_threads=spec.threads
    )
    spawn_scenario(machine, scenario)
    return lint_machine(machine, name=spec.name, config=config.name)
