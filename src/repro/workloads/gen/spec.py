"""Scenario specification: the seed-deterministic identity of a workload.

A :class:`ScenarioSpec` is the complete input to the traffic generator —
pattern name, seed, thread count, footprint, skew, round count.  Equal
specs build byte-identical programs (the generator draws all randomness
from :func:`repro.common.rng.make_rng` streams keyed by the spec), so the
spec's canonical digest identifies the generated workload for the result
cache exactly as an application name identifies a SPLASH kernel.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, make_rng

#: The Table I sharing-pattern taxonomy the generator parameterizes.
PATTERNS = (
    "producer_consumer",
    "migratory",
    "lock_convoy",
    "false_sharing",
    "zipf_hot",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete, hashable identity of one generated scenario.

    ``skew`` is the Zipf exponent (used by ``zipf_hot``; inert elsewhere
    but always part of the identity so digests never collide across
    parameter meanings).
    """

    pattern: str
    seed: int
    threads: int = 4
    footprint_lines: int = 4
    rounds: int = 2
    skew: float = 1.2

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ConfigError(
                f"unknown pattern {self.pattern!r}; expected one of {PATTERNS}"
            )
        if self.threads < 2:
            raise ConfigError("scenarios need >= 2 threads")
        if self.footprint_lines < 1:
            raise ConfigError("footprint must be >= 1 line")
        if self.rounds < 1:
            raise ConfigError("scenarios need >= 1 round")
        if not self.skew > 0:
            raise ConfigError("zipf skew must be > 0")

    @property
    def name(self) -> str:
        """Human-readable cell label, e.g. ``gen:zipf_hot/s7t4f4r2``."""
        return (
            f"gen:{self.pattern}/s{self.seed}t{self.threads}"
            f"f{self.footprint_lines}r{self.rounds}"
        )

    def to_dict(self) -> dict:
        """JSON-safe form (exact inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        return cls(**d)

    def digest(self) -> str:
        """Canonical SHA-256 of the spec — the cache-key ingredient."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def rng(self, stream: str):
        """Spec-scoped deterministic RNG for generator stream *stream*."""
        return make_rng(f"gen.{self.pattern}.{stream}", self.seed)


def sample_specs(
    n: int,
    seed: int = DEFAULT_SEED,
    patterns=PATTERNS,
    *,
    max_threads: int = 4,
) -> list[ScenarioSpec]:
    """Draw *n* scenario specs, cycling patterns, parameters seeded.

    Patterns round-robin so every fleet slice covers the whole taxonomy;
    per-spec parameters (threads, footprint, rounds, skew) come from one
    seeded stream, and each spec's own seed is drawn from the same stream
    so two fleets with different master seeds share no scenarios.
    """
    if n < 1:
        raise ConfigError("need n >= 1 scenarios")
    rng = make_rng("gen.sample_specs", seed)
    specs = []
    for i in range(n):
        pattern = patterns[i % len(patterns)]
        specs.append(
            ScenarioSpec(
                pattern=pattern,
                seed=int(rng.integers(0, 2**31)),
                threads=int(rng.integers(2, max_threads + 1)),
                footprint_lines=int(rng.integers(1, 9)),
                rounds=int(rng.integers(1, 5)),
                skew=round(1.05 + 0.95 * float(rng.random()), 3),
            )
        )
    return specs
