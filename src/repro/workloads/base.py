"""Workload interfaces and registry.

Two workload families mirror the paper's two programming models:

* :class:`ModelOneWorkload` — SPLASH-2-style pointer/irregular codes written
  directly against the :class:`~repro.core.context.ThreadCtx` API with
  Model-1 annotations.  Each declares its Table I communication patterns and
  provides a functional verifier.
* :class:`ModelTwoWorkload` — NAS-style loop-nest codes expressed in the
  Model-2 IR, lowered by the mini-ROSE pipeline.  Verification compares the
  simulated final memory against the reference interpreter.

Registries map workload names to classes for the evaluation harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.compiler.executor import ModelTwoRunner
from repro.compiler.interp import interpret
from repro.compiler.ir import IRProgram
from repro.common.errors import ConfigError
from repro.core.machine import Machine


class Pattern:
    """Communication-pattern labels of Table I."""

    BARRIER = "barrier"
    CRITICAL = "critical"
    FLAG = "flag"
    OUTSIDE_CRITICAL = "outside critical"
    DATA_RACE = "data race"


class ModelOneWorkload(ABC):
    """A SPLASH-2-style intra-block workload."""

    #: Registry name, e.g. "fft".
    name: str = ""
    #: Dominant communication pattern(s), Table I "Main" column.
    main_patterns: tuple[str, ...] = ()
    #: Secondary patterns, Table I "Other" column.
    other_patterns: tuple[str, ...] = ()

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.scale = scale

    @abstractmethod
    def prepare(self, machine: Machine) -> None:
        """Allocate arrays, preload inputs, and spawn all threads."""

    @abstractmethod
    def verify(self, machine: Machine) -> None:
        """Assert final memory holds the correct result (post ``run()``)."""

    def run_on(self, machine: Machine):
        """Convenience: prepare, run, verify; returns the statistics."""
        self.prepare(machine)
        stats = machine.run()
        self.verify(machine)
        return stats


class ModelTwoWorkload(ABC):
    """A NAS-style inter-block workload expressed in the Model-2 IR."""

    name: str = ""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.scale = scale

    @abstractmethod
    def build(self) -> tuple[IRProgram, dict[str, list[Any]]]:
        """Return (IR program, preloaded initial array contents)."""

    #: Arrays whose final contents are checked against the interpreter.
    verify_arrays: tuple[str, ...] = ()
    #: Relative tolerance for float comparison (reduction reassociation).
    rel_tol: float = 1e-6

    def make_runner(self, machine: Machine) -> ModelTwoRunner:
        program, preloads = self.build()
        runner = ModelTwoRunner(machine, program)
        for name, values in preloads.items():
            runner.preload(name, values)
        return runner

    def reference(
        self, nthreads: int, blocks: list[list[int]] | None = None
    ) -> dict[str, list[Any]]:
        program, preloads = self.build()
        return interpret(program, nthreads, preloads, blocks=blocks)

    def verify(self, runner: ModelTwoRunner) -> None:
        """Compare the simulated final arrays against the interpreter."""
        placement = runner.machine.placement
        blocks = [
            placement.threads_in_block(b)
            for b in range(runner.machine.params.num_blocks)
        ]
        blocks = [b for b in blocks if b]
        ref = self.reference(runner.n, blocks)
        for name in self.verify_arrays:
            got = runner.result(name)
            want = ref[name]
            for k, (g, w) in enumerate(zip(got, want)):
                if isinstance(w, float) or isinstance(g, float):
                    err = abs(g - w)
                    bound = self.rel_tol * max(1.0, abs(w))
                    assert err <= bound, (
                        f"{self.name}: {name}[{k}] = {g!r}, expected {w!r}"
                    )
                else:
                    assert g == w, (
                        f"{self.name}: {name}[{k}] = {g!r}, expected {w!r}"
                    )

    def prepare(self, machine: Machine) -> ModelTwoRunner:
        """Lower the IR, preload inputs, and spawn all threads.

        Uniform counterpart of :meth:`ModelOneWorkload.prepare` so generic
        tooling (``repro lint``, the sweep engine) can stage any workload
        on a machine without knowing its model; returns the runner needed
        for Model-2 verification.
        """
        runner = self.make_runner(machine)
        runner.spawn_all()
        return runner

    def run_on(self, machine: Machine):
        """Convenience: prepare, run, verify; returns the statistics."""
        runner = self.prepare(machine)
        stats = machine.run()
        self.verify(runner)
        return stats


MODEL_ONE: dict[str, type[ModelOneWorkload]] = {}
MODEL_TWO: dict[str, type[ModelTwoWorkload]] = {}


def register_model_one(cls: type[ModelOneWorkload]) -> type[ModelOneWorkload]:
    if not cls.name:
        raise ConfigError(f"{cls.__name__} has no name")
    MODEL_ONE[cls.name] = cls
    return cls


def register_model_two(cls: type[ModelTwoWorkload]) -> type[ModelTwoWorkload]:
    if not cls.name:
        raise ConfigError(f"{cls.__name__} has no name")
    MODEL_TWO[cls.name] = cls
    return cls
