"""SPLASH-2 LU (Table I: barrier), contiguous and non-contiguous layouts.

Blocked dense LU factorization without pivoting, structured exactly like the
SPLASH-2 kernel: the matrix is divided into B×B blocks owned by threads in a
2-D interleave, and each elimination step runs three barrier-separated
epochs — diagonal-block factorization, panel solves, and the trailing-matrix
update.  Synchronization is coarse (a few barriers per block step), so the
paper classifies LU among the codes where WB/INV overhead "has very little
impact".

The **contiguous** variant pads each matrix row to a cache-line boundary
(SPLASH's "contiguous blocks" allocation, no false sharing); the
**non-contiguous** variant packs rows, so blocks owned by different threads
share cache lines — ping-pong under HCC, harmless under per-word dirty bits
(Section VII-B).

Verification compares against a sequential execution of the same blocked
algorithm (identical arithmetic order, hence bitwise-comparable).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one


def _blocked_lu_reference(a: np.ndarray, bs: int) -> np.ndarray:
    """Sequential blocked LU with the same arithmetic as the parallel code."""
    a = a.astype(float).copy()
    n = a.shape[0]
    nb = n // bs
    for k in range(nb):
        o = k * bs
        # Diagonal block.
        for kk in range(bs):
            for i in range(kk + 1, bs):
                a[o + i, o + kk] /= a[o + kk, o + kk]
                for j in range(kk + 1, bs):
                    a[o + i, o + j] -= a[o + i, o + kk] * a[o + kk, o + j]
        # Column panels: A21 <- A21 * U11^{-1}.
        for bi in range(k + 1, nb):
            ro = bi * bs
            for r in range(bs):
                for kk in range(bs):
                    s = a[ro + r, o + kk]
                    for m in range(kk):
                        s -= a[ro + r, o + m] * a[o + m, o + kk]
                    a[ro + r, o + kk] = s / a[o + kk, o + kk]
        # Row panels: A12 <- L11^{-1} * A12.
        for bj in range(k + 1, nb):
            co = bj * bs
            for c in range(bs):
                for kk in range(bs):
                    s = a[o + kk, co + c]
                    for m in range(kk):
                        s -= a[o + kk, o + m] * a[o + m, co + c]
                    a[o + kk, co + c] = s
        # Trailing update.
        for bi in range(k + 1, nb):
            for bj in range(k + 1, nb):
                ro, co = bi * bs, bj * bs
                for r in range(bs):
                    for c in range(bs):
                        s = a[ro + r, co + c]
                        for m in range(bs):
                            s -= a[ro + r, o + m] * a[o + m, co + c]
                        a[ro + r, co + c] = s
    return a


class _LUBase(ModelOneWorkload):
    main_patterns = (Pattern.BARRIER,)
    other_patterns = ()
    pad_rows = True

    def __init__(
        self, scale: float = 1.0, n: int | None = None, block: int = 9
    ) -> None:
        super().__init__(scale)
        # Default 36×36 with 9-wide blocks: rows are 2.25 lines, so the
        # packed layout really shares lines across owners.
        self.block = block
        nb = max(2, round(4 * scale))
        self.n = n if n is not None else nb * block
        if self.n % self.block:
            raise ConfigError("matrix size must be a multiple of the block size")
        self.nb = self.n // self.block
        rng = make_rng("lu")
        self.input = rng.random((self.n, self.n)) + np.eye(self.n) * self.n

    def _owner(self, bi: int, bj: int, nt: int) -> int:
        return (bi * self.nb + bj) % nt

    def prepare(self, machine: Machine) -> None:
        n = self.n
        self.mat = machine.array(
            f"lu_mat_{self.name}", (n, n), pad_rows=self.pad_rows
        )
        mem = machine.hier.memory
        for i in range(n):
            for j in range(n):
                mem.write_word(self.mat.addr(i, j) // 4, float(self.input[i, j]))
        #: Element-address table: the kernels below assemble ReadBatch
        #: address lists by plain list indexing instead of method calls.
        self._A = [[self.mat.addr(i, j) for j in range(n)] for i in range(n)]
        machine.spawn_all(self._program)

    # -- simulated kernels (one block each) ----------------------------------

    # Each kernel batches its reads into one ReadBatch per output element,
    # listing addresses in exactly the order the scalar loops read them;
    # the dot products subtract term by term so written values stay
    # bitwise identical to the scalar form.

    def _factor_diag(self, o: int):
        A, bs = self._A, self.block
        for kk in range(bs):
            ok = o + kk
            row_k = A[ok]
            pivot = yield isa.Read(row_k[ok])
            for i in range(kk + 1, bs):
                row_i = A[o + i]
                v = yield isa.Read(row_i[ok])
                lik = v / pivot
                yield isa.Write(row_i[ok], lik)
                for j in range(kk + 1, bs):
                    oj = o + j
                    akj, aij = yield isa.ReadBatch((row_k[oj], row_i[oj]))
                    yield isa.Write(row_i[oj], aij - lik * akj)
            yield isa.Compute(2 * bs)

    def _solve_col_panel(self, ro: int, o: int):
        A, bs = self._A, self.block
        for r in range(bs):
            row = A[ro + r]
            for kk in range(bs):
                ok = o + kk
                addrs = [row[ok]]
                for m in range(kk):
                    addrs.append(row[o + m])
                    addrs.append(A[o + m][ok])
                addrs.append(A[ok][ok])
                vals = yield isa.ReadBatch(addrs)
                s = vals[0]
                for x, u in zip(vals[1:-1:2], vals[2:-1:2]):
                    s -= x * u
                yield isa.Write(row[ok], s / vals[-1])
            yield isa.Compute(2 * bs)

    def _solve_row_panel(self, o: int, co: int):
        A, bs = self._A, self.block
        for c in range(bs):
            cc = co + c
            for kk in range(bs):
                row_k = A[o + kk]
                addrs = [row_k[cc]]
                for m in range(kk):
                    addrs.append(row_k[o + m])
                    addrs.append(A[o + m][cc])
                vals = yield isa.ReadBatch(addrs)
                s = vals[0]
                for l, y in zip(vals[1::2], vals[2::2]):
                    s -= l * y
                yield isa.Write(row_k[cc], s)
            yield isa.Compute(2 * bs)

    def _trailing(self, ro: int, co: int, o: int):
        A, bs = self._A, self.block
        for r in range(bs):
            row = A[ro + r]
            lrow = row[o : o + bs]
            crows = [A[o + m] for m in range(bs)]
            for c in range(bs):
                cc = co + c
                addrs = [row[cc]]
                for m in range(bs):
                    addrs.append(lrow[m])
                    addrs.append(crows[m][cc])
                vals = yield isa.ReadBatch(addrs)
                s = vals[0]
                for l, u in zip(vals[1::2], vals[2::2]):
                    s -= l * u
                yield isa.Write(row[cc], s)
            yield isa.Compute(2 * bs)

    def _program(self, ctx):
        t, nt = ctx.tid, ctx.nthreads
        nb, bs = self.nb, self.block
        for k in range(nb):
            o = k * bs
            if self._owner(k, k, nt) == t:
                yield from self._factor_diag(o)
            yield from ctx.barrier()
            for bi in range(k + 1, nb):
                if self._owner(bi, k, nt) == t:
                    yield from self._solve_col_panel(bi * bs, o)
            for bj in range(k + 1, nb):
                if self._owner(k, bj, nt) == t:
                    yield from self._solve_row_panel(o, bj * bs)
            yield from ctx.barrier()
            for bi in range(k + 1, nb):
                for bj in range(k + 1, nb):
                    if self._owner(bi, bj, nt) == t:
                        yield from self._trailing(bi * bs, bj * bs, o)
            yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        n = self.n
        want = _blocked_lu_reference(self.input, self.block)
        got = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                got[i, j] = machine.read_word(self.mat.addr(i, j))
        assert np.allclose(got, want, rtol=1e-9, atol=1e-9), (
            f"LU mismatch: max err {np.max(np.abs(got - want))}"
        )


@register_model_one
class LUContiguous(_LUBase):
    """Blocked LU with line-padded rows (no false sharing)."""

    name = "lu_cont"
    pad_rows = True


@register_model_one
class LUNonContiguous(_LUBase):
    """Blocked LU with packed rows (false sharing between block owners)."""

    name = "lu_noncont"
    pad_rows = False
