"""SPLASH-2 Volrend (Table I: main = barrier + outside critical).

A scaled volume renderer in two task-queue phases separated by a barrier:

1. **opacity phase** — threads pull voxel-slab tasks from a shared queue
   (critical section) and write each slab's opacity profile into a shared
   array (produced *outside* the critical section);
2. **composite phase** — threads pull image-column tasks from a second
   queue and composite along the ray, reading the opacity profiles that
   *other* threads produced in phase 1 — classic OCC: the only ordering is
   the dequeue critical section plus the inter-phase barrier.

Verification composites the same volume sequentially.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

_Q1_LOCK = 3
_Q2_LOCK = 4


@register_model_one
class Volrend(ModelOneWorkload):
    """Two-phase task-queue volume renderer with OCC."""

    name = "volrend"
    main_patterns = (Pattern.BARRIER, Pattern.OUTSIDE_CRITICAL)
    other_patterns = (Pattern.CRITICAL,)

    def __init__(
        self,
        scale: float = 1.0,
        n_slabs: int | None = None,
        slab_size: int = 24,
        n_columns: int | None = None,
    ) -> None:
        super().__init__(scale)
        self.n_slabs = n_slabs if n_slabs is not None else max(16, round(32 * scale))
        self.slab_size = slab_size
        self.n_columns = (
            n_columns if n_columns is not None else max(16, round(64 * scale))
        )
        rng = make_rng("volrend")
        self.volume = rng.random((self.n_slabs, slab_size))

    def prepare(self, machine: Machine) -> None:
        ns, ss = self.n_slabs, self.slab_size
        self.vox = machine.array("vol_vox", (ns, ss), pad_rows=True)
        self.opacity = machine.array("vol_opacity", ns)
        self.image = machine.array("vol_image", self.n_columns)
        self.q1 = machine.array("vol_q1", 1)
        self.q2 = machine.array("vol_q2", 1)
        mem = machine.hier.memory
        for s in range(ns):
            for k in range(ss):
                mem.write_word(self.vox.addr(s, k) // 4, float(self.volume[s, k]))
        #: Per-slab voxel-read and whole-profile opacity-read address
        #: tuples, hoisted for the phase ReadBatches below.
        self._slab_addrs = [
            tuple(self.vox.addr(s, k) for k in range(ss)) for s in range(ns)
        ]
        self._opac_addrs = tuple(self.opacity.addr(s) for s in range(ns))
        machine.spawn_all(self._program)

    @staticmethod
    def _slab_opacity(samples: list[float]) -> float:
        transparency = 1.0
        for v in samples:
            transparency *= 1.0 - 0.1 * v
        return 1.0 - transparency

    def _column_value(self, col: int, opacities: list[float]) -> float:
        # Composite front-to-back over the slabs this column traverses.
        acc = 0.0
        trans = 1.0
        for s in range(col % 4, self.n_slabs, 4):
            o = opacities[s]
            acc += trans * o
            trans *= 1.0 - o
        return acc

    def _program(self, ctx):
        yield from ctx.barrier()
        # Phase 1: opacity tasks.
        while True:
            yield from ctx.lock_acquire(_Q1_LOCK, occ=True)
            task = yield isa.Read(self.q1.addr(0))
            yield isa.Write(self.q1.addr(0), task + 1)
            yield from ctx.lock_release(_Q1_LOCK, occ=True)
            if task >= self.n_slabs:
                break
            samples = yield isa.ReadBatch(self._slab_addrs[int(task)])
            yield isa.Compute(2 * self.slab_size)
            yield isa.Write(self.opacity.addr(int(task)), self._slab_opacity(samples))
        yield from ctx.barrier()
        # Phase 2: composite tasks reading every slab's opacity (OCC).
        while True:
            yield from ctx.lock_acquire(_Q2_LOCK, occ=True)
            task = yield isa.Read(self.q2.addr(0))
            yield isa.Write(self.q2.addr(0), task + 1)
            yield from ctx.lock_release(_Q2_LOCK, occ=True)
            if task >= self.n_columns:
                break
            opacities = yield isa.ReadBatch(self._opac_addrs)
            yield isa.Compute(self.n_slabs)
            yield isa.Write(
                self.image.addr(int(task)), self._column_value(int(task), opacities)
            )
        yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        opac = [self._slab_opacity(list(self.volume[s])) for s in range(self.n_slabs)]
        want = np.array(
            [self._column_value(c, opac) for c in range(self.n_columns)]
        )
        got = np.array(
            [machine.read_word(self.image.addr(c)) for c in range(self.n_columns)]
        )
        assert np.allclose(got, want, rtol=1e-12, atol=1e-12), "Volrend mismatch"
