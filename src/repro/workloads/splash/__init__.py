"""SPLASH-2-style Model-1 workloads (Table I applications)."""

from repro.workloads.splash.barnes import Barnes
from repro.workloads.splash.cholesky import Cholesky
from repro.workloads.splash.fft import FFT
from repro.workloads.splash.lu import LUContiguous, LUNonContiguous
from repro.workloads.splash.ocean import OceanContiguous, OceanNonContiguous
from repro.workloads.splash.raytrace import Raytrace
from repro.workloads.splash.volrend import Volrend
from repro.workloads.splash.water import WaterNSquared, WaterSpatial

__all__ = [
    "Barnes",
    "Cholesky",
    "FFT",
    "LUContiguous",
    "LUNonContiguous",
    "OceanContiguous",
    "OceanNonContiguous",
    "Raytrace",
    "Volrend",
    "WaterNSquared",
    "WaterSpatial",
]
