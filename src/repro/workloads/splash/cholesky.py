"""SPLASH-2 Cholesky (Table I: main = outside critical; barrier/critical/flag).

Right-looking Cholesky factorization driven by a shared task queue — the
paper's canonical *Outside Critical-section Communication* (OCC) example: a
thread dequeues a task inside a critical section, but the column data the
task consumes was produced by earlier task owners *outside* any critical
section, ordered only by the dynamically-determined dequeue order plus
flags.

Tasks, in queue order for each k: ``finalize(k)`` (scale column k by the
square root of its diagonal) followed by ``update(k, j)`` for j > k
(subtract the rank-1 contribution onto column j).  Readiness is enforced
with condition flags:

* ``fin_k`` — set once column k is finalized; updates using k wait on it;
* ``upd_j`` — a counting flag of how many updates have been applied to
  column j; ``finalize(j)`` waits until all j of them landed.  Updates to a
  column are serialized by a per-column lock, and the holder republishes
  the count via ``flag_set`` (values stay monotonic).

The original busy-waits on memory; like the paper, we use flag
synchronization instead ("Cholesky had busy-waiting on variables; to reduce
unnecessary traffic, we changed it to flag synchronization").
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

_QUEUE_LOCK = 1
_COL_LOCK_BASE = 200
_FIN_FLAG_BASE = 1000
_UPD_FLAG_BASE = 2000


@register_model_one
class Cholesky(ModelOneWorkload):
    """Task-queue right-looking Cholesky with OCC."""

    name = "cholesky"
    main_patterns = (Pattern.OUTSIDE_CRITICAL,)
    other_patterns = (Pattern.BARRIER, Pattern.CRITICAL, Pattern.FLAG)

    def __init__(self, scale: float = 1.0, n: int | None = None) -> None:
        super().__init__(scale)
        self.n = n if n is not None else max(12, round(20 * scale))
        rng = make_rng("cholesky")
        m = rng.random((self.n, self.n))
        self.input = m @ m.T + np.eye(self.n) * self.n  # SPD

    # Task encoding: a linear id walks k = 0..n-1, each k contributing
    # 1 finalize + (n-1-k) updates, in order.
    def _decode(self, task: int) -> tuple[str, int, int]:
        k = 0
        n = self.n
        while task >= 1 + (n - 1 - k):
            task -= 1 + (n - 1 - k)
            k += 1
        if task == 0:
            return ("finalize", k, -1)
        return ("update", k, k + task)

    @property
    def num_tasks(self) -> int:
        n = self.n
        return sum(1 + (n - 1 - k) for k in range(n))

    def prepare(self, machine: Machine) -> None:
        n = self.n
        self.mat = machine.array("chol_mat", (n, n), pad_rows=True)
        self.queue = machine.array("chol_queue", 1)  # next-task counter
        self.upd_count = machine.array("chol_updcount", n)
        mem = machine.hier.memory
        for i in range(n):
            for j in range(n):
                mem.write_word(self.mat.addr(i, j) // 4, float(self.input[i, j]))
        #: Element-address table for assembling per-task batch address lists.
        self._M = [[self.mat.addr(i, j) for j in range(n)] for i in range(n)]
        machine.spawn_all(self._program)

    def _program(self, ctx):
        n = self.n
        mat = self.mat
        yield from ctx.barrier()
        while True:
            # Dequeue the next task (critical section; OCC assumed: the
            # column data this task will read was produced outside earlier
            # holders' critical sections).
            yield from ctx.lock_acquire(_QUEUE_LOCK, occ=True)
            task = yield isa.Read(self.queue.addr(0))
            yield isa.Write(self.queue.addr(0), task + 1)
            yield from ctx.lock_release(_QUEUE_LOCK, occ=True)
            if task >= self.num_tasks:
                break
            kind, k, j = self._decode(task)

            if kind == "finalize":
                # Wait for all k earlier updates onto column k.
                yield from ctx.flag_wait(_UPD_FLAG_BASE + k, value=k)
                diag = yield isa.Read(mat.addr(k, k))
                root = math.sqrt(diag)
                yield isa.Write(mat.addr(k, k), root)
                for i in range(k + 1, n):
                    v = yield isa.Read(mat.addr(i, k))
                    yield isa.Write(mat.addr(i, k), v / root)
                yield isa.Compute(2 * (n - k))
                yield from ctx.flag_set(_FIN_FLAG_BASE + k)
            else:
                # update(k, j): needs the finalized column k.
                yield from ctx.flag_wait(_FIN_FLAG_BASE + k)
                M = self._M
                ljk = yield isa.Read(M[j][k])
                col = yield isa.ReadBatch(tuple(M[i][k] for i in range(j, n)))
                yield isa.Compute(2 * (n - j))
                # Apply onto column j under the per-column lock.  AddBatch
                # interleaves read/write per element like the scalar loop,
                # and ``cur + (-(lik*ljk))`` is bitwise ``cur - lik*ljk``.
                lid = _COL_LOCK_BASE + j
                yield from ctx.lock_acquire(lid, occ=True)
                yield isa.AddBatch(
                    tuple(M[j + off][j] for off in range(len(col))),
                    tuple(-(lik * ljk) for lik in col),
                )
                cnt = yield isa.Read(self.upd_count.addr(j))
                yield isa.Write(self.upd_count.addr(j), cnt + 1)
                yield from ctx.lock_release(lid, occ=True)
                yield from ctx.flag_set(_UPD_FLAG_BASE + j, value=int(cnt) + 1)
        yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        n = self.n
        want = np.linalg.cholesky(self.input)
        got = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1):
                got[i, j] = machine.read_word(self.mat.addr(i, j))
        assert np.allclose(got, want, rtol=1e-7, atol=1e-8), (
            f"Cholesky mismatch: max err {np.max(np.abs(got - want))}"
        )
