"""SPLASH-2 Barnes (Table I: main = barrier + outside critical; critical).

A scaled Barnes-Hut-style N-body step on a periodic 1-D domain.  The tree
build is modeled by its communication skeleton: threads *bin* their bodies
into shared spatial cells under per-cell locks (Barnes' tree-insertion
critical sections).  The force phase then walks neighboring cells, reading
body lists that other threads produced inside critical sections — read
*outside* any critical section, ordered only by the intervening barrier
(OCC + barrier, the Table I "Main" entry).

Phases per step (barrier-separated):

1. bin own bodies into cells (per-cell critical sections, OCC),
2. compute forces from bodies in the home and neighbor cells,
3. integrate own bodies.

Binning is order-independent (cell lists are sets, force sums are
symmetric-tolerant), so results verify against a sequential reference.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

_CELL_LOCK_BASE = 300


@register_model_one
class Barnes(ModelOneWorkload):
    """Grid-binned N-body with OCC through shared cell lists."""

    name = "barnes"
    main_patterns = (Pattern.BARRIER, Pattern.OUTSIDE_CRITICAL)
    other_patterns = (Pattern.CRITICAL,)

    def __init__(
        self,
        scale: float = 1.0,
        n_bodies: int | None = None,
        n_cells: int = 16,
        steps: int = 2,
    ) -> None:
        super().__init__(scale)
        self.n_bodies = (
            n_bodies if n_bodies is not None else max(64, round(128 * scale))
        )
        self.n_cells = n_cells
        self.steps = steps
        self.box = float(n_cells)
        rng = make_rng("barnes")
        self.x0 = rng.random(self.n_bodies) * self.box
        self.v0 = (rng.random(self.n_bodies) - 0.5) * 0.02
        self.dt = 0.005
        #: Max bodies a cell can list (sized generously; overflow asserts).
        self.cell_cap = max(8, 4 * self.n_bodies // n_cells)

    def prepare(self, machine: Machine) -> None:
        n, c, cap = self.n_bodies, self.n_cells, self.cell_cap
        self.pos = machine.array("barnes_pos", n)
        self.vel = machine.array("barnes_vel", n)
        self.cell_count = machine.array("barnes_cellcount", c)
        self.cell_items = machine.array("barnes_cellitems", (c, cap), pad_rows=True)
        mem = machine.hier.memory
        for i in range(n):
            mem.write_word(self.pos.addr(i) // 4, float(self.x0[i]))
            mem.write_word(self.vel.addr(i) // 4, float(self.v0[i]))
        self._paddr = [self.pos.addr(i) for i in range(n)]
        self._vaddr = [self.vel.addr(i) for i in range(n)]
        self._clear_addrs = tuple(self.cell_count.addr(cell) for cell in range(c))
        machine.spawn_all(self._program)

    def _own(self, t: int, nt: int) -> range:
        base, extra = divmod(self.n_bodies, nt)
        lo = t * base + min(t, extra)
        return range(lo, lo + base + (1 if t < extra else 0))

    def _cell_of(self, x: float) -> int:
        return int(x % self.box) % self.n_cells

    @staticmethod
    def _force(xi: float, xj: float, box: float) -> float:
        d = xi - xj
        d -= box * round(d / box)
        return d / (d * d + 0.1)

    def _program(self, ctx):
        t, nt = ctx.tid, ctx.nthreads
        own = self._own(t, nt)
        pos, vel = self.pos, self.vel
        ccount, citems = self.cell_count, self.cell_items
        nc = self.n_cells
        for _ in range(self.steps):
            # Phase 0: one thread clears cell counts (cheap, serial-ish).
            if t == 0:
                yield isa.WriteBatch(self._clear_addrs, (0,) * nc)
            yield from ctx.barrier()
            # Phase 1: bin own bodies (tree build) — per-cell critical
            # sections; the lists are consumed outside critical sections.
            for i in own:
                x = yield isa.Read(pos.addr(i))
                cell = self._cell_of(x)
                lid = _CELL_LOCK_BASE + cell
                yield from ctx.lock_acquire(lid, occ=True)
                cnt = yield isa.Read(ccount.addr(cell))
                assert cnt < self.cell_cap, "cell overflow — raise cell_cap"
                yield isa.Write(citems.addr(cell, int(cnt)), i)
                yield isa.Write(ccount.addr(cell), int(cnt) + 1)
                yield from ctx.lock_release(lid, occ=True)
            yield from ctx.barrier()
            # Phase 2: force walk over home + neighbor cells (OCC reads of
            # the cell lists built by other threads).  Forces go to a
            # private-per-thread slice of the shared force array so the
            # integration can run in a separate epoch (all threads must see
            # old positions while any force walk is in flight).
            forces = {}
            for i in own:
                xi = yield isa.Read(pos.addr(i))
                home = self._cell_of(xi)
                f = 0.0
                for dc in (-1, 0, 1):
                    cell = (home + dc) % nc
                    cnt = yield isa.Read(ccount.addr(cell))
                    for slot in range(int(cnt)):
                        j = yield isa.Read(citems.addr(cell, slot))
                        if j == i:
                            continue
                        xj = yield isa.Read(pos.addr(int(j)))
                        f += self._force(xi, xj, self.box)
                        yield isa.Compute(24)
                forces[i] = f
            yield from ctx.barrier()
            # Phase 3: integrate own bodies from the snapshot forces.
            paddr, vaddr = self._paddr, self._vaddr
            for i in own:
                xi, v = yield isa.ReadBatch((paddr[i], vaddr[i]))
                v_new = v + forces[i] * self.dt
                yield isa.WriteBatch(
                    (vaddr[i], paddr[i]), (v_new, xi + v_new * self.dt)
                )
            yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        n = self.n_bodies
        x = self.x0.astype(float).copy()
        v = self.v0.astype(float).copy()
        for _ in range(self.steps):
            cells: list[list[int]] = [[] for _ in range(self.n_cells)]
            for i in range(n):
                cells[self._cell_of(x[i])].append(i)
            f = np.zeros(n)
            for i in range(n):
                home = self._cell_of(x[i])
                for dc in (-1, 0, 1):
                    for j in cells[(home + dc) % self.n_cells]:
                        if j != i:
                            f[i] += self._force(x[i], x[j], self.box)
            v = v + f * self.dt
            x = x + v * self.dt
        got_x = np.array([machine.read_word(self.pos.addr(i)) for i in range(n)])
        got_v = np.array([machine.read_word(self.vel.addr(i)) for i in range(n)])
        assert np.allclose(got_x, x, rtol=1e-6, atol=1e-8), "Barnes pos mismatch"
        assert np.allclose(got_v, v, rtol=1e-6, atol=1e-8), "Barnes vel mismatch"
