"""SPLASH-2 Water (Table I: barrier + critical), nsquared and spatial.

A scaled molecular-dynamics step on a 1-D periodic domain.  Each time step:

1. zero own forces, barrier,
2. pairwise force accumulation — each thread computes the interactions of
   its own molecules and accumulates into *both* partners' shared force
   slots, protected by per-molecule locks (Water's per-molecule critical
   sections), barrier,
3. position integration of own molecules, barrier.

**nsquared** considers every pair (i<j) — O(N²) interactions, many remote
force accumulations.  **spatial** uses a cell list and only interacts
molecules within a cutoff — far fewer pairs and mostly-local traffic,
which is why the paper classifies Water-Spatial among the coarse-grain
codes whose WB/INV overhead is negligible.

To keep results deterministic under any lock-grant order, force
accumulation adds values whose sum is order-independent up to float
rounding; verification uses a tolerance against the sequential reference.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

#: Per-molecule lock IDs start here.
_MOL_LOCK_BASE = 100


def _pair_force(xi: float, xj: float, box: float) -> float:
    """Periodic 1-D soft-core force on molecule i from j."""
    d = xi - xj
    d -= box * round(d / box)
    r2 = d * d + 0.05
    return d / (r2 * r2)


class _WaterBase(ModelOneWorkload):
    main_patterns = (Pattern.BARRIER, Pattern.CRITICAL)
    other_patterns = ()
    cutoff: float | None = None  # None: all pairs (nsquared)

    def __init__(
        self, scale: float = 1.0, n_mol: int | None = None, steps: int = 2
    ) -> None:
        super().__init__(scale)
        self.n_mol = n_mol if n_mol is not None else max(32, round(96 * scale))
        self.steps = steps
        self.box = float(self.n_mol)
        rng = make_rng("water")
        # Spread molecules over the box with jitter; modest velocities.
        self.x0 = (
            np.arange(self.n_mol) * (self.box / self.n_mol)
            + rng.random(self.n_mol) * 0.4
        )
        self.v0 = (rng.random(self.n_mol) - 0.5) * 0.1
        self.dt = 0.01

    # -- pair enumeration ------------------------------------------------------

    def _pairs_of(self, i: int) -> list[int]:
        """Partners j > i that molecule i interacts with."""
        if self.cutoff is None:
            return list(range(i + 1, self.n_mol))
        out = []
        for j in range(i + 1, self.n_mol):
            d = self.x0[i] - self.x0[j]
            d -= self.box * round(d / self.box)
            if abs(d) <= self.cutoff:
                out.append(j)
        return out

    # -- simulated program --------------------------------------------------------

    def prepare(self, machine: Machine) -> None:
        n = self.n_mol
        self.pos = machine.array(f"water_pos_{self.name}", n)
        self.vel = machine.array(f"water_vel_{self.name}", n)
        self.force = machine.array(f"water_force_{self.name}", n)
        mem = machine.hier.memory
        for i in range(n):
            mem.write_word(self.pos.addr(i) // 4, float(self.x0[i]))
            mem.write_word(self.vel.addr(i) // 4, float(self.v0[i]))
        # Pair lists depend only on the initial positions, so both the
        # partner indices and the phase-2 position-read address tuples
        # (own molecule first, then partners in ascending order — the
        # scalar read order) can be hoisted out of the hot loop.
        self._pairs = [self._pairs_of(i) for i in range(n)]
        paddr = [self.pos.addr(i) for i in range(n)]
        self._paddr = paddr
        self._vaddr = [self.vel.addr(i) for i in range(n)]
        self._faddr = [self.force.addr(i) for i in range(n)]
        self._p2_addrs = [
            (paddr[i], *(paddr[j] for j in self._pairs[i])) for i in range(n)
        ]
        machine.spawn_all(self._program)

    def _own(self, t: int, nt: int) -> range:
        base, extra = divmod(self.n_mol, nt)
        lo = t * base + min(t, extra)
        return range(lo, lo + base + (1 if t < extra else 0))

    def _program(self, ctx):
        t, nt = ctx.tid, ctx.nthreads
        own = self._own(t, nt)
        pairs, p2_addrs = self._pairs, self._p2_addrs
        paddr, vaddr, faddr = self._paddr, self._vaddr, self._faddr
        own_faddrs = tuple(faddr[i] for i in own)
        zeros = (0.0,) * len(own_faddrs)
        for _ in range(self.steps):
            # Phase 1: zero own force slots.
            yield isa.WriteBatch(own_faddrs, zeros)
            yield from ctx.barrier()
            # Phase 2: pair interactions.  Like SPLASH-2 Water, partial
            # forces are first accumulated in a thread-private scratch and
            # merged into the shared array once per touched molecule, each
            # merge inside that molecule's critical section.  Each
            # molecule's position reads (self, then ascending partners)
            # form one ReadBatch; the per-pair FLOP charge is coalesced.
            local: dict[int, float] = {}
            for i in own:
                vals = yield isa.ReadBatch(p2_addrs[i])
                xi = vals[0]
                js = pairs[i]
                for j, xj in zip(js, vals[1:], strict=True):
                    f = _pair_force(xi, xj, self.box)
                    local[i] = local.get(i, 0.0) + f
                    local[j] = local.get(j, 0.0) - f
                if js:
                    yield isa.Compute(40 * len(js))
            own_set = set(own)
            for mol in sorted(local):
                if mol in own_set:
                    # Contributions to own molecules are merged lock-free in
                    # phase 3, after the barrier (SPLASH Water's local-force
                    # optimization).
                    continue
                lid = _MOL_LOCK_BASE + mol
                yield from ctx.lock_acquire(lid, occ=False)
                cur = yield isa.Read(faddr[mol])
                yield isa.Write(faddr[mol], cur + local[mol])
                yield from ctx.lock_release(lid, occ=False)
            yield from ctx.barrier()
            # Phase 3: integrate own molecules (adding the deferred own
            # contributions — no other thread touches forces now).
            for i in own:
                f, v, x = yield isa.ReadBatch((faddr[i], vaddr[i], paddr[i]))
                f += local.get(i, 0.0)
                v_new = v + f * self.dt
                yield isa.WriteBatch(
                    (vaddr[i], paddr[i]), (v_new, x + v_new * self.dt)
                )
                yield isa.Compute(6)
            yield from ctx.barrier()

    # -- verification ---------------------------------------------------------------

    def verify(self, machine: Machine) -> None:
        n = self.n_mol
        x = self.x0.astype(float).copy()
        v = self.v0.astype(float).copy()
        for _ in range(self.steps):
            f = np.zeros(n)
            for i in range(n):
                for j in self._pairs_of(i):
                    pf = _pair_force(x[i], x[j], self.box)
                    f[i] += pf
                    f[j] -= pf
            v += f * self.dt
            x += v * self.dt
        got_x = np.array([machine.read_word(self.pos.addr(i)) for i in range(n)])
        got_v = np.array([machine.read_word(self.vel.addr(i)) for i in range(n)])
        assert np.allclose(got_x, x, rtol=1e-7, atol=1e-9), "Water pos mismatch"
        assert np.allclose(got_v, v, rtol=1e-7, atol=1e-9), "Water vel mismatch"


@register_model_one
class WaterNSquared(_WaterBase):
    """All-pairs Water: fine-grain critical sections, heavy sharing."""

    name = "water_nsq"
    cutoff = None


@register_model_one
class WaterSpatial(_WaterBase):
    """Cutoff (cell-list) Water: coarse-grain, mostly local."""

    name = "water_sp"
    cutoff = 2.0
