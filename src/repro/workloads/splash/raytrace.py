"""SPLASH-2 Raytrace (Table I: main = critical; barrier, data race).

A scaled ray caster whose defining trait is *very frequent* critical
sections: threads pull tile indices from a shared job queue one at a time
("there are frequent lock accesses in a set of job queues.  Its fine-grain
structure is the reason for the large overhead", Section VII-B).  Each tile
renders a few pixels: per pixel, every sphere of the shared read-only scene
is intersection-tested and the nearest hit is shaded into the shared image.

The original contains a benign data race on a global ray counter; we model
it with Figure-6b annotated racy accesses (``racy_store``/``racy_load``):
each thread racily publishes its progress and occasionally reads the
others' — the final image is unaffected by the race, keeping verification
deterministic, while the annotation cost (WB/INV per racy access) is paid
exactly as the paper prescribes.

Verification re-renders the image sequentially.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

_QUEUE_LOCK = 2
#: Scene record: (cx, cy, r, shade) per sphere.
_SPHERE_WORDS = 4


def _trace_pixel(px: float, py: float, spheres: list[tuple]) -> float:
    """Nearest-sphere shading for an orthographic ray through (px, py)."""
    best_d = math.inf
    shade = 0.0
    for cx, cy, r, s in spheres:
        dx = px - cx
        dy = py - cy
        d2 = dx * dx + dy * dy
        if d2 <= r * r:
            depth = d2 / (r * r)
            if depth < best_d:
                best_d = depth
                shade = s * (1.0 - depth)
    return shade


@register_model_one
class Raytrace(ModelOneWorkload):
    """Job-queue ray caster with fine-grain critical sections."""

    name = "raytrace"
    main_patterns = (Pattern.CRITICAL,)
    other_patterns = (Pattern.BARRIER, Pattern.DATA_RACE)

    def __init__(
        self,
        scale: float = 1.0,
        width: int | None = None,
        height: int | None = None,
        n_spheres: int = 8,
        pixels_per_tile: int = 16,
    ) -> None:
        super().__init__(scale)
        self.width = width if width is not None else max(16, round(64 * scale))
        self.height = height if height is not None else max(8, round(32 * scale))
        self.n_spheres = n_spheres
        self.pixels_per_tile = pixels_per_tile
        rng = make_rng("raytrace")
        self.spheres = [
            (
                float(rng.random() * self.width),
                float(rng.random() * self.height),
                float(1.0 + rng.random() * 4.0),
                float(0.2 + rng.random() * 0.8),
            )
            for _ in range(n_spheres)
        ]

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    @property
    def n_tiles(self) -> int:
        return -(-self.n_pixels // self.pixels_per_tile)

    def prepare(self, machine: Machine) -> None:
        self.scene = machine.array("ray_scene", self.n_spheres * _SPHERE_WORDS)
        self.image = machine.array("ray_image", self.n_pixels)
        self.queue = machine.array("ray_queue", 1)
        self.progress = machine.array("ray_progress", machine.num_threads)
        mem = machine.hier.memory
        for s, sph in enumerate(self.spheres):
            for w, v in enumerate(sph):
                mem.write_word(self.scene.addr(s * _SPHERE_WORDS + w) // 4, v)
        #: Every pixel reads the whole read-only scene in the same order —
        #: one shared address tuple serves every ReadBatch.
        self._scene_addrs = tuple(
            self.scene.addr(k) for k in range(self.n_spheres * _SPHERE_WORDS)
        )
        machine.spawn_all(self._program)

    def _program(self, ctx):
        t = ctx.tid
        image, queue = self.image, self.queue
        yield from ctx.barrier()
        tiles_done = 0
        while True:
            # Fine-grain job dequeue (no OCC: tiles are independent; the
            # scene is read-only and the image slices are disjoint).
            yield from ctx.lock_acquire(_QUEUE_LOCK, occ=False)
            tile = yield isa.Read(queue.addr(0))
            yield isa.Write(queue.addr(0), tile + 1)
            yield from ctx.lock_release(_QUEUE_LOCK, occ=False)
            if tile >= self.n_tiles:
                break
            lo = tile * self.pixels_per_tile
            hi = min(lo + self.pixels_per_tile, self.n_pixels)
            scene_addrs = self._scene_addrs
            for p in range(lo, hi):
                px = float(p % self.width) + 0.5
                py = float(p // self.width) + 0.5
                flat = yield isa.ReadBatch(scene_addrs)
                spheres = [
                    tuple(flat[k : k + _SPHERE_WORDS])
                    for k in range(0, len(flat), _SPHERE_WORDS)
                ]
                shade = _trace_pixel(px, py, spheres)
                yield isa.Compute(4 * self.n_spheres)
                yield isa.Write(image.addr(p), shade)
            tiles_done += 1
            # Benign data race: publish progress; peek at a neighbor's.
            yield from ctx.racy_store(self.progress.addr(t), tiles_done)
            if tiles_done % 4 == 0:
                peer = (t + 1) % ctx.nthreads
                _ = yield from ctx.racy_load(self.progress.addr(peer))
        yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        want = np.empty(self.n_pixels)
        for p in range(self.n_pixels):
            px = float(p % self.width) + 0.5
            py = float(p // self.width) + 0.5
            want[p] = _trace_pixel(px, py, self.spheres)
        got = np.array(
            [machine.read_word(self.image.addr(p)) for p in range(self.n_pixels)]
        )
        assert np.allclose(got, want, rtol=1e-12, atol=1e-12), "Raytrace mismatch"
        # The racy progress counters must each hold that thread's own final
        # tile count (last write wins; each cell has a single writer).
        total = sum(
            machine.read_word(self.progress.addr(t))
            for t in range(machine.num_threads)
        )
        assert total == self.n_tiles, f"progress total {total} != {self.n_tiles}"
