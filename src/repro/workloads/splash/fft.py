"""SPLASH-2 FFT (Table I: barrier).

A scaled 1-D radix-2 Cooley-Tukey FFT over a shared complex array: a
bit-reversal permutation epoch, then ``log2(N)`` butterfly stages, each
separated by a global barrier.  Butterflies are block-distributed; early
stages pair elements across thread chunks (the all-to-all communication of
the SPLASH transpose steps), later stages become thread-local.

All inter-thread communication is barrier-ordered — the canonical Figure 4a
pattern.  Annotations are the barrier defaults (WB ALL / INV ALL).
Verification compares against ``numpy.fft.fft``.
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one


def bit_reverse(i: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


@register_model_one
class FFT(ModelOneWorkload):
    """Radix-2 FFT with barrier-separated stages."""

    name = "fft"
    main_patterns = (Pattern.BARRIER,)
    other_patterns = ()

    def __init__(self, scale: float = 1.0, n: int | None = None) -> None:
        super().__init__(scale)
        # Default 4K points: the src+work arrays together exceed the 32 KB
        # L1, so HCC also misses — matching the paper's 64K-point runs where
        # INV ALL costs little extra (the data does not fit in L1 anyway).
        self.n = n if n is not None else max(64, 1 << round(12 * scale))
        if self.n & (self.n - 1):
            raise ConfigError("FFT size must be a power of two")
        self.bits = self.n.bit_length() - 1
        rng = make_rng("fft")
        self.input = (rng.random(self.n) + 1j * rng.random(self.n)).tolist()
        # Hoisted per-element tables: the bit-reversal permutation and the
        # per-stage twiddle factors depend only on ``n``, so computing them
        # once here (instead of per butterfly) keeps the generators lean.
        # The twiddle values are the exact ``cmath.exp`` results the inner
        # loop used to compute, so written values are bitwise unchanged.
        self.rev = [bit_reverse(i, self.bits) for i in range(self.n)]
        self.twiddle = [
            [cmath.exp(-2j * cmath.pi * j / (2 << s)) for j in range(1 << s)]
            for s in range(self.bits)
        ]

    def prepare(self, machine: Machine) -> None:
        if self.n % (2 * machine.num_threads):
            raise ConfigError(
                f"FFT size {self.n} must divide evenly over "
                f"{machine.num_threads} threads"
            )
        self.src = machine.array("fft_src", self.n)
        self.work = machine.array("fft_work", self.n)
        mem = machine.hier.memory
        for i, v in enumerate(self.input):
            mem.write_word(self.src.addr(i) // 4, v)
        machine.spawn_all(self._program)

    def _program(self, ctx):
        n, bits = self.n, self.bits
        t, nt = ctx.tid, ctx.nthreads
        chunk = n // nt
        lo, hi = t * chunk, (t + 1) * chunk
        src_addr, work_addr = self.src.addr, self.work.addr
        waddrs = [work_addr(i) for i in range(n)]

        # Epoch 0: bit-reversal permutation into the work array.  Each
        # thread writes its chunk of the destination, reading scattered
        # source elements (no producer yet: input preloaded in memory).
        # The whole permutation is one CopyBatch: the per-element
        # read-source/write-destination interleaving is its definition.
        rev = self.rev
        yield isa.CopyBatch(
            tuple(src_addr(rev[i]) for i in range(lo, hi)),
            tuple(waddrs[lo:hi]),
        )
        yield from ctx.barrier()

        # Butterfly stages.  Stage s pairs elements 2**s apart; each thread
        # owns the butterflies whose pair-group base falls in its chunk.
        for s in range(bits):
            half = 1 << s
            span = half << 1
            twiddle = self.twiddle[s]
            # Iterate over this thread's share of butterflies.
            total_butterflies = n // 2
            bchunk = total_butterflies // nt
            for b in range(t * bchunk, (t + 1) * bchunk):
                group = b // half
                j = b % half
                idx_a = group * span + j
                ab = (waddrs[idx_a], waddrs[idx_a + half])
                va, vb = yield isa.ReadBatch(ab)
                vb = vb * twiddle[j]
                yield isa.WriteBatch(ab, (va + vb, va - vb))
                yield isa.Compute(8)  # twiddle multiply FLOPs
            yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        got = np.array(machine.read_array(self.work), dtype=complex)
        want = np.fft.fft(np.array(self.input, dtype=complex))
        assert np.allclose(got, want, rtol=1e-9, atol=1e-9), (
            f"FFT mismatch: max err {np.max(np.abs(got - want))}"
        )
