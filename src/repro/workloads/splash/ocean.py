"""SPLASH-2 Ocean (Table I: barrier + critical), both layouts.

A red-black Gauss-Seidel relaxation over a 2-D grid — the computational
heart of Ocean's multigrid solver — with rows block-distributed across
threads.  Each iteration:

1. red sweep (cells with even parity), barrier,
2. black sweep (odd parity), barrier,
3. a global error accumulation in a critical section (Ocean's
   ``psiai``-style global sums), barrier.

The **contiguous** variant pads grid rows to cache lines (SPLASH's 4-D
array layout); the **non-contiguous** variant packs them (the 2-D layout
with false sharing at partition boundaries).

Verification compares against a sequential red-black sweep of the same
grid, including the accumulated error scalar.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.workloads.base import ModelOneWorkload, Pattern, register_model_one

_ERR_LOCK = 7


class _OceanBase(ModelOneWorkload):
    main_patterns = (Pattern.BARRIER, Pattern.CRITICAL)
    other_patterns = ()
    pad_rows = True

    def __init__(
        self,
        scale: float = 1.0,
        rows: int | None = None,
        cols: int = 36,  # not a multiple of 16 words: packed rows share lines
        iters: int = 2,
    ) -> None:
        super().__init__(scale)
        self.rows = rows if rows is not None else max(18, round(34 * scale))
        self.cols = cols
        self.iters = iters
        rng = make_rng("ocean")
        self.input = rng.random((self.rows, self.cols))

    def prepare(self, machine: Machine) -> None:
        self.grid = machine.array(
            f"ocean_grid_{self.name}",
            (self.rows, self.cols),
            pad_rows=self.pad_rows,
        )
        self.err = machine.array(f"ocean_err_{self.name}", 1)
        mem = machine.hier.memory
        for i in range(self.rows):
            for j in range(self.cols):
                mem.write_word(self.grid.addr(i, j) // 4, float(self.input[i, j]))
        #: Cell-address table for assembling per-cell stencil ReadBatches.
        self._G = [
            [self.grid.addr(i, j) for j in range(self.cols)]
            for i in range(self.rows)
        ]
        machine.spawn_all(self._program)

    def _row_range(self, t: int, nt: int) -> tuple[int, int]:
        """Interior rows [lo, hi) handled by thread t (block distribution)."""
        interior = self.rows - 2
        base, extra = divmod(interior, nt)
        lo = 1 + t * base + min(t, extra)
        hi = lo + base + (1 if t < extra else 0)
        return lo, hi

    def _sweep(self, t, nt, parity):
        G = self._G
        lo, hi = self._row_range(t, nt)
        local_err = 0.0
        for i in range(lo, hi):
            up, row, dn = G[i - 1], G[i], G[i + 1]
            # One ReadBatch per stencil, addresses in the scalar read
            # order N, S, W, E, C.
            for j in range(2 - (i + parity) % 2, self.cols - 1, 2):
                n, s, w, e, c = yield isa.ReadBatch(
                    (up[j], dn[j], row[j - 1], row[j + 1], row[j])
                )
                new = 0.25 * (n + s + w + e)
                local_err += abs(new - c)
                yield isa.Write(row[j], new)
            yield isa.Compute(self.cols)
        return local_err

    def _program(self, ctx):
        t, nt = ctx.tid, ctx.nthreads
        err_addr = self.err.addr(0)
        for _ in range(self.iters):
            red_err = yield from self._sweep(t, nt, 0)
            yield from ctx.barrier()
            black_err = yield from self._sweep(t, nt, 1)
            yield from ctx.barrier()
            # Global error sum in a critical section (no OCC: all data
            # communicated through the error cell itself).
            yield from ctx.lock_acquire(_ERR_LOCK, occ=False)
            cur = yield isa.Read(err_addr)
            yield isa.Write(err_addr, cur + red_err + black_err)
            yield from ctx.lock_release(_ERR_LOCK, occ=False)
            yield from ctx.barrier()

    def verify(self, machine: Machine) -> None:
        want = self.input.astype(float).copy()
        want_err = 0.0
        for _ in range(self.iters):
            for parity in (0, 1):
                for i in range(1, self.rows - 1):
                    for j in range(1, self.cols - 1):
                        if (i + j) % 2 != parity:
                            continue
                        new = 0.25 * (
                            want[i - 1, j]
                            + want[i + 1, j]
                            + want[i, j - 1]
                            + want[i, j + 1]
                        )
                        want_err += abs(new - want[i, j])
                        want[i, j] = new
        got = np.empty((self.rows, self.cols))
        for i in range(self.rows):
            for j in range(self.cols):
                got[i, j] = machine.read_word(self.grid.addr(i, j))
        assert np.allclose(got, want, rtol=1e-9, atol=1e-9), (
            f"Ocean grid mismatch: max err {np.max(np.abs(got - want))}"
        )
        got_err = machine.read_word(self.err.addr(0))
        assert abs(got_err - want_err) <= 1e-6 * max(1.0, abs(want_err)), (
            f"Ocean error-sum mismatch: {got_err} vs {want_err}"
        )


@register_model_one
class OceanContiguous(_OceanBase):
    """Ocean with line-padded rows (the "contiguous partitions" layout)."""

    name = "ocean_cont"
    pad_rows = True


@register_model_one
class OceanNonContiguous(_OceanBase):
    """Ocean with packed rows (false sharing at partition boundaries)."""

    name = "ocean_noncont"
    pad_rows = False
