"""Trace-driven replay: turn a recorded JSONL trace back into a workload.

Any run recorded with ``--trace`` (or an external trace conforming to
:mod:`repro.obs.schema`) becomes a first-class workload: the replay
frontend reconstructs each core's program-order operation stream from its
events and re-executes it on a fresh machine.  Because the simulator is
deterministic and the reconstructed streams are exactly the recorded ones,
replay carries a round-trip guarantee::

    record -> replay -> re-record   is bit-identical

(events and final :class:`~repro.sim.stats.MachineStats` alike), verified
by ``tests/workloads/test_replay.py`` over the full litmus registry.

What replays and what doesn't:

* ``read``/``write``/``compute``/``wb``/``inv``/``epoch``/``sync`` events
  carrying CPU mnemonics are program operations — they are rebuilt into
  :mod:`repro.isa.ops` instances (writes use the recorded ``val``; an
  object-valued store that could not be serialized replays as a store of
  ``None``, which the tracer omits again — the round-trip stays
  bit-identical even though the object value itself is unrecoverable).
* hardware-initiated events (``fill``/``evict``/``fault``, MESI directory
  ``DIR_FWD``/``DIR_INV`` messages, sync-controller ``*_grant`` messages)
  are simulator *outputs*; replay skips them and the re-run regenerates
  them.

Batch macro-ops decompose into their defining per-word scalar sequence at
record time, so a replayed program is the scalar expansion of the original
— bit-identical by the macro-op contract (:mod:`repro.isa.ops`).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.common.errors import ConfigError
from repro.core.config import ExperimentConfig
from repro.core.machine import Machine
from repro.isa import ops as isa
from repro.obs.schema import TraceSchemaError, validate_event

#: Sync-event mnemonics the CPU emits (controller grants are skipped).
_SYNC_MNEMONICS = frozenset(
    ("barrier", "lock_acquire", "lock_release", "flag_set", "flag_wait")
)

#: WB/INV/epoch mnemonics that reconstruct to an instruction; anything
#: else under those kinds (e.g. MESI ``DIR_INV``) is hardware-initiated.
_WBINV_MNEMONICS = frozenset(
    (
        "WB", "WB_ALL", "WB_CONS", "WB_CONS_ALL", "WB_L3", "WB_ALL_L3",
        "INV", "INV_ALL", "INV_PROD", "INV_PROD_ALL", "INV_L2", "INV_ALL_L2",
        "epoch_begin", "epoch_end",
    )
)


def load_events(path) -> list[dict]:
    """Load and schema-validate a JSONL trace file; return its events."""
    events: list[dict] = []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                ev = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: bad JSON: {exc}") from None
            try:
                validate_event(ev)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from None
            events.append(ev)
    return events


def op_from_event(ev: dict) -> isa.Op | None:
    """Reconstruct the ISA operation a trace event records, or ``None``.

    ``None`` means the event is hardware-initiated (fills, evictions,
    faults, directory messages, sync grants) and carries no program
    operation to replay.
    """
    kind = ev["kind"]
    if kind == "read":
        return isa.Read(ev["addr"])
    if kind == "write":
        # A write event with no recorded `val` stored an object value the
        # tracer could not serialize; replay it as a store of None so the
        # re-record also omits `val` (preserving the bit-identical
        # round-trip).  Such replays keep the trace contract, not the
        # original run's memory values.
        return isa.Write(ev["addr"], ev.get("val"))
    if kind == "compute":
        return isa.Compute(ev.get("lat", 0))
    if kind == "sync":
        mnem = ev.get("op")
        if mnem not in _SYNC_MNEMONICS:
            return None
        arg = ev.get("arg", 0)
        if mnem == "barrier":
            return isa.Barrier(arg, ev.get("n", 1))
        if mnem == "lock_acquire":
            return isa.LockAcquire(arg)
        if mnem == "lock_release":
            return isa.LockRelease(arg)
        if mnem == "flag_set":
            return isa.FlagSet(arg, ev.get("n", 1))
        return isa.FlagWait(arg, ev.get("n", 1))
    if kind in ("wb", "inv", "epoch"):
        mnem = ev.get("op")
        if mnem not in _WBINV_MNEMONICS:
            return None
        addr = ev.get("addr", 0)
        n = ev.get("n", 4)
        arg = ev.get("arg", 0)
        if mnem == "WB":
            return isa.WB(addr, n)
        if mnem == "WB_ALL":
            return isa.WBAll(via_meb=bool(arg))
        if mnem == "WB_CONS":
            return isa.WBCons(addr, n, arg)
        if mnem == "WB_CONS_ALL":
            return isa.WBConsAll(arg)
        if mnem == "WB_L3":
            return isa.WBL3(addr, n)
        if mnem == "WB_ALL_L3":
            return isa.WBAllL3()
        if mnem == "INV":
            return isa.INV(addr, n)
        if mnem == "INV_ALL":
            return isa.INVAll()
        if mnem == "INV_PROD":
            return isa.InvProd(addr, n, arg)
        if mnem == "INV_PROD_ALL":
            return isa.InvProdAll(arg)
        if mnem == "INV_L2":
            return isa.INVL2(addr, n)
        if mnem == "INV_ALL_L2":
            return isa.INVAllL2()
        if mnem == "epoch_begin":
            return isa.EpochBegin(bool(arg & 1), bool(arg >> 1 & 1), kind="replay")
        return isa.EpochEnd()
    return None  # fill / evict / fault: simulator-regenerated


def programs_by_core(events: Iterable[dict]) -> dict[int, list[isa.Op]]:
    """Per-core program-order operation lists reconstructed from *events*.

    Per-core emission order *is* program order (each in-order core records
    its own operations as it retires them), so a stable partition by the
    ``core`` field recovers every thread's instruction stream.
    """
    streams: dict[int, list[isa.Op]] = {}
    for ev in events:
        op = op_from_event(ev)
        if op is not None:
            streams.setdefault(ev["core"], []).append(op)
    return streams


def replay_program(stream: list[isa.Op]):
    """A Machine-spawnable program that yields *stream* verbatim."""

    def program(ctx) -> Any:
        for op in stream:
            yield op

    return program


def infer_num_threads(streams: dict[int, list[isa.Op]]) -> int:
    """Thread count implied by the populated cores (identity placement)."""
    if not streams:
        raise ConfigError("trace contains no replayable program operations")
    return max(streams) + 1


def spawn_replay(machine: Machine, events: Iterable[dict]) -> None:
    """Spawn one replay thread per machine thread from *events*.

    Thread *tid* replays the stream of the core the machine's placement
    assigns it to (cores with no recorded operations get an empty
    program).  Raises :class:`ConfigError` if the trace touches a core the
    placement does not cover — the replay machine must match the recording
    geometry.
    """
    streams = programs_by_core(events)
    placed = set()
    for tid in range(machine.num_threads):
        core = machine.placement.core_of(tid)
        placed.add(core)
        machine.spawn(replay_program(streams.get(core, [])))
    stranded = sorted(set(streams) - placed)
    if stranded:
        raise ConfigError(
            f"trace has operations on unplaced core(s) {stranded}; "
            f"replay machine covers cores {sorted(placed)}"
        )


def run_replay(
    events,
    config: ExperimentConfig,
    *,
    machine_params,
    num_threads: int | None = None,
    placement=None,
    tracer=None,
    metrics=None,
    memory_digest: bool = False,
    engine: str | None = None,
    app: str = "replay",
):
    """Replay *events* (a list or a JSONL path) as one verified-style run.

    Mirrors :func:`repro.eval.runner.run_litmus`: builds the machine,
    spawns the reconstructed per-core streams, runs to completion, and
    returns a :class:`~repro.eval.runner.RunResult`.  ``num_threads``
    defaults to the populated-core count (identity placement).
    """
    from repro.eval.runner import RunResult
    from repro.mem.memory import image_digest

    if not isinstance(events, list):
        events = load_events(events)
    if num_threads is None:
        num_threads = infer_num_threads(programs_by_core(events))
    machine = Machine(
        machine_params, config, num_threads=num_threads, placement=placement,
        tracer=tracer, metrics=metrics, engine=engine,
    )
    spawn_replay(machine, events)
    stats = machine.run()
    return RunResult(
        app,
        config.name,
        stats,
        metrics.snapshot() if metrics is not None else None,
        None,
        image_digest(machine.hier.memory.image()) if memory_digest else None,
    )
