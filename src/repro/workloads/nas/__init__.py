"""NAS-style Model-2 workloads (EP, IS, CG) plus 2D Jacobi."""

from repro.workloads.nas.cg import CG, build_cg
from repro.workloads.nas.ep import EP, build_ep
from repro.workloads.nas.is_ import IS, build_is
from repro.workloads.nas.jacobi import Jacobi, build_jacobi

__all__ = ["CG", "EP", "IS", "Jacobi", "build_cg", "build_ep", "build_is", "build_jacobi"]
