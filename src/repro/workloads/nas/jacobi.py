"""2D Jacobi relaxation (the paper's hand-written inter-block application).

A 5-point stencil over a ``rows × cols`` grid flattened row-major, with rows
block-distributed across threads.  Each outer iteration computes
``B = stencil(A)``, reduces the residual ``Σ|B-A|`` (the global component:
an unordered reduction), then copies ``B`` back into ``A``.

Communication structure (what Figure 11 measures): the copy loop's chunk
boundary rows feed the *neighboring* threads' stencil reads next iteration —
a textbook producer→consumer pair that level-adaptive WB_CONS/INV_PROD keep
inside a block whenever the neighboring threads share one, while the
residual reduction always goes global.

The grid is periodic in the column direction (the flattened ``c±1`` reads
wrap across row edges); this keeps the IR affine while preserving the
neighbor-exchange communication pattern of 2D Jacobi.
"""

from __future__ import annotations

from typing import Any

from repro.common.rng import make_rng
from repro.compiler import ir
from repro.workloads.base import ModelTwoWorkload, register_model_two


def build_jacobi(
    rows: int = 34, cols: int = 32, iters: int = 4, seed: int | None = None
) -> tuple[ir.IRProgram, dict[str, list[Any]]]:
    """Construct the Jacobi IR program and its preloaded initial grid."""
    size = rows * cols
    interior = (rows - 2) * cols

    stencil = ir.ParallelFor(
        name="stencil",
        length=interior,
        body=(
            ir.Assign(
                lhs=ir.Ref("B", ir.Affine(1, cols)),
                rhs=(
                    ir.Ref("A", ir.Affine(1, 0)),  # north (c - cols)
                    ir.Ref("A", ir.Affine(1, 2 * cols)),  # south (c + cols)
                    ir.Ref("A", ir.Affine(1, cols - 1)),  # west
                    ir.Ref("A", ir.Affine(1, cols + 1)),  # east
                ),
                fn=lambda i, n, s, w, e: 0.25 * (n + s + w + e),
            ),
        ),
    )

    residual = ir.ReduceStmt(
        name="residual",
        inputs=(ir.RangeRef("A", cols, (rows - 1) * cols),),
        result="res",
        width=1,
        partial_fn=lambda tid, n, env: [sum(abs(a) for a in env["A"])],
        combine_fn=lambda cur, part: [cur[0] + part[0]],
        identity=(0.0,),
    )

    check = ir.SerialStmt(
        name="check",
        reads=(ir.RangeRef("res", 0, 1),),
        writes=(ir.RangeRef("conv", 0, 1),),
        fn=lambda env: {"conv": [1.0 if env["res"][0] < 1e-12 else 0.0]},
    )

    copy = ir.ParallelFor(
        name="copy",
        length=interior,
        body=(
            ir.Assign(
                lhs=ir.Ref("A", ir.Affine(1, cols)),
                rhs=(ir.Ref("B", ir.Affine(1, cols)),),
                fn=lambda i, b: b,
            ),
        ),
    )

    program = ir.IRProgram(
        name="jacobi",
        arrays={"A": size, "B": size, "res": 2, "conv": 1},
        stmts=(
            ir.Loop(iters, (stencil, copy)),
            # Convergence check once after the sweep loop: the residual
            # reduction is the unordered-global component; inside the time
            # loop it would serialize all threads through one critical
            # section every iteration, which the paper's Jacobi does not do.
            residual,
            check,
        ),
    )

    rng = make_rng("jacobi", seed if seed is not None else 0)
    grid = rng.random(size).tolist()
    return program, {"A": grid}


@register_model_two
class Jacobi(ModelTwoWorkload):
    """2D Jacobi with residual reduction (Section VI)."""

    name = "jacobi"
    verify_arrays = ("A", "res", "conv")

    def build(self):
        # Eight interior rows per thread at 32 threads: most rows are
        # thread-local; only chunk-boundary rows communicate with the
        # neighbor, and the residual reduction is the global component.
        rows = max(10, round(258 * self.scale))
        iters = max(2, round(4 * self.scale))
        return build_jacobi(rows=rows, cols=32, iters=iters)
