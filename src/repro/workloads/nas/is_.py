"""NAS IS (Integer Sort) kernel: counting sort by key histogramming.

Per ranking iteration: (1) an unordered *reduction* builds the global key
histogram — the dominant communication, unlocalizable by level-adaptive
instructions; (2) a serial section computes the exclusive prefix sum;
(3) a parallel ranking loop reads ``cum[key[i]]`` — an *indirect* read whose
producer is the serial section, resolved by the inspector (writer is always
thread 0).

The module name carries a trailing underscore because ``is`` is a Python
keyword.
"""

from __future__ import annotations

from typing import Any

from repro.common.rng import make_rng
from repro.compiler import ir
from repro.workloads.base import ModelTwoWorkload, register_model_two


def _hist_partial(buckets: int):
    def fn(tid: int, n: int, env: dict[str, list[Any]]) -> list[Any]:
        counts = [0] * buckets
        for k in env["keys"]:
            counts[int(k)] += 1
        return counts

    return fn


def _vec_add(cur: list[Any], part: list[Any]) -> list[Any]:
    return [c + p for c, p in zip(cur, part)]


def _prefix(env: dict[str, list[Any]]) -> dict[str, list[Any]]:
    hist = env["hist"]
    cum = []
    total = 0
    for h in hist:
        cum.append(total)
        total += int(h)
    return {"cum": cum}


def build_is(
    nkeys: int = 8192, buckets: int = 16, iters: int = 2, seed: int | None = None
) -> tuple[ir.IRProgram, dict[str, list[Any]]]:
    hist = ir.ReduceStmt(
        name="is_hist",
        inputs=(ir.RangeRef("keys", 0, nkeys),),
        result="hist",
        width=buckets,
        partial_fn=_hist_partial(buckets),
        combine_fn=_vec_add,
        identity=tuple([0] * buckets),
    )
    prefix = ir.SerialStmt(
        name="is_prefix",
        reads=(ir.RangeRef("hist", 0, buckets),),
        writes=(ir.RangeRef("cum", 0, buckets),),
        fn=_prefix,
    )
    rank = ir.ParallelFor(
        name="is_rank",
        length=nkeys,
        body=(
            ir.Assign(
                lhs=ir.Ref("rank", ir.Affine()),
                rhs=(ir.Ref("cum", ir.Indirect("keys")),),
                fn=lambda i, c: c,
            ),
        ),
    )
    program = ir.IRProgram(
        name="is",
        arrays={
            "keys": nkeys,
            "hist": buckets + 1,
            "cum": buckets,
            "rank": nkeys,
        },
        stmts=(ir.Loop(iters, (hist, prefix, rank)),),
    )
    rng = make_rng("is", seed if seed is not None else 0)
    keys = rng.integers(0, buckets, size=nkeys).tolist()
    return program, {"keys": keys}


@register_model_two
class IS(ModelTwoWorkload):
    """NAS IS: reduction-dominated counting sort."""

    name = "is"
    verify_arrays = ("hist", "cum", "rank")

    def build(self):
        nkeys = max(256, round(8192 * self.scale))
        return build_is(nkeys=nkeys)
