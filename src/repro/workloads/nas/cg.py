"""NAS CG kernel: conjugate-gradient iterations with an ELL sparse matrix.

The paper uses CG as its irregular Model-2 application (Figure 8): the
sparse matrix-vector product reads ``p[colidx[...]]`` through an index array
whose contents are only known at run time but *stable across iterations*, so
an inspector gathers the producer of each element read and the executor
issues ``INV_PROD`` only for remote-produced elements.

The matrix is stored in ELLPACK form — exactly ``K`` nonzeros per row — so
the loop nest stays in the analyzable affine subset (``colidx[K*i + k]``).
Column indices are drawn uniformly at random: for a reader thread, a
conflicting producer is uniform over the other ``n-1`` threads, of which
``n - cores_per_block`` sit in other blocks — giving the ≈78% global-INV
residue the paper reports for CG (Figure 11).

One CG step per outer iteration:

1. ``q = A·p``                         (parallel, irregular reads of ``p``)
2. ``pq = p·q``, ``rho = r·r``         (reductions)
3. ``alpha = rho/pq``                  (serial)
4. ``x += alpha·p``; ``r -= alpha·q``  (parallel)
5. ``rho_new = r·r``                   (reduction)
6. ``beta = rho_new/rho``              (serial)
7. ``p = r + beta·p``                  (parallel — the producer the
   inspector resolves for step 1 of the next iteration)
"""

from __future__ import annotations

from typing import Any

from repro.common.rng import make_rng
from repro.compiler import ir
from repro.workloads.base import ModelTwoWorkload, register_model_two


def _dot_partial(a: str, b: str):
    def fn(tid: int, n: int, env: dict[str, list[Any]]) -> list[Any]:
        return [sum(x * y for x, y in zip(env[a], env[b]))]

    return fn


def _scalar_add(cur: list[Any], part: list[Any]) -> list[Any]:
    return [cur[0] + part[0]]


def build_cg(
    n: int = 128, k: int = 8, iters: int = 3, seed: int | None = None
) -> tuple[ir.IRProgram, dict[str, list[Any]]]:
    """Construct the CG IR program plus preloaded matrix and vectors."""
    nnz = n * k

    def spmv_fn(i: int, *vals: Any) -> Any:
        # vals alternate (aval, p) per nonzero.
        acc = 0.0
        for j in range(0, 2 * k, 2):
            acc += vals[j] * vals[j + 1]
        return acc

    spmv_rhs = []
    for kk in range(k):
        spmv_rhs.append(ir.Ref("aval", ir.Affine(k, kk)))
        spmv_rhs.append(ir.Ref("p", ir.Indirect("colidx", offset=kk, coeff=k)))

    spmv = ir.ParallelFor(
        name="spmv",
        length=n,
        body=(
            ir.Assign(lhs=ir.Ref("q", ir.Affine()), rhs=tuple(spmv_rhs), fn=spmv_fn),
        ),
    )

    dot_pq = ir.ReduceStmt(
        name="dot_pq",
        inputs=(ir.RangeRef("p", 0, n), ir.RangeRef("q", 0, n)),
        result="pq",
        width=1,
        partial_fn=_dot_partial("p", "q"),
        combine_fn=_scalar_add,
        identity=(0.0,),
    )

    dot_rho = ir.ReduceStmt(
        name="dot_rho",
        inputs=(ir.RangeRef("r", 0, n),),
        result="rho",
        width=1,
        partial_fn=_dot_partial("r", "r"),
        combine_fn=_scalar_add,
        identity=(0.0,),
    )

    def alpha_fn(env: dict[str, list[Any]]) -> dict[str, list[Any]]:
        rho = env["rho"][0]
        pq = env["pq"][0]
        alpha = rho / pq if pq != 0.0 else 0.0
        # coef = [alpha, beta, rho_old]; beta filled by the later stage.
        return {"coef": [alpha, 0.0, rho]}

    scalars1 = ir.SerialStmt(
        name="alpha",
        reads=(ir.RangeRef("rho", 0, 1), ir.RangeRef("pq", 0, 1)),
        writes=(ir.RangeRef("coef", 0, 3),),
        fn=alpha_fn,
    )

    update_xr = ir.ParallelFor(
        name="update_xr",
        length=n,
        body=(
            ir.Assign(
                lhs=ir.Ref("x", ir.Affine()),
                rhs=(
                    ir.Ref("x", ir.Affine()),
                    ir.Ref("coef", ir.Fixed(0)),
                    ir.Ref("p", ir.Affine()),
                ),
                fn=lambda i, x, a, p: x + a * p,
            ),
            ir.Assign(
                lhs=ir.Ref("r", ir.Affine()),
                rhs=(
                    ir.Ref("r", ir.Affine()),
                    ir.Ref("coef", ir.Fixed(0)),
                    ir.Ref("q", ir.Affine()),
                ),
                fn=lambda i, r, a, q: r - a * q,
            ),
        ),
    )

    dot_rho_new = ir.ReduceStmt(
        name="dot_rho_new",
        inputs=(ir.RangeRef("r", 0, n),),
        result="rho_new",
        width=1,
        partial_fn=_dot_partial("r", "r"),
        combine_fn=_scalar_add,
        identity=(0.0,),
    )

    def beta_fn(env: dict[str, list[Any]]) -> dict[str, list[Any]]:
        rho_old = env["coef"][2]
        rho_new = env["rho_new"][0]
        beta = rho_new / rho_old if rho_old != 0.0 else 0.0
        return {"coef": [env["coef"][0], beta, rho_new]}

    scalars2 = ir.SerialStmt(
        name="beta",
        reads=(ir.RangeRef("rho_new", 0, 1), ir.RangeRef("coef", 0, 3)),
        writes=(ir.RangeRef("coef", 0, 3),),
        fn=beta_fn,
    )

    update_p = ir.ParallelFor(
        name="update_p",
        length=n,
        body=(
            ir.Assign(
                lhs=ir.Ref("p", ir.Affine()),
                rhs=(
                    ir.Ref("r", ir.Affine()),
                    ir.Ref("coef", ir.Fixed(1)),
                    ir.Ref("p", ir.Affine()),
                ),
                fn=lambda i, r, b, p: r + b * p,
            ),
        ),
    )

    program = ir.IRProgram(
        name="cg",
        arrays={
            "aval": nnz,
            "colidx": nnz,
            "p": n,
            "q": n,
            "r": n,
            "x": n,
            "coef": 3,
            "pq": 2,
            "rho": 2,
            "rho_new": 2,
        },
        stmts=(
            ir.Loop(
                iters,
                (
                    spmv,
                    dot_pq,
                    dot_rho,
                    scalars1,
                    update_xr,
                    dot_rho_new,
                    scalars2,
                    update_p,
                ),
            ),
        ),
    )

    rng = make_rng("cg", seed if seed is not None else 0)
    colidx = rng.integers(0, n, size=nnz).tolist()
    aval = (rng.random(nnz) * 0.1).tolist()
    b = rng.random(n).tolist()
    # Initial state: x = 0, r = b, p = r.
    return program, {
        "aval": aval,
        "colidx": colidx,
        "r": list(b),
        "p": list(b),
    }


@register_model_two
class CG(ModelTwoWorkload):
    """NAS CG: irregular inspector-executor workload."""

    name = "cg"
    verify_arrays = ("x", "r", "p", "q")
    rel_tol = 1e-5

    def build(self):
        n = max(32, round(128 * self.scale))
        return build_cg(n=n)
