"""NAS EP (Embarrassingly Parallel) kernel.

Generates Gaussian deviate pairs by the Marsaglia polar method from a
preloaded table of uniforms, tallies them into ten concentric square annuli,
and accumulates the deviate sums ``(sx, sy)``.  All cross-thread
communication is one unordered reduction — the canonical case where the
compiler cannot determine producer-consumer pairs, so level-adaptive WB/INV
cannot help (Figure 11: EP's global-op count is unchanged by Addr+L).
"""

from __future__ import annotations

import math
from typing import Any

from repro.common.rng import make_rng
from repro.compiler import ir
from repro.workloads.base import ModelTwoWorkload, register_model_two

#: Annulus bins (NAS EP tallies |max(x,y)| into 10 unit rings).
NUM_BINS = 10
#: Reduction width: 10 bin counts + sx + sy.
WIDTH = NUM_BINS + 2


def _tally(tid: int, n: int, env: dict[str, list[Any]]) -> list[Any]:
    """Marsaglia polar method over this thread's chunk of uniforms."""
    u = env["u"]
    counts = [0] * NUM_BINS
    sx = sy = 0.0
    for k in range(0, len(u) - 1, 2):
        x = 2.0 * u[k] - 1.0
        y = 2.0 * u[k + 1] - 1.0
        t = x * x + y * y
        if 0.0 < t <= 1.0:
            f = math.sqrt(-2.0 * math.log(t) / t)
            gx = x * f
            gy = y * f
            ring = int(max(abs(gx), abs(gy)))
            if ring < NUM_BINS:
                counts[ring] += 1
            sx += gx
            sy += gy
    return [*counts, sx, sy]


def _combine(cur: list[Any], part: list[Any]) -> list[Any]:
    return [c + p for c, p in zip(cur, part)]


def build_ep(
    pairs: int = 1024, batches: int = 1, seed: int | None = None
) -> tuple[ir.IRProgram, dict[str, list[Any]]]:
    nu = 2 * pairs
    tally = ir.ReduceStmt(
        name="ep_tally",
        inputs=(ir.RangeRef("u", 0, nu),),
        result="q",
        width=WIDTH,
        partial_fn=_tally,
        combine_fn=_combine,
        identity=tuple([0] * NUM_BINS + [0.0, 0.0]),
        compute_cycles=64,
    )
    stmts: tuple[ir.Stmt, ...]
    if batches > 1:
        stmts = (ir.Loop(batches, (tally,)),)
    else:
        stmts = (tally,)
    program = ir.IRProgram(
        name="ep",
        arrays={"u": nu, "q": WIDTH + 1},
        stmts=stmts,
    )
    rng = make_rng("ep", seed if seed is not None else 0)
    return program, {"u": rng.random(nu).tolist()}


def build_ep_hier(
    pairs: int = 1024,
    batches: int = 1,
    num_blocks: int = 4,
    seed: int | None = None,
) -> tuple[ir.IRProgram, dict[str, list[Any]]]:
    """EP rewritten with a *hierarchical* reduction (paper §VII-C).

    "To exploit local communication, one could re-write the code to have
    hierarchical reductions, which reduce first inside the block and then
    globally."  Block partial slots are line-padded (16 words each).
    """
    nu = 2 * pairs
    stride = -(-(WIDTH + 1) // 16) * 16
    tally = ir.HierReduceStmt(
        name="ep_tally_hier",
        inputs=(ir.RangeRef("u", 0, nu),),
        blockpart="qblk",
        result="q",
        width=WIDTH,
        partial_fn=_tally,
        combine_fn=_combine,
        identity=tuple([0] * NUM_BINS + [0.0, 0.0]),
        compute_cycles=64,
    )
    stmts: tuple[ir.Stmt, ...]
    if batches > 1:
        stmts = (ir.Loop(batches, (tally,)),)
    else:
        stmts = (tally,)
    program = ir.IRProgram(
        name="ep_hier",
        arrays={"u": nu, "q": WIDTH + 1, "qblk": num_blocks * stride},
        stmts=stmts,
    )
    rng = make_rng("ep", seed if seed is not None else 0)
    return program, {"u": rng.random(nu).tolist()}


@register_model_two
class EP(ModelTwoWorkload):
    """NAS EP: pure reduction communication."""

    name = "ep"
    verify_arrays = ("q",)

    def build(self):
        pairs = max(64, round(1024 * self.scale))
        return build_ep(pairs=pairs, batches=2)


@register_model_two
class EPHierarchical(ModelTwoWorkload):
    """EP with the §VII-C hierarchical-reduction rewrite (ablation)."""

    name = "ep_hier"
    verify_arrays = ("q",)

    def __init__(self, scale: float = 1.0, num_blocks: int = 4) -> None:
        super().__init__(scale)
        self.num_blocks = num_blocks

    def build(self):
        pairs = max(64, round(1024 * self.scale))
        return build_ep_hier(
            pairs=pairs, batches=2, num_blocks=self.num_blocks
        )
