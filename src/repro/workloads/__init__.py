"""Workload registry: SPLASH-2 (Model 1) and NAS/Jacobi (Model 2)."""

import repro.workloads.nas  # noqa: F401 - populate MODEL_TWO registry
import repro.workloads.splash  # noqa: F401 - populate MODEL_ONE registry
from repro.workloads.base import (
    MODEL_ONE,
    MODEL_TWO,
    ModelOneWorkload,
    ModelTwoWorkload,
    Pattern,
    register_model_one,
    register_model_two,
)

__all__ = [
    "MODEL_ONE",
    "MODEL_TWO",
    "ModelOneWorkload",
    "ModelTwoWorkload",
    "Pattern",
    "register_model_one",
    "register_model_two",
]
