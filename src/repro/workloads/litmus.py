"""Litmus kernel registry: small multithreaded kernels with known outcomes.

Each kernel is a hand-written program in one of the paper's synchronization
idioms (message passing over a flag, store buffering across a barrier,
producer–consumer chains, lock-protected updates, Figure-6b annotated data
races, false sharing within one line).  They serve two harnesses:

* the **dynamic** differential harness
  (``tests/coherence/test_litmus_differential.py``) runs each kernel under
  every Table II configuration and compares observed loads + final memory
  bit-for-bit against hardware MESI;
* the **static** analyzer (``repro lint --litmus``) extracts each kernel's
  op streams and checks the Section IV-A annotation rules without running
  the cache simulator.

``determinate`` kernels are correctly synchronized and annotated: the
differential harness must pass and ``expect_rules`` is empty (or holds only
warnings).  Deliberately broken kernels (missing WB/INV) document the
failure modes: the differential harness must *diverge* on them and the
static analyzer must flag every rule in ``expect_rules`` — the
cross-validation tests assert the two harnesses agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.common.params import (
    WORD_BYTES,
    inter_block_machine,
    intra_block_machine,
)
from repro.core.config import InterMode
from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine

#: A litmus thread program: ``(ctx, arrs, obs)`` -> op generator.
LitmusProgram = Callable[..., Any]


@dataclass
class LitmusKernel:
    """One registered litmus kernel and its expected behavior.

    ``model`` selects the machine family (``"intra"`` runs on a one-block
    machine under the intra configs; ``"inter"`` on a two-block machine
    under the inter configs).  ``determinate`` means the kernel is correctly
    synchronized and annotated, so the dynamic differential harness passes;
    broken kernels must make it diverge.  ``expect_rules`` lists rule IDs
    the static analyzer must report (a subset check; empty = lint-clean).
    """

    name: str
    model: str
    threads: int
    arrays: dict[str, int]
    programs: tuple[LitmusProgram, ...]
    determinate: bool = True
    expect_rules: tuple[str, ...] = ()
    doc: str = ""
    check: Callable[[dict, dict], None] | None = None

    @property
    def lint_clean(self) -> bool:
        """True when the static analyzer should produce zero findings."""
        return not self.expect_rules


#: The registry, in definition order.
LITMUS: dict[str, LitmusKernel] = {}


def _register(kernel: LitmusKernel) -> LitmusKernel:
    LITMUS[kernel.name] = kernel
    return kernel


def spawn_litmus(
    kernel: LitmusKernel, machine: "Machine"
) -> tuple[dict, dict]:
    """Allocate the kernel's arrays and spawn all threads on *machine*.

    Returns ``(arrs, obs)``: the allocated shared arrays by name, and the
    shared dict the programs record observed values into.  The machine
    must have ``num_threads == kernel.threads``.
    """
    arrs = {
        name: machine.array(name, size)
        for name, size in kernel.arrays.items()
    }
    obs: dict = {}
    for program in kernel.programs:
        machine.spawn(lambda ctx, p=program: p(ctx, arrs, obs))
    return arrs, obs


def machine_params(kernel: LitmusKernel):
    """The machine parameters the kernel's model family runs on."""
    if kernel.model == "inter":
        return inter_block_machine(2, 2)
    return intra_block_machine(4)


# ---------------------------------------------------------------------------
# inter-block lowering helpers (mirror repro.compiler.executor)
# ---------------------------------------------------------------------------


def wb_global(ctx, addr, length, cons_tid=None):
    """Producer-side WB lowered for the inter-block machine's config."""
    mode = ctx.machine.config.inter_mode
    if mode == InterMode.BASE:
        yield isa.WBAllL3()
    elif mode == InterMode.ADDR or (
        mode == InterMode.ADDR_LEVEL and cons_tid is None
    ):
        yield isa.WBL3(addr, length)
    elif mode == InterMode.ADDR_LEVEL:
        yield isa.WBCons(addr, length, cons_tid)
    # HCC: hardware keeps the hierarchy coherent.


def inv_global(ctx, addr, length, prod_tid=None):
    """Consumer-side INV lowered for the inter-block machine's config."""
    mode = ctx.machine.config.inter_mode
    if mode == InterMode.BASE:
        yield isa.INVAllL2()
    elif mode == InterMode.ADDR or (
        mode == InterMode.ADDR_LEVEL and prod_tid is None
    ):
        yield isa.INVL2(addr, length)
    elif mode == InterMode.ADDR_LEVEL:
        yield isa.InvProd(addr, length, prod_tid)


def _idle(ctx, arrs, obs):
    """A thread that only meets the global barrier(s) it must attend."""
    yield from ctx.barrier()


# ---------------------------------------------------------------------------
# message passing
# ---------------------------------------------------------------------------


def _mp_flag_producer(ctx, arrs, obs):
    yield from ctx.store(arrs["data"].addr(0), 42)
    yield from ctx.flag_set(1)


def _mp_flag_consumer(ctx, arrs, obs):
    yield from ctx.flag_wait(1)
    obs["got"] = yield from ctx.load(arrs["data"].addr(0))


def _check_mp_flag(obs, mem):
    assert obs == {"got": 42}
    assert mem["data"] == [42]


_register(LitmusKernel(
    name="mp_flag",
    model="intra",
    threads=2,
    arrays={"data": 1},
    programs=(_mp_flag_producer, _mp_flag_consumer),
    doc="MP: producer stores then sets a flag; consumer waits then loads.",
    check=_check_mp_flag,
))


def _mp_barrier_program(ctx, arrs, obs):
    if ctx.tid == 0:
        yield from ctx.store(arrs["data"].addr(0), 7)
    yield from ctx.barrier()
    if ctx.tid != 0:
        obs[ctx.tid] = yield from ctx.load(arrs["data"].addr(0))


def _check_mp_barrier(obs, mem):
    assert obs == {1: 7, 2: 7, 3: 7}
    assert mem["data"] == [7]


_register(LitmusKernel(
    name="mp_barrier",
    model="intra",
    threads=4,
    arrays={"data": 1},
    programs=(_mp_barrier_program,) * 4,
    doc="MP through a barrier; every other thread reads the same value.",
    check=_check_mp_barrier,
))


def _mp_inter_producer(ctx, arrs, obs):
    addr = arrs["data"].addr(0)
    yield from ctx.store(addr, 99)
    yield from wb_global(ctx, addr, WORD_BYTES, cons_tid=3)
    yield isa.FlagSet(1, 1)


def _mp_inter_consumer(ctx, arrs, obs):
    addr = arrs["data"].addr(0)
    yield isa.FlagWait(1, 1)
    yield from inv_global(ctx, addr, WORD_BYTES, prod_tid=0)
    obs[ctx.tid] = yield from ctx.load(addr)


def _passive(ctx, arrs, obs):
    return
    yield  # pragma: no cover - makes this a generator


def _check_mp_inter(obs, mem):
    assert obs == {3: 99}
    assert mem["data"] == [99]


_register(LitmusKernel(
    name="mp_flag_inter_block",
    model="inter",
    threads=4,
    arrays={"data": 1},
    programs=(_mp_inter_producer, _passive, _passive, _mp_inter_consumer),
    doc="MP across blocks: tid 0 (block 0) hands one word to tid 3 "
        "(block 1), so the handoff must cross the L2s.",
    check=_check_mp_inter,
))


# ---------------------------------------------------------------------------
# store buffering
# ---------------------------------------------------------------------------


def _sb_t0(ctx, arrs, obs):
    yield from ctx.store(arrs["x"].addr(0), 1)
    yield from ctx.barrier(count=2)
    obs["r0"] = yield from ctx.load(arrs["y"].addr(0))


def _sb_t1(ctx, arrs, obs):
    yield from ctx.store(arrs["y"].addr(0), 1)
    yield from ctx.barrier(count=2)
    obs["r1"] = yield from ctx.load(arrs["x"].addr(0))


def _check_sb(obs, mem):
    assert obs == {"r0": 1, "r1": 1}


_register(LitmusKernel(
    name="store_buffering_barrier",
    model="intra",
    threads=2,
    arrays={"x": 1, "y": 1},
    programs=(_sb_t0, _sb_t1),
    doc="SB: with a barrier between stores and loads, r0 = r1 = 1.",
    check=_check_sb,
))


# ---------------------------------------------------------------------------
# producer/consumer chains
# ---------------------------------------------------------------------------

_CHAIN_N = 4


def _chain_t0(ctx, arrs, obs):
    for i in range(_CHAIN_N):
        yield from ctx.store(arrs["a"].addr(i), 10 + i)
    yield from ctx.barrier()
    yield from ctx.barrier()


def _chain_t1(ctx, arrs, obs):
    yield from ctx.barrier()
    for i in range(_CHAIN_N):
        v = yield from ctx.load(arrs["a"].addr(i))
        yield from ctx.store(arrs["b"].addr(i), v + 1)
    yield from ctx.barrier()


def _chain_t2(ctx, arrs, obs):
    yield from ctx.barrier()
    yield from ctx.barrier()
    obs["b"] = tuple(
        (yield from ctx.load_many(
            [arrs["b"].addr(i) for i in range(_CHAIN_N)]
        ))
    )


def _chain_other(ctx, arrs, obs):
    yield from ctx.barrier()
    yield from ctx.barrier()


def _check_chain(obs, mem):
    assert obs == {"b": (11, 12, 13, 14)}
    assert mem["a"] == [10, 11, 12, 13]
    assert mem["b"] == [11, 12, 13, 14]


_register(LitmusKernel(
    name="producer_consumer_chain_barrier",
    model="intra",
    threads=4,
    arrays={"a": _CHAIN_N, "b": _CHAIN_N},
    programs=(_chain_t0, _chain_t1, _chain_t2, _chain_other),
    doc="T0 produces a[], T1 maps a->b, T2 reads b — two barrier stages.",
    check=_check_chain,
))


_PING_ROUNDS = 3


def _ping_t0(ctx, arrs, obs):
    addr = arrs["v"].addr(0)
    yield from ctx.store(addr, 0)
    yield from ctx.flag_set(0, 1)
    for r in range(_PING_ROUNDS):
        yield from ctx.flag_wait(1, r + 1)
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        yield from ctx.flag_set(0, r + 2)
    obs["final0"] = yield from ctx.load(addr)


def _ping_t1(ctx, arrs, obs):
    addr = arrs["v"].addr(0)
    for r in range(_PING_ROUNDS):
        yield from ctx.flag_wait(0, r + 1)
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        yield from ctx.flag_set(1, r + 1)


def _check_ping(obs, mem):
    assert obs == {"final0": 2 * _PING_ROUNDS}
    assert mem["v"] == [2 * _PING_ROUNDS]


_register(LitmusKernel(
    name="flag_ping_pong",
    model="intra",
    threads=2,
    arrays={"v": 1},
    programs=(_ping_t0, _ping_t1),
    doc="Two threads alternately increment a word, ordered by flag values.",
    check=_check_ping,
))


# ---------------------------------------------------------------------------
# locks
# ---------------------------------------------------------------------------

_COUNTER_K = 3


def _counter_program(ctx, arrs, obs):
    addr = arrs["counter"].addr(0)
    for _ in range(_COUNTER_K):
        yield from ctx.lock_acquire(0)
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        yield from ctx.lock_release(0)
    yield from ctx.barrier()
    obs[ctx.tid] = yield from ctx.load(addr)


def _check_counter(obs, mem):
    assert obs == {tid: 4 * _COUNTER_K for tid in range(4)}
    assert mem["counter"] == [4 * _COUNTER_K]


_register(LitmusKernel(
    name="lock_counter",
    model="intra",
    threads=4,
    arrays={"counter": 1},
    programs=(_counter_program,) * 4,
    doc="Classic lock-protected counter: N threads x K increments each.",
    check=_check_counter,
))


_SWEEP_WORDS = 128  # 8 lines of 16 words: twice the 4-entry IEB capacity
_SWEEP_ROUNDS = 2


def _multiline_sweep_program(ctx, arrs, obs):
    acc = arrs["acc"]
    half = _SWEEP_WORDS // 2
    for _ in range(_SWEEP_ROUNDS):
        yield from ctx.lock_acquire(3)
        # Pass 1: read every word.  8 distinct lines enter the 4-entry IEB
        # in FIFO order, so the first 4 (the read-only half) get evicted.
        for i in range(_SWEEP_WORDS):
            yield from ctx.load(acc.addr(i))
        # Pass 2: increment the second half (lines still IEB-resident).
        for i in range(half, _SWEEP_WORDS):
            v = yield from ctx.load(acc.addr(i))
            yield from ctx.store(acc.addr(i), v + 1)
        # Re-read the first (read-only, evicted) line: this load pays the
        # redundant re-invalidation the Section IV-B.2 sizing argument
        # trades against buffer area.
        yield from ctx.load(acc.addr(0))
        yield from ctx.lock_release(3)
    yield from ctx.barrier()
    obs[ctx.tid] = yield from ctx.load(acc.addr(_SWEEP_WORDS - 1))


def _check_multiline_sweep(obs, mem):
    want = 4 * _SWEEP_ROUNDS
    half = _SWEEP_WORDS // 2
    assert obs == {tid: want for tid in range(4)}
    assert mem["acc"] == [0] * half + [want] * half


_register(LitmusKernel(
    name="lock_multiline_sweep",
    model="intra",
    threads=4,
    arrays={"acc": _SWEEP_WORDS},
    programs=(_multiline_sweep_program,) * 4,
    doc="Lock-protected increment sweep over 8 lines: each critical "
        "section reads twice the IEB's capacity, so the epoch exercises "
        "IEB FIFO eviction and redundant re-invalidation (Section IV-B.2) "
        "rather than fitting entirely in the buffer.",
    check=_check_multiline_sweep,
))


def _handoff_writer(ctx, arrs, obs):
    yield from ctx.lock_acquire(5, occ=False)
    yield from ctx.store(arrs["slot"].addr(0), 123)
    yield from ctx.lock_release(5, occ=False)
    yield from ctx.flag_set(2)


def _handoff_reader(ctx, arrs, obs):
    yield from ctx.flag_wait(2)
    yield from ctx.lock_acquire(5, occ=False)
    obs["slot"] = yield from ctx.load(arrs["slot"].addr(0))
    yield from ctx.lock_release(5, occ=False)


def _check_handoff(obs, mem):
    assert obs == {"slot": 123}
    assert mem["slot"] == [123]


_register(LitmusKernel(
    name="lock_handoff_no_occ",
    model="intra",
    threads=2,
    arrays={"slot": 1},
    programs=(_handoff_writer, _handoff_reader),
    doc="CS-only communication with ``occ=False`` (Figure 4d refinement).",
    check=_check_handoff,
))


def _handoff3_t0(ctx, arrs, obs):
    yield from ctx.lock_acquire(7)
    yield from ctx.store(arrs["slot"].addr(0), 111)
    yield from ctx.lock_release(7)
    yield from ctx.flag_set(1)


def _handoff3_t1(ctx, arrs, obs):
    yield from ctx.flag_wait(1)
    yield from ctx.lock_acquire(7)
    v = yield from ctx.load(arrs["slot"].addr(0))
    yield from ctx.store(arrs["slot"].addr(0), v + 222)
    yield from ctx.lock_release(7)
    yield from ctx.flag_set(2)


def _handoff3_t2(ctx, arrs, obs):
    yield from ctx.flag_wait(2)
    yield from ctx.lock_acquire(7)
    obs["slot"] = yield from ctx.load(arrs["slot"].addr(0))
    yield from ctx.lock_release(7)


def _check_handoff3(obs, mem):
    assert obs == {"slot": 333}
    assert mem["slot"] == [333]


_register(LitmusKernel(
    name="lock_handoff_three_threads",
    model="intra",
    threads=3,
    arrays={"slot": 1},
    programs=(_handoff3_t0, _handoff3_t1, _handoff3_t2),
    doc="A word handed through a lock across three threads in sequence; "
        "each handoff needs its own WB before release + INV after acquire.",
    check=_check_handoff3,
))


def _handoff3_broken_t0(ctx, arrs, obs):
    yield from ctx.lock_acquire(7, occ=False, cs_inv=())
    yield from ctx.store(arrs["slot"].addr(0), 111)
    yield from ctx.lock_release(7, occ=False, cs_wb=())  # missing WB
    yield from ctx.flag_set(1, wb=())


def _handoff3_broken_t1(ctx, arrs, obs):
    yield from ctx.flag_wait(1, inv=())
    yield from ctx.lock_acquire(7, occ=False, cs_inv=())  # missing INV
    v = yield from ctx.load(arrs["slot"].addr(0))
    yield from ctx.store(arrs["slot"].addr(0), v + 222)
    yield from ctx.lock_release(7, occ=False, cs_wb=())  # missing WB
    yield from ctx.flag_set(2, wb=())


def _handoff3_broken_t2(ctx, arrs, obs):
    yield from ctx.flag_wait(2, inv=())
    yield from ctx.lock_acquire(7, occ=False, cs_inv=())  # missing INV
    obs["slot"] = yield from ctx.load(arrs["slot"].addr(0))
    yield from ctx.lock_release(7, occ=False, cs_wb=())


_register(LitmusKernel(
    name="lock_handoff_three_threads_broken",
    model="intra",
    threads=3,
    arrays={"slot": 1},
    programs=(_handoff3_broken_t0, _handoff3_broken_t1, _handoff3_broken_t2),
    determinate=False,
    expect_rules=("WB-REL", "INV-ACQ"),
    doc="The three-thread lock handoff with every annotation suppressed: "
        "the chain reads stale data dynamically; statically each handoff "
        "violates WB-REL and INV-ACQ.",
))


# ---------------------------------------------------------------------------
# annotated data races (Figure 6b)
# ---------------------------------------------------------------------------


def _racy_writer(ctx, arrs, obs):
    yield from ctx.racy_store(arrs["w"].addr(0), 5)
    yield from ctx.flag_set(3, wb=())  # data already posted by the race WB


def _racy_reader(ctx, arrs, obs):
    yield from ctx.flag_wait(3, inv=())  # rely on the racy-load INV alone
    obs["w"] = yield from ctx.racy_load(arrs["w"].addr(0))


def _check_racy(obs, mem):
    assert obs == {"w": 5}
    assert mem["w"] == [5]


_register(LitmusKernel(
    name="racy_store_load",
    model="intra",
    threads=2,
    arrays={"w": 1},
    programs=(_racy_writer, _racy_reader),
    doc="Racy store/load helpers, made determinate by an ordering flag.",
    check=_check_racy,
))


# ---------------------------------------------------------------------------
# range hints and multi-line handoff
# ---------------------------------------------------------------------------

_HANDOFF_N = 40  # spans 3 lines of 16 words


def _multiline_producer(ctx, arrs, obs):
    base = arrs["buf"].addr(0)
    for i in range(_HANDOFF_N):
        yield from ctx.store(arrs["buf"].addr(i), i * i)
    yield from ctx.barrier(wb=[(base, _HANDOFF_N * WORD_BYTES)], inv=())


def _multiline_consumer(ctx, arrs, obs):
    base = arrs["buf"].addr(0)
    yield from ctx.barrier(wb=(), inv=[(base, _HANDOFF_N * WORD_BYTES)])
    vals = yield from ctx.load_many(
        [arrs["buf"].addr(i) for i in range(_HANDOFF_N)]
    )
    obs[ctx.tid] = tuple(vals)


def _check_multiline(obs, mem):
    expect = tuple(i * i for i in range(_HANDOFF_N))
    assert obs == {1: expect}
    assert mem["buf"] == list(expect)


_register(LitmusKernel(
    name="multiline_handoff_range_hints",
    model="intra",
    threads=4,
    arrays={"buf": _HANDOFF_N},
    programs=(_multiline_producer, _multiline_consumer, _idle, _idle),
    doc="Producer hands a multi-line region over a barrier with wb=/inv= "
        "hints.",
    check=_check_multiline,
))


def _false_sharing_program(ctx, arrs, obs):
    if ctx.tid < 2:
        yield from ctx.store(arrs["line"].addr(ctx.tid), 100 + ctx.tid)
    yield from ctx.barrier()
    other = 1 - ctx.tid
    if ctx.tid < 2:
        obs[ctx.tid] = yield from ctx.load(arrs["line"].addr(other))


def _check_false_sharing(obs, mem):
    assert obs == {0: 101, 1: 100}
    assert mem["line"] == [100, 101]


_register(LitmusKernel(
    name="false_sharing_one_line",
    model="intra",
    threads=4,
    arrays={"line": 2},
    programs=(_false_sharing_program,) * 4,
    doc="Two writers share one cache line but touch disjoint words; "
        "per-word dirty bits must merge both updates on write-back.",
    check=_check_false_sharing,
))


def _private_reuse_program(ctx, arrs, obs):
    yield from ctx.store(arrs["priv"].addr(ctx.tid), ctx.tid * 11)
    yield from ctx.barrier(wb=(), inv=())
    obs[ctx.tid] = yield from ctx.load(arrs["priv"].addr(ctx.tid))


def _check_private_reuse(obs, mem):
    assert obs == {tid: tid * 11 for tid in range(4)}
    assert mem["priv"] == [0, 11, 22, 33]


_register(LitmusKernel(
    name="private_reuse_empty_hints",
    model="intra",
    threads=4,
    arrays={"priv": 4},
    programs=(_private_reuse_program,) * 4,
    doc="wb=()/inv=() declare no communication: private slots stay "
        "correct.",
    check=_check_private_reuse,
))


# ---------------------------------------------------------------------------
# inter-block barrier reduction
# ---------------------------------------------------------------------------


def _reduction_program(ctx, arrs, obs):
    part = arrs["part"].addr(ctx.tid)
    parts = arrs["part"].addr(0)
    total_addr = arrs["sum"].addr(0)
    n = ctx.nthreads
    yield from ctx.store(part, ctx.tid + 1)
    yield from wb_global(ctx, part, WORD_BYTES)
    yield isa.Barrier(0, n)
    if ctx.tid == 0:
        yield from inv_global(ctx, parts, n * WORD_BYTES)
        total = 0
        for i in range(n):
            total += yield from ctx.load(arrs["part"].addr(i))
        yield from ctx.store(total_addr, total)
        yield from wb_global(ctx, total_addr, WORD_BYTES)
    yield isa.Barrier(1, n)
    if ctx.tid != 0:
        # tid 0 wrote the total itself — invalidating its own fresh copy
        # would be exactly the INV-RED redundancy the analyzer flags.
        yield from inv_global(ctx, total_addr, WORD_BYTES)
    obs[ctx.tid] = yield from ctx.load(total_addr)


def _check_reduction(obs, mem):
    assert obs == {tid: 10 for tid in range(4)}
    assert mem["sum"] == [10]


_register(LitmusKernel(
    name="inter_block_barrier_reduction",
    model="inter",
    threads=4,
    arrays={"part": 4, "sum": 1},
    programs=(_reduction_program,) * 4,
    doc="All-threads sum reduction over two barrier phases, inter-block; "
        "the gather has no single peer, so Addr+L falls back to the "
        "global WB_L3/INV_L2 forms.",
    check=_check_reduction,
))


# ---------------------------------------------------------------------------
# deliberately broken kernels (the analyzer and the dynamic harness must
# both catch these)
# ---------------------------------------------------------------------------


def _canary_producer(ctx, arrs, obs):
    addr = arrs["data"].addr(0)
    _ = yield from ctx.load(addr)  # cache the line before writing
    yield isa.Write(addr, 42)
    yield isa.FlagSet(9, 1)  # no WB before the set


def _canary_consumer(ctx, arrs, obs):
    addr = arrs["data"].addr(0)
    _ = yield from ctx.load(addr)  # warm the stale line
    yield isa.FlagWait(9, 1)  # no INV after the wait
    obs["got"] = yield from ctx.load(addr)


_register(LitmusKernel(
    name="missing_annotations",
    model="intra",
    threads=2,
    arrays={"data": 1},
    programs=(_canary_producer, _canary_consumer),
    determinate=False,
    expect_rules=("WB-FLAG", "INV-FLAG"),
    doc="The canary: flag-ordered message passing with no WB/INV at all. "
        "The consumer reads its warmed stale line; both harnesses must "
        "object.",
))


def _missing_wb_producer(ctx, arrs, obs):
    yield from ctx.store(arrs["data"].addr(0), 7)
    # wb=() lies: the store is never written back.  inv=() too — the
    # protocol never drops dirty words, so a default INV ALL would write
    # the data back as a side effect and mask the missing WB.
    yield from ctx.barrier(wb=(), inv=())


def _missing_wb_consumer(ctx, arrs, obs):
    yield from ctx.barrier()
    obs["got"] = yield from ctx.load(arrs["data"].addr(0))


_register(LitmusKernel(
    name="missing_wb_barrier",
    model="intra",
    threads=2,
    arrays={"data": 1},
    programs=(_missing_wb_producer, _missing_wb_consumer),
    determinate=False,
    expect_rules=("WB-BAR",),
    doc="A wb=() hint that lies: the producer's store stays dirty in its "
        "L1, so the consumer reads the stale shared level.",
))


def _missing_inv_producer(ctx, arrs, obs):
    yield from ctx.barrier()  # round 0: let the consumer warm the line
    yield from ctx.store(arrs["data"].addr(0), 7)
    yield from ctx.barrier()  # round 1: the default WB ALL publishes


def _missing_inv_consumer(ctx, arrs, obs):
    # Warm a *different* word of the same line: caches the line without
    # creating a cross-thread edge on the communicated word.  The first
    # barrier orders the warming before the producer's store.
    _ = yield from ctx.load(arrs["data"].addr(1))
    yield from ctx.barrier(inv=())  # keep the warmed line
    yield from ctx.barrier(inv=())  # lies: the stale line is never dropped
    obs["got"] = yield from ctx.load(arrs["data"].addr(0))


_register(LitmusKernel(
    name="missing_inv_barrier",
    model="intra",
    threads=2,
    arrays={"data": 2},
    programs=(_missing_inv_producer, _missing_inv_consumer),
    determinate=False,
    expect_rules=("INV-BAR",),
    doc="An inv=() hint that lies: the consumer warmed the line before "
        "the barrier and re-reads it stale afterwards.",
))


def _redundant_wb_producer(ctx, arrs, obs):
    a0 = arrs["a"].addr(0)
    b0 = arrs["b"].addr(0)
    yield from ctx.store(a0, 5)
    # The b-range WB is dead weight: nothing in b was ever written.
    yield from ctx.barrier(
        wb=[(a0, WORD_BYTES), (b0, WORD_BYTES)], inv=()
    )


def _redundant_wb_consumer(ctx, arrs, obs):
    a0 = arrs["a"].addr(0)
    yield from ctx.barrier(wb=(), inv=[(a0, WORD_BYTES)])
    obs["got"] = yield from ctx.load(a0)


def _check_redundant_wb(obs, mem):
    assert obs == {"got": 5}
    assert mem["a"] == [5]


_register(LitmusKernel(
    name="redundant_wb_hint",
    model="intra",
    threads=2,
    arrays={"a": 1, "b": 1},
    programs=(_redundant_wb_producer, _redundant_wb_consumer),
    determinate=True,
    expect_rules=("WB-RED",),
    doc="Correct but wasteful: the producer's hint also writes back a "
        "range it never dirtied.",
    check=_check_redundant_wb,
))


def _inv_uninit_reader(ctx, arrs, obs):
    base = arrs["u"].addr(0)
    yield from ctx.barrier(wb=(), inv=[(base, 4 * WORD_BYTES)])
    vals = yield from ctx.load_many([arrs["u"].addr(i) for i in range(4)])
    obs["u"] = tuple(vals)


def _inv_uninit_other(ctx, arrs, obs):
    yield from ctx.barrier(wb=(), inv=())


def _check_inv_uninit(obs, mem):
    assert obs == {"u": (0, 0, 0, 0)}


_register(LitmusKernel(
    name="inv_uninitialized_read",
    model="intra",
    threads=2,
    arrays={"u": 4},
    programs=(_inv_uninit_reader, _inv_uninit_other),
    determinate=True,
    expect_rules=("INV-RED",),
    doc="Invalidating before reading data no other thread ever wrote: "
        "correct, but the INV only destroys locality.",
    check=_check_inv_uninit,
))
