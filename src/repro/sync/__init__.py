"""Subpackage of repro."""
