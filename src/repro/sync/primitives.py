"""State machines for the three synchronization primitives (Section III-D).

The shared-cache controller queues synchronization requests and responds only
when the requester may proceed: lock requests are granted FIFO, barrier
requests are answered when the last participant arrives, and condition-flag
waits are answered when the flag value reaches the requested threshold.
These classes are pure state (no timing); :mod:`repro.sync.controller` adds
placement and latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SyncError

#: A waiter is (core id, resume callback); the controller schedules the call.
Waiter = tuple[int, Callable[[], None]]


@dataclass
class LockState:
    """FIFO-queued mutual exclusion."""

    holder: int | None = None
    queue: deque[Waiter] = field(default_factory=deque)

    def acquire(self, core: int, resume: Callable[[], None]) -> bool:
        """Try to take the lock; returns True when granted immediately."""
        if self.holder is None:
            self.holder = core
            return True
        if self.holder == core:
            raise SyncError(f"core {core} re-acquired a non-reentrant lock")
        self.queue.append((core, resume))
        return False

    def release(self, core: int) -> Waiter | None:
        """Release; returns the next waiter to grant, if any."""
        if self.holder != core:
            raise SyncError(
                f"core {core} released a lock held by {self.holder!r}"
            )
        if self.queue:
            nxt_core, resume = self.queue.popleft()
            self.holder = nxt_core
            return (nxt_core, resume)
        self.holder = None
        return None


@dataclass
class BarrierState:
    """Counting barrier over a fixed participant count, reusable across phases."""

    count: int
    arrived: list[Waiter] = field(default_factory=list)
    generation: int = 0

    def arrive(self, core: int, resume: Callable[[], None]) -> list[Waiter] | None:
        """Register arrival; returns the full waiter list when complete."""
        if self.count < 1:
            raise SyncError("barrier participant count must be >= 1")
        if any(c == core for c, _ in self.arrived):
            raise SyncError(f"core {core} arrived twice at the same barrier phase")
        self.arrived.append((core, resume))
        if len(self.arrived) == self.count:
            released = self.arrived
            self.arrived = []
            self.generation += 1
            return released
        return None


@dataclass
class FlagState:
    """Monotonic condition variable: waiters resume once value >= threshold."""

    value: int = 0
    waiters: list[tuple[int, int, Callable[[], None]]] = field(default_factory=list)

    def set(self, value: int) -> list[Waiter]:
        """Raise the flag value; returns waiters now satisfied."""
        if value < self.value:
            raise SyncError(
                f"flag values are monotonic (have {self.value}, got {value})"
            )
        self.value = value
        ready = [(c, r) for c, th, r in self.waiters if th <= value]
        self.waiters = [(c, th, r) for c, th, r in self.waiters if th > value]
        return ready

    def wait(self, core: int, threshold: int, resume: Callable[[], None]) -> bool:
        """True when already satisfied; otherwise queue the waiter."""
        if self.value >= threshold:
            return True
        self.waiters.append((core, threshold, resume))
        return False
