"""Synchronization controller in the shared-cache controller (Section III-D).

Machines without hardware coherence cannot spin on cached flags, so — like
Tera, RP3, and Cedar — synchronization lives in the memory system: when a
synchronization variable is declared, the controller of the shared cache
allocates a synchronization-table entry, intercepts requests, and responds
only when the requester may proceed.  All requests are uncacheable.

Timing: a request pays the one-way mesh latency to the controller bank plus
a fixed service time; the response pays the return trip when it is finally
sent.  Synchronization variables are interleaved across shared-cache banks
by ID (L2 banks intra-block; L3 banks when the machine has an L3, since
inter-block synchronization must be visible chip-wide).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SyncError
from repro.noc.mesh import Mesh
from repro.sim.engine import Engine
from repro.sim.stats import TrafficCat, MachineStats
from repro.sync.primitives import BarrierState, FlagState, LockState

#: Fixed controller occupancy per request (cycles).
SERVICE_CYCLES = 3


class SyncController:
    """Queued barrier/lock/flag service attached to shared-cache banks."""

    def __init__(
        self,
        mesh: Mesh,
        engine: Engine,
        stats: MachineStats,
        *,
        tracer=None,
        metrics=None,
    ) -> None:
        self.mesh = mesh
        self.engine = engine
        self.stats = stats
        #: Observability sinks (:mod:`repro.obs`); ``None`` means disabled.
        self.tracer = tracer
        self.metrics = metrics
        self._locks: dict[int, LockState] = {}
        self._barriers: dict[int, BarrierState] = {}
        self._flags: dict[int, FlagState] = {}
        # Per-(lid, core) arrival floor enforcing FIFO delivery on each
        # core's lock-message channel.  Release is fire-and-forget, so
        # without this a jittered release (armed fault runs) could be
        # overtaken in flight by the same core's next acquire and trip the
        # non-reentrancy check.  Fault-free runs give every message on a
        # channel the same travel time, so the clamp never binds there.
        self._lock_channel_floor: dict[tuple[int, int], int] = {}
        machine = mesh.machine
        self._at_l3 = machine.num_l3_banks > 0
        self._num_banks = machine.num_l3_banks if self._at_l3 else machine.num_cores
        # Fault-free one-way latency table (static geometry, like the
        # hierarchy's tables); armed runs take the formula path below.
        self._one_way_lat = [
            [
                mesh.latency(mesh.core_tile(c), self._bank_tile(b))
                for b in range(self._num_banks)
            ]
            for c in range(machine.num_cores)
        ]

    # -- placement / latency ---------------------------------------------------

    def _bank_tile(self, bank: int) -> tuple[int, int]:
        if self._at_l3:
            return self.mesh.l3_bank_tile(bank)
        return self.mesh.l2_bank_tile(bank)

    def _one_way(self, core: int, var_id: int) -> int:
        if self.mesh.faults is None:
            return self._one_way_lat[core][var_id % self._num_banks]
        return self.mesh.latency(
            self.mesh.core_tile(core), self._bank_tile(var_id % self._num_banks)
        )

    def _count_msg(self) -> None:
        # Synchronization requests are uncacheable control flits, tracked
        # apart from coherence traffic (see TrafficCat.SYNC).
        self.stats.add_traffic(TrafficCat.SYNC, 1)

    def _obs_request(self, what: str) -> None:
        """Count one controller request in the metrics registry."""
        if self.metrics is not None:
            self.metrics.inc(f"sync.requests.{what}")

    def _obs_grant(self, what: str, core: int) -> None:
        """Trace one grant message leaving the controller (engine-timed)."""
        if self.tracer is not None:
            self.tracer.emit(
                "sync", core, op=f"{what}_grant", cycle=self.engine.now
            )
        if self.metrics is not None:
            self.metrics.inc(f"sync.grants.{what}")

    # -- declarations -------------------------------------------------------------

    def declare_barrier(self, bid: int, count: int) -> None:
        existing = self._barriers.get(bid)
        if existing is not None and existing.count != count:
            raise SyncError(f"barrier {bid} redeclared with different count")
        if existing is None:
            self._barriers[bid] = BarrierState(count)

    def _lock(self, lid: int) -> LockState:
        lock = self._locks.get(lid)
        if lock is None:
            lock = self._locks[lid] = LockState()
        return lock

    def _flag(self, fid: int) -> FlagState:
        flag = self._flags.get(fid)
        if flag is None:
            flag = self._flags[fid] = FlagState()
        return flag

    # -- operations -----------------------------------------------------------------
    #
    # Every operation takes a `resume` callback invoked (via the engine) when
    # the requester may continue.  The caller measures its own stall time.

    def barrier_arrive(
        self, core: int, bid: int, count: int, resume: Callable[[], None]
    ) -> None:
        self.declare_barrier(bid, count)
        travel = self._one_way(core, bid) + SERVICE_CYCLES
        self._count_msg()
        self._obs_request("barrier")

        def at_controller() -> None:
            released = self._barriers[bid].arrive(core, resume)
            if released is not None:
                for waiter_core, waiter_resume in released:
                    self._count_msg()
                    self._obs_grant("barrier", waiter_core)
                    self.engine.schedule(
                        self._one_way(waiter_core, bid), waiter_resume
                    )

        self.engine.schedule(travel, at_controller)

    def _lock_travel(self, core: int, lid: int, travel: int) -> int:
        """Clamp *travel* so (core -> lock lid) messages arrive in order."""
        arrival = max(
            self.engine.now + travel,
            self._lock_channel_floor.get((lid, core), 0),
        )
        self._lock_channel_floor[(lid, core)] = arrival
        return arrival - self.engine.now

    def lock_acquire(self, core: int, lid: int, resume: Callable[[], None]) -> None:
        travel = self._lock_travel(
            core, lid, self._one_way(core, lid) + SERVICE_CYCLES
        )
        self._count_msg()
        self._obs_request("lock_acquire")

        def at_controller() -> None:
            granted = self._lock(lid).acquire(core, resume)
            if granted:
                self._count_msg()
                self._obs_grant("lock", core)
                self.engine.schedule(self._one_way(core, lid), resume)
            # else: queued; the release path schedules the grant.

        self.engine.schedule(travel, at_controller)

    def lock_release(self, core: int, lid: int, resume: Callable[[], None]) -> None:
        travel = self._lock_travel(
            core, lid, self._one_way(core, lid) + SERVICE_CYCLES
        )
        self._count_msg()
        self._obs_request("lock_release")

        def at_controller() -> None:
            nxt = self._lock(lid).release(core)
            if nxt is not None:
                nxt_core, nxt_resume = nxt
                self._count_msg()
                self._obs_grant("lock", nxt_core)
                self.engine.schedule(self._one_way(nxt_core, lid), nxt_resume)

        self.engine.schedule(travel, at_controller)
        # The releaser does not wait for the controller: fire-and-forget.
        self.engine.schedule(1, resume)

    def flag_set(
        self, core: int, fid: int, value: int, resume: Callable[[], None]
    ) -> None:
        travel = self._one_way(core, fid) + SERVICE_CYCLES
        self._count_msg()
        self._obs_request("flag_set")

        def at_controller() -> None:
            ready = self._flag(fid).set(value)
            for waiter_core, waiter_resume in ready:
                self._count_msg()
                self._obs_grant("flag", waiter_core)
                self.engine.schedule(self._one_way(waiter_core, fid), waiter_resume)

        self.engine.schedule(travel, at_controller)
        self.engine.schedule(1, resume)

    def flag_wait(
        self, core: int, fid: int, threshold: int, resume: Callable[[], None]
    ) -> None:
        travel = self._one_way(core, fid) + SERVICE_CYCLES
        self._count_msg()
        self._obs_request("flag_wait")

        def at_controller() -> None:
            satisfied = self._flag(fid).wait(core, threshold, resume)
            if satisfied:
                self._count_msg()
                self._obs_grant("flag", core)
                self.engine.schedule(self._one_way(core, fid), resume)

        self.engine.schedule(travel, at_controller)

    # -- inspection -------------------------------------------------------------------

    def lock_holder(self, lid: int) -> int | None:
        lock = self._locks.get(lid)
        return lock.holder if lock else None

    def flag_value(self, fid: int) -> int:
        flag = self._flags.get(fid)
        return flag.value if flag else 0
