"""Self-invalidation / self-downgrade (SISD) — "Mending Fences",
arXiv 1611.07372 — over the incoherent hierarchy.

SISD removes every remote invalidation: a core's cached lines are only
ever touched by the core itself, at its own synchronization points.

* A private/shared **classifier** tracks, per line, the first core to
  touch it (the owner).  The first access by any *other* core flips the
  line to shared — permanently — and runs **ownership-transition
  recovery**: the owner's dirty copy is pushed down (to the block L2;
  through the L3 when the accessor sits in another block) so the new
  sharer's fill cannot miss data the owner never had a reason to
  downgrade while the line was private.
* **Self-downgrade (SD)** — every WB flavor becomes "write back my
  *shared* dirty lines".  Private dirty lines stay put: nobody else can
  read them, and the transition recovery rescues them the moment that
  changes.
* **Self-invalidation (SI)** — every INV flavor becomes "drop my copies
  of *shared* lines" (dirty words are written back first, preserving the
  SD-before-SI order).  Private lines keep their locality: they cannot
  be stale because nobody else writes them.

Ranged and level-adaptive WB/INV collapse onto the same sync-triggered
discipline (the defining SISD trait — annotations say *when*, the
classifier says *what*): local flavors self-downgrade/-invalidate
against the block L2, global flavors against the L3.

Degradation counters in :class:`~repro.sim.stats.MachineStats`:
``sisd_transitions`` (private→shared flips), ``sisd_self_downgrades``
(shared dirty lines written back), ``sisd_self_invalidations`` (shared
lines dropped).
"""

from __future__ import annotations

from typing import Any

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.threadmap import ThreadMapTable


class SelfInvalidationProtocol(IncoherentProtocol):
    """Sync-triggered SI/SD over a private/shared line classifier."""

    name = "sisd"

    def __init__(
        self,
        hierarchy: Hierarchy,
        *,
        threadmap: ThreadMapTable | None = None,
        detect_staleness: bool = False,
    ) -> None:
        # SI/SD replace both the MEB (SD walks the tag array over the
        # shared set) and the IEB (SI is the up-front acquire action).
        super().__init__(
            hierarchy,
            use_meb=False,
            use_ieb=False,
            threadmap=threadmap,
            detect_staleness=detect_staleness,
        )
        #: First core to touch each line (the private owner).
        self._owner: dict[int, int] = {}
        #: Lines ever touched by a second core; membership is permanent.
        self._shared: set[int] = set()

    # -- classifier ---------------------------------------------------------

    def _classify(self, core: int, byte_addr: int) -> int:
        """Record this access; on a private→shared flip, run recovery.

        Returns the recovery latency charged to the accessing core (0 on
        the fast path — owner hit or already-shared line).
        """
        la = self.hier.line_of(byte_addr)
        owner = self._owner.get(la)
        if owner is None:
            self._owner[la] = core
            return 0
        if owner == core or la in self._shared:
            return 0
        self._shared.add(la)
        self.stats.sisd_transitions += 1
        return self._transition_recovery(core, la, owner)

    def _transition_recovery(self, core: int, la: int, owner: int) -> int:
        """Make the owner's private dirty data reachable by *every* sharer.

        While a line is private the owner never self-downgrades it, so the
        flip must push the owner's dirty words all the way down: to the
        owner's block L2, and through the L3 on multi-block machines.  The
        push depth must NOT depend on where the *triggering* accessor sits —
        the flip happens once, but later sharers in other blocks fill from
        the L3, and which core happens to touch first is timing (the chaos
        harness perturbs it).  Only the latency *charged* is
        accessor-relative.
        """
        hier = self.hier
        lat = 0
        line = hier.l1s[owner].lookup(la, touch=False)
        if line is not None and line.dirty:
            self._wb_l1_line(owner, line, critical=False)
            lat += hier.l2_latency(core, la)
        if hier.has_l3:
            owner_block = hier.block_of_core(owner)
            l2_line = hier.l2_lookup(owner_block, la, touch=False)
            if l2_line is not None and l2_line.dirty:
                self._push_l2_words_to_l3(owner, l2_line, l2_line.dirty_mask)
                if owner_block != hier.block_of_core(core):
                    lat += self._global_level_latency(core, la)
        return lat

    # -- plain accesses -----------------------------------------------------

    def read(self, core: int, byte_addr: int) -> tuple[int, Any]:
        extra = self._classify(core, byte_addr)
        lat, value = super().read(core, byte_addr)
        return lat + extra, value

    def write(self, core: int, byte_addr: int, value: Any) -> int:
        extra = self._classify(core, byte_addr)
        return super().write(core, byte_addr, value) + extra

    # -- self-downgrade (every WB flavor) -----------------------------------

    def _sd_local(self, core: int) -> int:
        hier = self.hier
        l1 = hier.l1s[core]
        lines = [
            line for line in l1.dirty_lines() if line.line_addr in self._shared
        ]
        self.stats.sisd_self_downgrades += len(lines)
        return hier.tag_walk_latency(l1) + self._wb_lines(core, lines)

    def _sd_global(self, core: int) -> int:
        hier = self.hier
        l1 = hier.l1s[core]
        lat = hier.tag_walk_latency(l1)
        lines = [
            line for line in l1.dirty_lines() if line.line_addr in self._shared
        ]
        self.stats.sisd_self_downgrades += len(lines)
        lat += self._wb_lines(core, lines, to_l3=True)
        block = hier.block_of_core(core)
        shared_l2 = [
            line
            for line in hier.l2_lines_of_block(block)
            if line.dirty and line.line_addr in self._shared
        ]
        flits = 0
        for line in shared_l2:
            flits += self._push_l2_words_to_l3(core, line, line.dirty_mask)
        self.stats.global_wb_lines += len(shared_l2)
        if flits:
            lat += self._global_level_latency(
                core, shared_l2[0].line_addr
            ) + max(0, flits - 1)
        return lat

    def wb_range(self, core: int, byte_addr: int, length: int) -> int:
        return self._sd_local(core)

    def wb_all(self, core: int, via_meb: bool = False) -> int:
        return self._sd_local(core)

    def wb_cons(
        self, core: int, byte_addr: int, length: int, cons_tid: int
    ) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, cons_tid):
            return self._sd_local(core)
        return self._sd_global(core)

    def wb_cons_all(self, core: int, cons_tid: int) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, cons_tid):
            return self._sd_local(core)
        return self._sd_global(core)

    def wb_l3(self, core: int, byte_addr: int, length: int) -> int:
        return self._sd_global(core)

    def wb_all_l3(self, core: int) -> int:
        return self._sd_global(core)

    # -- self-invalidation (every INV flavor) -------------------------------

    def _si_local(self, core: int) -> int:
        hier = self.hier
        l1 = hier.l1s[core]
        las = [la for la in l1.resident_line_addrs() if la in self._shared]
        self.stats.sisd_self_invalidations += len(las)
        return hier.tag_walk_latency(l1) + self._inv_l1_lines(core, las)

    def _si_global(self, core: int) -> int:
        hier = self.hier
        lat = self._si_local(core)
        block = hier.block_of_core(core)
        flits = 0
        removed = 0
        for bank in hier.l2_banks[block]:
            for line in list(bank.lines()):
                if line.line_addr not in self._shared:
                    continue
                if line.dirty:
                    flits += self._push_l2_words_to_l3(
                        core, line, line.dirty_mask
                    )
                bank.remove(line.line_addr)
                removed += 1
        self.stats.global_inv_lines += removed
        if removed:
            lat += hier.tag_walk_latency(hier.l2_banks[block][0]) + max(
                0, flits - 1
            )
        return lat

    def inv_range(self, core: int, byte_addr: int, length: int) -> int:
        return self._si_local(core)

    def inv_all(self, core: int) -> int:
        return self._si_local(core)

    def inv_prod(
        self, core: int, byte_addr: int, length: int, prod_tid: int
    ) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, prod_tid):
            return self._si_local(core)
        return self._si_global(core)

    def inv_prod_all(self, core: int, prod_tid: int) -> int:
        self._require_threadmap()
        if self.threadmap.peer_is_local(core, prod_tid):
            return self._si_local(core)
        return self._si_global(core)

    def inv_l2(self, core: int, byte_addr: int, length: int) -> int:
        return self._si_global(core)

    def inv_all_l2(self, core: int) -> int:
        return self._si_global(core)

    # -- epochs -------------------------------------------------------------

    def epoch_begin(self, core: int, record_meb: bool, ieb_mode: bool) -> int:
        # Under IEB configurations the annotator replaces the acquire-side
        # INV ALL with EpochBegin(ieb_mode=True); that is still a
        # synchronization point, so it self-invalidates.
        if ieb_mode:
            return self._si_local(core)
        return 1
