"""Regional Consistency (RC) — arXiv 1301.4490 over the incoherent hierarchy.

RC scopes coherence actions to acquire/release-delimited *regions*:

* **Release side** — instead of walking the whole L1 tag array, a ``WB
  ALL`` flushes only the lines written since the last region flush.  The
  per-core *region write set* is the precise, unbounded analogue of the
  paper's MEB: every store adds its line, every region flush drains and
  clears the set, so no tag walk (and no overflow fallback) is ever
  needed.
* **Acquire side** — instead of eagerly invalidating the L1, an ``INV
  ALL`` merely opens a new *acquire epoch* (one counter bump).  Each line
  carries the epoch it was last filled in; the first read of a line whose
  fill predates the current epoch triggers a *lazy refresh* — write back
  its dirty words, drop it, refetch — exactly the IEB discipline but with
  exact (unbounded) bookkeeping and zero up-front cost for lines the
  region never touches.

Only the ``ALL`` flavors change: explicitly ranged WB/INV and the
level-adaptive ``WB_CONS``/``INV_PROD`` stay precise and eager (they name
the lines that matter, which is already regional).  On multi-block
machines the block-L2 sweep of ``INV ALL_L2`` stays eager too — lazy L1
refreshes refetch *from* that L2, so a stale L2 copy cannot be left
behind.

Degradation counters: ``rc_region_wb_lines`` (lines flushed by region
write-backs) and ``rc_lazy_refreshes`` (reads that paid a refresh) in
:class:`~repro.sim.stats.MachineStats`.
"""

from __future__ import annotations

from typing import Any

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.threadmap import ThreadMapTable
from repro.mem.line import CacheLine


class RegionalConsistencyProtocol(IncoherentProtocol):
    """Acquire/release-scoped coherence: regional WBs, lazy epoch INVs."""

    name = "rc"

    def __init__(
        self,
        hierarchy: Hierarchy,
        *,
        threadmap: ThreadMapTable | None = None,
        detect_staleness: bool = False,
    ) -> None:
        # The region write set subsumes the MEB and the acquire epoch
        # subsumes the IEB, so both hardware buffers stay disarmed.
        super().__init__(
            hierarchy,
            use_meb=False,
            use_ieb=False,
            threadmap=threadmap,
            detect_staleness=detect_staleness,
        )
        n = self.machine.num_cores
        #: Lines written since the core's last region flush.
        self._region_writes: list[set[int]] = [set() for _ in range(n)]
        #: Current acquire epoch per core (bumped by INV ALL flavors).
        self._acq_epoch: list[int] = [0] * n
        #: Epoch each resident line was last filled in.
        self._line_epoch: list[dict[int, int]] = [{} for _ in range(n)]

    # -- region bookkeeping -------------------------------------------------

    def _region_dirty_lines(self, core: int) -> list[CacheLine]:
        """Resident-and-dirty L1 lines of the core's region write set.

        Every dirty L1 line is in the set (all dirtying goes through
        :meth:`write`; evictions clean lines on the way out), so this is
        the complete flush set — clean or evicted members just drop out.
        """
        l1 = self.hier.l1s[core]
        out = []
        for la in sorted(self._region_writes[core]):
            line = l1.lookup(la, touch=False)
            if line is not None and line.dirty:
                out.append(line)
        return out

    def _fetch_into_l1(self, core: int, line_addr: int) -> tuple[int, CacheLine]:
        lat, line = super()._fetch_into_l1(core, line_addr)
        # Stamp every fill with the current epoch so read-misses, write
        # allocations, and refreshes all count as fresh for this region.
        self._line_epoch[core][line_addr] = self._acq_epoch[core]
        return lat, line

    # -- plain accesses -----------------------------------------------------

    def read(self, core: int, byte_addr: int) -> tuple[int, Any]:
        hier = self.hier
        line_addr = hier.line_of(byte_addr)
        l1 = hier.l1s[core]
        line = l1.lookup(line_addr)
        if (
            line is not None
            and self._line_epoch[core].get(line_addr, -1)
            < self._acq_epoch[core]
            and not line.is_word_dirty(hier.word_of(byte_addr))
        ):
            # First read of a pre-region line: lazy refresh (the acquire's
            # deferred invalidation).  Words this core dirtied survive —
            # they ride back down and return merged into the fresh copy.
            if line.dirty:
                self._wb_l1_line(core, line, critical=True)
            l1.remove(line_addr)
            stats = self.stats.per_core[core]
            stats.lines_invalidated += 1
            stats.l1_misses += 1
            self.stats.rc_lazy_refreshes += 1
            lat, fresh = self._fetch_into_l1(core, line_addr)
            word = hier.word_of(byte_addr)
            if self.detect_staleness:
                self._check_stale(core, byte_addr, fresh.data[word])
            return lat, fresh.data[word]
        return super().read(core, byte_addr)

    def write(self, core: int, byte_addr: int, value: Any) -> int:
        self._region_writes[core].add(self.hier.line_of(byte_addr))
        return super().write(core, byte_addr, value)

    # -- WB flavors: region-scoped ALLs ------------------------------------

    def wb_all(self, core: int, via_meb: bool = False) -> int:
        # The region set is exact, so via_meb is moot: no tag walk, no
        # overflow fallback, ever.
        lines = self._region_dirty_lines(core)
        lat = self._wb_lines(core, lines)
        self.stats.rc_region_wb_lines += len(lines)
        self._region_writes[core].clear()
        return max(lat, self.hier.l1_latency())

    def wb_all_l3(self, core: int) -> int:
        hier = self.hier
        lines = self._region_dirty_lines(core)
        lat = self._wb_lines(core, lines, to_l3=True)
        self.stats.rc_region_wb_lines += len(lines)
        self.stats.global_wb_lines += len(lines)
        # Region lines may carry earlier dirty words parked in the block
        # L2 (a dirty L1 eviction mid-region); push those through too.
        block = hier.block_of_core(core)
        touched = sorted(self._region_writes[core])
        flits = 0
        for la in touched:
            l2_line = hier.l2_lookup(block, la, touch=False)
            if l2_line is not None and l2_line.dirty:
                flits += self._push_l2_words_to_l3(
                    core, l2_line, l2_line.dirty_mask
                )
        if flits and lat == 0:
            lat = self._global_level_latency(core, touched[0])
        self._region_writes[core].clear()
        return max(lat + max(0, flits - 1), hier.l1_latency())

    # -- INV flavors: lazy acquire epochs ----------------------------------

    def inv_all(self, core: int) -> int:
        # The RC acquire: one epoch bump; every stale line pays its
        # refresh on first read instead of up front.  (INV ALL_L2 is
        # inherited — it calls this for the L1 side and keeps the eager
        # block-L2 sweep, since refreshes refetch from that L2.)
        self._acq_epoch[core] += 1
        return 1

    # -- epochs -------------------------------------------------------------

    def epoch_begin(self, core: int, record_meb: bool, ieb_mode: bool) -> int:
        # Under IEB configurations the annotator *replaces* the acquire's
        # INV ALL with EpochBegin(ieb_mode=True); RC must treat that as
        # the region boundary or acquire-side invalidation is lost.
        if ieb_mode:
            self._acq_epoch[core] += 1
        return 1
