"""Memory-model registry: selectable consistency backends over one hierarchy.

A *memory model* is a :class:`~repro.coherence.base.Protocol` implementation
— the coherence/consistency discipline the caches obey — selected
independently of the machine geometry and of the simulator engine:

* ``base`` — the paper's software-managed incoherent hierarchy
  (:class:`~repro.coherence.incoherent.IncoherentProtocol`): WB/INV ISA,
  MEB/IEB, ThreadMap, exactly as configured by the Table II configuration.
* ``hcc``  — the hardware-coherent reference
  (:class:`~repro.coherence.mesi.MESIProtocol`): full-map directory MESI,
  the value oracle every other model is differentially verified against.
* ``rc``   — Regional Consistency (arXiv 1301.4490,
  :class:`~repro.models.rc.RegionalConsistencyProtocol`): coherence actions
  are scoped to acquire/release-delimited regions — a release flushes only
  the lines *written inside the region*, and an acquire invalidates lazily
  (per-read refresh) instead of walking the tag array.
* ``sisd`` — self-invalidation / self-downgrade ("Mending Fences",
  arXiv 1611.07372, :class:`~repro.models.sisd.SelfInvalidationProtocol`):
  no remote invalidations ever; synchronization points trigger
  self-invalidation of *shared* lines and self-downgrade of *shared dirty*
  lines, with a private/shared classifier supplying ownership-transition
  recovery.

All four run the same programs on the same :class:`~repro.coherence.
hierarchy.Hierarchy` under both simulator engines, cache separately in the
sweep result cache (the model id is part of the cell key), and are
differentially verified against the ``hcc`` oracle by ``repro litmus
--matrix`` and the chaos runner.

Selection mirrors :mod:`repro.engines`: pass ``model="rc"`` to
:class:`repro.core.machine.Machine` (or ``--model rc`` on the CLI), or set
``REPRO_MODEL``.  An explicit argument wins over the environment; the
default is ``base``.  Hardware-coherent Table II configurations always
resolve to ``hcc`` — HCC *is* a model, not a per-model variant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.coherence.base import Protocol
from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.mesi import MESIProtocol
from repro.coherence.threadmap import ThreadMapTable
from repro.common.errors import ConfigError
from repro.core.config import ExperimentConfig
from repro.models.rc import RegionalConsistencyProtocol
from repro.models.sisd import SelfInvalidationProtocol

#: Environment variable consulted when no explicit model is requested.
MODEL_ENV_VAR = "REPRO_MODEL"

#: Registry default (also used when ``REPRO_MODEL`` is unset or empty).
DEFAULT_MODEL = "base"

#: Factory signature every registered model provides: build the protocol
#: for one machine.  ``config`` lets the factory honor per-configuration
#: hardware (the base model's MEB/IEB); models that replace those
#: mechanisms ignore it.
ModelFactory = Callable[..., Protocol]


@dataclass(frozen=True)
class ModelSpec:
    """One selectable memory model: its protocol factory and metadata.

    ``software`` is True for models that consume WB/INV annotations (and
    therefore run under the software-coherent Table II configurations);
    the hardware-coherent ``hcc`` reference is the one False entry.
    """

    name: str
    description: str
    software: bool
    factory: ModelFactory


_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add *spec* to the registry (last registration of a name wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def available_models() -> tuple[str, ...]:
    """Registered model names, registration order."""
    return tuple(_REGISTRY)


def resolve_model(name: str | None = None) -> ModelSpec:
    """Resolve a model by *name*, the environment, or the default.

    ``None`` falls back to ``$REPRO_MODEL``, then to ``base``.  Unknown
    names raise :class:`~repro.common.errors.ConfigError` listing the
    registered models.
    """
    if name is None:
        name = os.environ.get(MODEL_ENV_VAR) or DEFAULT_MODEL
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown memory model {name!r} (available: "
            + ", ".join(available_models()) + ")"
        )
    return spec


def _make_base(
    hierarchy: Hierarchy,
    config: ExperimentConfig,
    *,
    threadmap: ThreadMapTable | None = None,
    detect_staleness: bool = False,
) -> Protocol:
    return IncoherentProtocol(
        hierarchy,
        use_meb=config.use_meb,
        use_ieb=config.use_ieb,
        threadmap=threadmap,
        detect_staleness=detect_staleness,
    )


def _make_hcc(
    hierarchy: Hierarchy,
    config: ExperimentConfig,
    *,
    threadmap: ThreadMapTable | None = None,
    detect_staleness: bool = False,
) -> Protocol:
    # MESI needs no ThreadMap and cannot go stale; both kwargs are part of
    # the uniform factory signature only.
    return MESIProtocol(hierarchy)


def _make_rc(
    hierarchy: Hierarchy,
    config: ExperimentConfig,
    *,
    threadmap: ThreadMapTable | None = None,
    detect_staleness: bool = False,
) -> Protocol:
    return RegionalConsistencyProtocol(
        hierarchy, threadmap=threadmap, detect_staleness=detect_staleness
    )


def _make_sisd(
    hierarchy: Hierarchy,
    config: ExperimentConfig,
    *,
    threadmap: ThreadMapTable | None = None,
    detect_staleness: bool = False,
) -> Protocol:
    return SelfInvalidationProtocol(
        hierarchy, threadmap=threadmap, detect_staleness=detect_staleness
    )


register_model(
    ModelSpec(
        name="base",
        description="software-managed incoherent hierarchy (the paper's "
        "design: WB/INV ISA, MEB/IEB, ThreadMap)",
        software=True,
        factory=_make_base,
    )
)
register_model(
    ModelSpec(
        name="hcc",
        description="hardware-coherent reference: full-map directory MESI "
        "(the differential value oracle)",
        software=False,
        factory=_make_hcc,
    )
)
register_model(
    ModelSpec(
        name="rc",
        description="Regional Consistency: release flushes only "
        "region-written lines; acquire invalidates lazily per read "
        "(arXiv 1301.4490)",
        software=True,
        factory=_make_rc,
    )
)
register_model(
    ModelSpec(
        name="sisd",
        description="self-invalidation/self-downgrade: sync-triggered "
        "SI of shared lines and SD of shared dirty lines, no remote "
        "invalidations (arXiv 1611.07372)",
        software=True,
        factory=_make_sisd,
    )
)
