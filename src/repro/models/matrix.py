"""The memory-model litmus matrix (``repro litmus --matrix``).

One batch of sweep cells runs every selected litmus kernel under every
registered memory model and every simulator engine, digests final main
memory per cell, and compares each digest against the hardware-coherent
(MESI) oracle run of the same kernel.  The verdict grid is the repo's
*model conformance* artifact: registered software models must be
bit-identical to HCC on every determinate kernel, and the deliberately
broken kernels document exactly which models each bug defeats.

Verdicts compare **final main memory** (the :func:`repro.mem.memory.image_digest`
fingerprint after the end-of-run verification flush), not observed load
values.  That is why three of the four broken kernels converge under every
model: their stale reads corrupt observations, but the closing flush still
pushes each thread's last write down, so the final image matches.  The one
broken kernel whose bug reaches main memory —
``lock_handoff_three_threads_broken``, a lost-update race — diverges under
``base`` and ``rc`` but *matches* under ``sisd``: the first remote touch of
a still-private dirty line triggers SISD's ownership-transition recovery,
which pushes the owner's copy down before the other thread reads it.
:data:`EXPECTED_DIVERGENCES` encodes these empirical facts; any cell whose
verdict disagrees with the table is *unexpected* and fails the matrix.

Every cell flows through one :class:`~repro.eval.parallel.SweepExecutor`
batch, so the matrix inherits process-pool fan-out, per-cell timeouts, and
the persistent result cache (which keys on the model id — see
``repro.eval.cache``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import ConfigError
from repro.core.config import INTER_ADDR_L, INTER_HCC, INTRA_BMI, INTRA_HCC

#: Grid schema version for the ``--json`` artifact.
MATRIX_SCHEMA = 1

#: Default model axis: every registered model, registry order.
DEFAULT_MODELS = ("base", "hcc", "rc", "sisd")

#: Default engine axis: both registered simulator cores.
DEFAULT_ENGINES = ("ref", "fast")

#: (model, kernel) pairs whose final-memory digest is *expected* to diverge
#: from the HCC oracle.  Everything else — determinate kernels under every
#: model, and broken kernels whose damage stays in observed values — is
#: expected to match.  See the module docstring for why the set is so small.
EXPECTED_DIVERGENCES: frozenset[tuple[str, str]] = frozenset(
    {
        ("base", "lock_handoff_three_threads_broken"),
        ("rc", "lock_handoff_three_threads_broken"),
    }
)


@dataclass(frozen=True)
class MatrixCell:
    """One (model × kernel × engine) point of the verdict grid."""

    model: str
    kernel: str
    engine: str
    verdict: str  # "match" | "diverge"
    expected: str  # "match" | "diverge"
    exec_time: int
    digest: str

    @property
    def unexpected(self) -> bool:
        """True when the verdict disagrees with the expectation table."""
        return self.verdict != self.expected

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "expected": self.expected,
            "unexpected": self.unexpected,
            "exec_time": self.exec_time,
            "digest": self.digest,
        }


@dataclass
class MatrixResult:
    """The full grid plus the per-kernel oracle digests."""

    models: tuple[str, ...]
    kernels: tuple[str, ...]
    engines: tuple[str, ...]
    cells: list[MatrixCell]
    oracle: dict[str, str] = field(default_factory=dict)
    sweep_summary: str = ""

    def cell(self, model: str, kernel: str, engine: str) -> MatrixCell:
        for c in self.cells:
            if (c.model, c.kernel, c.engine) == (model, kernel, engine):
                return c
        raise KeyError((model, kernel, engine))

    def unexpected(self) -> list[MatrixCell]:
        """Cells whose verdict disagrees with :data:`EXPECTED_DIVERGENCES`."""
        return [c for c in self.cells if c.unexpected]

    @property
    def ok(self) -> bool:
        """True when every cell matched its expectation."""
        return not self.unexpected()

    def model_exec_medians(self) -> dict[str, int]:
        """Per-model median simulated exec time across the grid (cycles)."""
        per: dict[str, list[int]] = {m: [] for m in self.models}
        for c in self.cells:
            per[c.model].append(c.exec_time)
        return {
            m: int(statistics.median(times)) for m, times in per.items() if times
        }

    def to_dict(self) -> dict:
        """JSON-safe grid: ``grid[model][kernel][engine]`` plus summaries."""
        grid: dict[str, dict[str, dict[str, dict]]] = {}
        for c in self.cells:
            grid.setdefault(c.model, {}).setdefault(c.kernel, {})[
                c.engine
            ] = c.to_dict()
        return {
            "schema": MATRIX_SCHEMA,
            "models": list(self.models),
            "kernels": list(self.kernels),
            "engines": list(self.engines),
            "grid": grid,
            "oracle": dict(self.oracle),
            "unexpected": [
                {
                    "model": c.model,
                    "kernel": c.kernel,
                    "engine": c.engine,
                    "verdict": c.verdict,
                    "expected": c.expected,
                }
                for c in self.unexpected()
            ],
            "model_exec_medians": self.model_exec_medians(),
            "ok": self.ok,
            "sweep": self.sweep_summary,
        }


def _validate_axes(
    models: Sequence[str] | None,
    kernels: Sequence[str] | None,
    engines: Sequence[str] | None,
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    from repro.engines import resolve_engine
    from repro.models import resolve_model
    from repro.workloads.litmus import LITMUS

    models = tuple(models) if models else DEFAULT_MODELS
    for m in models:
        resolve_model(m)  # raises ConfigError on unknown names
    if len(set(models)) != len(models):
        raise ConfigError("duplicate model in matrix axis")
    kernels = tuple(kernels) if kernels else tuple(LITMUS)
    for k in kernels:
        if k not in LITMUS:
            raise ConfigError(f"unknown litmus kernel {k!r}")
    engines = tuple(engines) if engines else DEFAULT_ENGINES
    for e in engines:
        resolve_engine(e)
    return models, kernels, engines


def matrix_cells(
    models: Sequence[str],
    kernels: Sequence[str],
    engines: Sequence[str],
):
    """Lower the grid to one deduplicated batch of sweep cells.

    Returns ``(cells, oracle_idx, grid_idx)`` where ``oracle_idx[kernel]``
    and ``grid_idx[(model, kernel, engine)]`` index into ``cells``.  The
    oracle — each kernel under its hardware-coherent configuration on the
    reference engine — rides in the *same* batch (deduplicated against the
    grid's own ``hcc``/``ref`` cells when present), so a cached or pooled
    run prices the whole matrix identically.  The serve layer feeds these
    cells to its own executor and folds results via
    :func:`assemble_matrix`; :func:`run_matrix` is the direct path.
    """
    from repro.eval.parallel import SweepCell
    from repro.workloads.litmus import LITMUS

    cells: list = []
    index_of: dict = {}

    def add(cell) -> int:
        if cell not in index_of:
            index_of[cell] = len(cells)
            cells.append(cell)
        return index_of[cell]

    def make(kernel: str, model: str, engine: str):
        inter = LITMUS[kernel].model == "inter"
        if model == "hcc":
            config = INTER_HCC if inter else INTRA_HCC
        else:
            config = INTER_ADDR_L if inter else INTRA_BMI
        return SweepCell.make(
            "litmus",
            kernel,
            config,
            verify=False,
            memory_digest=True,
            model=model,
            engine=engine,
        )

    oracle_idx = {k: add(make(k, "hcc", "ref")) for k in kernels}
    grid_idx = {
        (m, k, e): add(make(k, m, e))
        for m in models
        for k in kernels
        for e in engines
    }
    return cells, oracle_idx, grid_idx


def assemble_matrix(
    models: Sequence[str],
    kernels: Sequence[str],
    engines: Sequence[str],
    oracle_idx: dict,
    grid_idx: dict,
    results: list,
    *,
    sweep_summary: str = "",
) -> MatrixResult:
    """Fold the batch results of :func:`matrix_cells` into a grid."""
    oracle = {k: results[i].memory_digest for k, i in oracle_idx.items()}
    out: list[MatrixCell] = []
    for (m, k, e), i in grid_idx.items():
        r = results[i]
        verdict = "match" if r.memory_digest == oracle[k] else "diverge"
        expected = (
            "diverge" if (m, k) in EXPECTED_DIVERGENCES else "match"
        )
        out.append(
            MatrixCell(
                model=m,
                kernel=k,
                engine=e,
                verdict=verdict,
                expected=expected,
                exec_time=r.exec_time,
                digest=r.memory_digest,
            )
        )
    return MatrixResult(
        models=tuple(models),
        kernels=tuple(kernels),
        engines=tuple(engines),
        cells=out,
        oracle=oracle,
        sweep_summary=sweep_summary,
    )


def run_matrix(
    models: Sequence[str] | None = None,
    kernels: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    *,
    jobs: int | None = None,
    executor=None,
) -> MatrixResult:
    """Run the (model × kernel × engine) grid through one sweep batch."""
    from repro.eval.parallel import SweepExecutor

    models, kernels, engines = _validate_axes(models, kernels, engines)
    executor = executor or SweepExecutor(jobs=jobs)
    cells, oracle_idx, grid_idx = matrix_cells(models, kernels, engines)
    results = executor.run_cells(cells)
    return assemble_matrix(
        models, kernels, engines, oracle_idx, grid_idx, results,
        sweep_summary=executor.stats.summary(),
    )


def render_matrix(result: MatrixResult) -> str:
    """Text grid: one row per kernel, one column per model.

    Each cell shows one glyph per engine (axis order): ``=`` digest matches
    the HCC oracle, ``x`` expected divergence, ``!`` unexpected verdict.
    """
    def glyph(c: MatrixCell) -> str:
        if c.unexpected:
            return "!"
        return "=" if c.verdict == "match" else "x"

    by_key = {(c.model, c.kernel, c.engine): c for c in result.cells}
    name_w = max(len("kernel"), max((len(k) for k in result.kernels), default=0))
    col_w = max(
        len(result.engines) + 1,
        max((len(m) for m in result.models), default=0) + 1,
    )
    lines = [
        "memory-model litmus matrix "
        f"({len(result.models)} model(s) x {len(result.kernels)} kernel(s) "
        f"x {len(result.engines)} engine(s); "
        f"glyph per engine {'/'.join(result.engines)}: "
        "'=' match, 'x' expected divergence, '!' unexpected)",
        "kernel".ljust(name_w)
        + "".join(m.rjust(col_w) for m in result.models),
    ]
    for k in result.kernels:
        row = k.ljust(name_w)
        for m in result.models:
            glyphs = "".join(
                glyph(by_key[(m, k, e)]) for e in result.engines
            )
            row += glyphs.rjust(col_w)
        lines.append(row)
    medians = result.model_exec_medians()
    lines.append(
        "median exec (cycles): "
        + ", ".join(f"{m}={medians[m]}" for m in result.models if m in medians)
    )
    bad = result.unexpected()
    if bad:
        lines.append(f"UNEXPECTED verdicts: {len(bad)}")
        for c in bad:
            lines.append(
                f"  {c.model} x {c.kernel} x {c.engine}: "
                f"{c.verdict} (expected {c.expected})"
            )
    else:
        lines.append("all verdicts as expected")
    lines.append(result.sweep_summary)
    return "\n".join(lines)


def matrix_bench_payload(
    result: MatrixResult, seconds: list[float], *, warmup: int = 0
) -> dict:
    """``BENCH_matrix.json`` payload: wall clock + per-model exec medians."""
    from repro.eval.bench import record

    return record(
        "matrix",
        seconds,
        warmup=warmup,
        extra={
            "models": list(result.models),
            "kernels": len(result.kernels),
            "engines": list(result.engines),
            "cells": len(result.cells),
            "model_exec_medians": result.model_exec_medians(),
            "ok": result.ok,
        },
    )
