"""Statistics accounting: stall categories (Figure 9) and traffic (Figure 10).

The paper breaks execution time into five categories — *INV stall*, *WB
stall*, *lock stall*, *barrier stall*, and *rest* — and network traffic into
four — *memory* (L2↔memory), *linefill* (read/write miss fills), *writeback*,
and *invalidation*.  We accumulate exactly those buckets, per core for stalls
and machine-wide for traffic, plus raw event counters used by Figure 11 and
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum


class StallCat(str, Enum):
    """Execution-time categories of Figure 9."""

    INV = "inv_stall"
    WB = "wb_stall"
    LOCK = "lock_stall"
    BARRIER = "barrier_stall"
    REST = "rest"


class TrafficCat(str, Enum):
    """Network-traffic categories of Figure 10 (in 128-bit flits).

    SYNC covers the uncacheable synchronization requests/grants served by
    the shared-cache controller; it is kept separate so Figure 10's
    *invalidation* column reflects only coherence invalidations (zero in
    the incoherent hierarchy, as the paper observes).
    """

    MEMORY = "memory"
    LINEFILL = "linefill"
    WRITEBACK = "writeback"
    INVALIDATION = "invalidation"
    SYNC = "sync"


@dataclass
class CoreStats:
    """Per-core cycle and event accounting."""

    stalls: dict[StallCat, int] = field(
        default_factory=lambda: {c: 0 for c in StallCat}
    )
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    wb_ops: int = 0  # WB instructions executed (any flavor)
    inv_ops: int = 0  # INV instructions executed (any flavor)
    lines_written_back: int = 0
    lines_invalidated: int = 0
    finish_time: int = 0

    def add_stall(self, cat: StallCat, cycles: int) -> None:
        self.stalls[cat] += int(cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.stalls.values())

    def to_dict(self) -> dict:
        """JSON-safe form (enum keys flattened to their string values)."""
        d: dict = {"stalls": {c.value: n for c, n in self.stalls.items()}}
        for f in fields(self):
            if f.name != "stalls":
                d[f.name] = getattr(self, f.name)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CoreStats":
        scalars = {k: v for k, v in d.items() if k != "stalls"}
        cs = cls(**scalars)
        cs.stalls = {StallCat(k): int(v) for k, v in d["stalls"].items()}
        return cs


@dataclass
class MachineStats:
    """Machine-wide accounting for one simulation run."""

    per_core: list[CoreStats]
    traffic: dict[TrafficCat, int] = field(
        default_factory=lambda: {c: 0 for c in TrafficCat}
    )
    #: Level-adaptive accounting for Figure 11: operations that reached the
    #: global level (WB all the way to L3 / INV down from L2).
    global_wb_lines: int = 0
    global_inv_lines: int = 0
    local_wb_lines: int = 0
    local_inv_lines: int = 0
    #: Directory protocol event counters (HCC runs).
    dir_invalidations: int = 0
    dir_forwards: int = 0
    #: MEB/IEB degradation counters (Section IV-B), aggregated across cores
    #: at end of run and incremented live for the WB-ALL fallback:
    #: ``meb_overflow_events`` counts epochs whose MEB spilled,
    #: ``meb_wb_fallbacks`` counts WB ALLs that wanted the MEB but had to
    #: walk the full tag array, ``ieb_evictions`` counts FIFO displacements,
    #: and ``ieb_redundant_invalidations`` counts the re-invalidations those
    #: displacements later caused.  All zero under HCC.
    meb_overflow_events: int = 0
    meb_wb_fallbacks: int = 0
    ieb_evictions: int = 0
    ieb_redundant_invalidations: int = 0
    #: Per-model degradation counters (:mod:`repro.models`).  Regional
    #: Consistency: ``rc_region_wb_lines`` counts lines flushed by
    #: region-scoped WB ALLs, ``rc_lazy_refreshes`` counts reads that paid
    #: a deferred acquire invalidation.  SISD: ``sisd_transitions`` counts
    #: private→shared classifier flips, ``sisd_self_downgrades`` /
    #: ``sisd_self_invalidations`` count shared lines written back /
    #: dropped at synchronization points.  All zero under other models.
    rc_region_wb_lines: int = 0
    rc_lazy_refreshes: int = 0
    sisd_transitions: int = 0
    sisd_self_downgrades: int = 0
    sisd_self_invalidations: int = 0
    exec_time: int = 0
    #: When True, traffic accounting is suspended (set before the end-of-run
    #: cache flush so verification writebacks do not pollute Figure 10).
    frozen: bool = False

    @classmethod
    def for_cores(cls, num_cores: int) -> "MachineStats":
        return cls(per_core=[CoreStats() for _ in range(num_cores)])

    def add_traffic(self, cat: TrafficCat, flits: int) -> None:
        if not self.frozen:
            self.traffic[cat] += int(flits)

    @property
    def total_flits(self) -> int:
        return sum(self.traffic.values())

    def stall_total(self, cat: StallCat) -> int:
        return sum(core.stalls[cat] for core in self.per_core)

    def breakdown(self) -> dict[str, float]:
        """Average per-core cycle breakdown, normalized to exec_time.

        Figure 9 plots, for each configuration, execution time split into the
        five categories.  We report the mean across cores of each category
        (so the bars sum to mean total busy time) scaled onto the critical
        path ``exec_time``.
        """
        n = max(1, len(self.per_core))
        mean = {c: self.stall_total(c) / n for c in StallCat}
        busy = sum(mean.values())
        if busy <= 0:
            return {c.value: 0.0 for c in StallCat}
        scale = self.exec_time / busy if self.exec_time > 0 else 1.0
        return {c.value: mean[c] * scale for c in StallCat}

    def to_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_dict`.

        Needed by the process-pool sweep executor and the persistent result
        cache: a round trip must preserve every counter bit-for-bit.
        """
        d: dict = {
            "per_core": [c.to_dict() for c in self.per_core],
            "traffic": {c.value: n for c, n in self.traffic.items()},
        }
        for f in fields(self):
            if f.name not in ("per_core", "traffic"):
                d[f.name] = getattr(self, f.name)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "MachineStats":
        scalars = {k: v for k, v in d.items() if k not in ("per_core", "traffic")}
        ms = cls(per_core=[CoreStats.from_dict(c) for c in d["per_core"]], **scalars)
        ms.traffic = {TrafficCat(k): int(v) for k, v in d["traffic"].items()}
        return ms

    def summary(self) -> dict[str, int]:
        """Flat counter summary used by tests and reports."""
        return {
            "exec_time": self.exec_time,
            "loads": sum(c.loads for c in self.per_core),
            "stores": sum(c.stores for c in self.per_core),
            "l1_hits": sum(c.l1_hits for c in self.per_core),
            "l1_misses": sum(c.l1_misses for c in self.per_core),
            "wb_ops": sum(c.wb_ops for c in self.per_core),
            "inv_ops": sum(c.inv_ops for c in self.per_core),
            "lines_written_back": sum(c.lines_written_back for c in self.per_core),
            "lines_invalidated": sum(c.lines_invalidated for c in self.per_core),
            "global_wb_lines": self.global_wb_lines,
            "global_inv_lines": self.global_inv_lines,
            "local_wb_lines": self.local_wb_lines,
            "local_inv_lines": self.local_inv_lines,
            "dir_invalidations": self.dir_invalidations,
            "dir_forwards": self.dir_forwards,
            "rc_region_wb_lines": self.rc_region_wb_lines,
            "rc_lazy_refreshes": self.rc_lazy_refreshes,
            "sisd_transitions": self.sisd_transitions,
            "sisd_self_downgrades": self.sisd_self_downgrades,
            "sisd_self_invalidations": self.sisd_self_invalidations,
            "total_flits": self.total_flits,
        }
