"""Discrete-event simulation kernel.

A minimal, fast event wheel: callbacks scheduled at absolute times, executed
in time order (FIFO among equal times).  Cores, sync controllers, and the
message-passing layer all drive themselves by scheduling callbacks here.

The engine is *operation-level*: components compute an operation's latency
analytically from the modeled hierarchy and schedule a single completion
event, instead of simulating every cycle.  This is the substitution for the
paper's SESC cycle-level simulator (see DESIGN.md §2).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.common.errors import DeadlockError, SimulationError


class Engine:
    """Time-ordered callback executor with deadlock detection.

    The wheel is bucketed: callbacks are appended to a per-time list and a
    heap orders only the *distinct* times.  Equal-time callbacks run in
    scheduling order (the list is FIFO), exactly as the earlier
    ``(time, seq, callback)`` tuple heap did, but without allocating a
    tuple per event or comparing sequence numbers on every sift — barrier
    releases and back-to-back zero-delay steps share one bucket.
    """

    __slots__ = ("_now", "_seq", "_times", "_buckets", "_live_entities")

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        #: Min-heap of distinct pending times (each pushed exactly once).
        self._times: list[int] = []
        #: time -> FIFO list of callbacks scheduled for that time.
        self._buckets: dict[int, list[Callable[[], None]]] = {}
        #: Number of entities (cores) that have not finished their program.
        self._live_entities: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def register_entity(self) -> None:
        """Declare one more entity whose completion ends the simulation."""
        self._live_entities += 1

    def entity_finished(self) -> None:
        """Declare that one registered entity has run to completion."""
        if self._live_entities <= 0:
            raise SimulationError("entity_finished() without matching register")
        self._live_entities -= 1

    @property
    def live_entities(self) -> int:
        return self._live_entities

    @property
    def events_scheduled(self) -> int:
        """Total callbacks scheduled so far (the metrics hook point).

        Read once after :meth:`run` drains the queue — when it equals the
        number executed — so the observability layer costs the hot loop
        nothing.
        """
        return self._seq

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` (delay in cycles, >= 0).

        *delay* is coerced with ``int()`` **before** the negativity check, so
        float delays (e.g. ``1.5`` from scaled latencies) truncate toward
        zero consistently — ``-0.5`` becomes a legal delay of 0 rather than
        raising — while non-numeric delays fail loudly with ``TypeError``.
        """
        delay = int(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [callback]
            heapq.heappush(self._times, when)
        else:
            bucket.append(callback)

    def run(self, max_cycles: int | None = None) -> int:
        """Drain the event queue; return the finishing time in cycles.

        Raises :class:`DeadlockError` if live entities remain when the queue
        empties — every blocked core must have a wakeup path (a sync grant or
        a message arrival), so an empty queue with live entities means the
        simulated program deadlocked (e.g. a barrier some thread never
        reaches).
        """
        # The pop loop is the simulator's innermost loop: bind the heap and
        # heappop locally and skip the max_cycles comparison entirely in the
        # (default) unbounded case.  A bucket may grow while it drains
        # (zero-delay callbacks land at the current time), so it is walked
        # by index and only removed from the dict once exhausted.
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        while times:
            time = heappop(times)
            if max_cycles is not None and time > max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(next event at {time})"
                )
            self._now = time
            bucket = buckets[time]
            i = 0
            while i < len(bucket):
                bucket[i]()
                i += 1
            del buckets[time]
        if self._live_entities > 0:
            raise DeadlockError(
                f"{self._live_entities} entities still blocked with no pending "
                "events — simulated program deadlocked"
            )
        return self._now
