"""Subpackage of repro."""
