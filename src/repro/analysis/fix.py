"""``repro lint --fix``: turn findings into op-stream patches.

The lint checker attaches :class:`~repro.analysis.lint.FixHint` insertion
points (per-thread op index + word set) to every error finding.  This module
turns them into concrete level-adaptive operations the way the paper's
compiler would — ``WB_CONS``/``INV_PROD`` on multi-block machines (they pick
L2 vs L3 from the ThreadMap), plain ranged ``WB``/``INV`` on a single-block
machine — and splices them into the *original* thread generators.

Patching wraps, rather than replays: the original program keeps running and
producing values, and the wrapper injects the new ops at the recorded stream
positions.  The positions are valid because a fully patched program is
correctly annotated, so its dynamic control flow matches the sequentially
consistent extraction the positions came from.  Verification is therefore
end-to-end: re-run the patched kernel on the real simulator and compare
observations and final memory against a reference configuration.

A plan is **configuration-specific**: the ThreadCtx helpers expand
annotations (epoch markers, default WB/INV hints) according to the
machine's configuration, so stream indexes recorded under one configuration
do not line up under another.  Always extract, plan, and patch with the
same configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.hb import WORD
from repro.analysis.lint import LintReport
from repro.common.errors import AnalysisError
from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine

#: Above this many disjoint runs, a hint collapses into one covering range.
MAX_RANGES_PER_HINT = 16

#: One patch set: thread id -> sorted [(anchor index, ops to insert), ...].
PatchPlan = dict[int, list[tuple[int, list[isa.Op]]]]


def coalesce(words: set[int], max_ranges: int = MAX_RANGES_PER_HINT):
    """Merge word addresses into ``(addr, length)`` byte ranges.

    Adjacent words fuse into runs; if the result is longer than
    *max_ranges*, everything collapses into a single covering range (a
    wider-than-needed WB/INV is correct, merely less precise).
    """
    addrs = sorted(words)
    runs: list[tuple[int, int]] = []
    for a in addrs:
        if runs and runs[-1][0] + runs[-1][1] == a:
            runs[-1] = (runs[-1][0], runs[-1][1] + WORD)
        else:
            runs.append((a, WORD))
    if len(runs) > max_ranges:
        lo = addrs[0]
        hi = addrs[-1] + WORD
        return [(lo, hi - lo)]
    return runs


def plan_fixes(report: LintReport, machine: "Machine") -> PatchPlan:
    """Compute the per-thread insertion plan for *report*'s error findings.

    Warnings (redundant annotations) are diagnostic-only: ``--fix`` inserts
    missing operations, it never deletes existing ones.
    """
    level_adaptive = (
        getattr(machine, "num_blocks", machine.params.num_blocks) > 1
    )
    merged: dict[tuple[str, int, int, int], set[int]] = {}
    for finding in report.findings:
        if finding.severity != "error":
            continue
        for hint in finding.fixes:
            key = (hint.kind, hint.tid, hint.anchor, hint.peer)
            merged.setdefault(key, set()).update(hint.words)

    plan: PatchPlan = {}
    for (kind, tid, anchor, peer), words in sorted(merged.items()):
        ops: list[isa.Op] = []
        for addr, length in coalesce(words):
            if kind == "wb":
                ops.append(
                    isa.WBCons(addr, length, peer)
                    if level_adaptive
                    else isa.WB(addr, length)
                )
            else:
                ops.append(
                    isa.InvProd(addr, length, peer)
                    if level_adaptive
                    else isa.INV(addr, length)
                )
        plan.setdefault(tid, []).append((anchor, ops))
    for inserts in plan.values():
        inserts.sort(key=lambda pair: pair[0])
    return plan


def _patched(gen, inserts: list[tuple[int, list[isa.Op]]]) -> Iterator[isa.Op]:
    """Yield *gen*'s stream with *inserts* spliced in by op index.

    Injected WB/INV ops produce no values, so the send-value protocol of the
    wrapped generator (``value = yield Read(addr)``) is preserved verbatim.
    """
    pending: dict[int, list[isa.Op]] = {}
    for anchor, ops in inserts:
        pending.setdefault(anchor, []).extend(ops)
    idx = 0
    send: Any = None
    started = False
    while True:
        for op in pending.pop(idx, ()):
            yield op
        try:
            op = gen.send(send) if started else next(gen)
        except StopIteration:
            break
        started = True
        send = yield op
        idx += 1
    # Anchors at or past the end of the stream flush after the last op.
    for anchor in sorted(pending):
        for op in pending[anchor]:
            yield op


def apply_fixes(machine: "Machine", plan: PatchPlan) -> int:
    """Splice *plan* into a prepared (not yet run) machine's threads.

    Returns the number of inserted operations.  The machine must be a fresh
    instance, prepared identically to the one the lint report came from.
    """
    cpus = getattr(machine, "_cpus")
    if not cpus:
        raise AnalysisError("no threads spawned; prepare the machine first")
    inserted = 0
    for cpu in cpus:
        inserts = plan.get(cpu.tid)
        if inserts:
            cpu.program = _patched(cpu.program, inserts)
            inserted += sum(len(ops) for _, ops in inserts)
    return inserted


def render_plan(plan: PatchPlan) -> str:
    """Human-readable description of a patch plan."""
    if not plan:
        return "no fixes to apply"
    lines = ["planned insertions:"]
    for tid in sorted(plan):
        for anchor, ops in plan[tid]:
            for op in ops:
                lines.append(f"  tid {tid} @ op {anchor}: insert {op!r}")
    return "\n".join(lines)
