"""Per-thread control-flow graphs over extracted operation streams.

The extracted stream is a dynamic unrolling of the thread's control flow, so
its CFG is the paper's *epoch* structure made explicit: segments of plain
accesses bounded by synchronization events (Section IV-A inserts every
WB/INV at exactly these boundaries).  Each segment records which arrays it
reads and writes and which interprocedural call paths produced its
operations; the per-thread graphs are chained linearly (a thread is a single
in-order core) and cross-thread edges are the synchronization pairs that
:mod:`repro.analysis.hb` derives.

The call summary is the analyzer's interprocedural view: one entry per
function (workload program, ``ThreadCtx`` helper, annotator fragment,
Model-2 executor stage) with the number and kinds of ops it emitted.
Diagnostics use it to name the helper that should have carried an
annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.extract import KernelTrace, OpEvent
from repro.isa import ops as isa


@dataclass
class Segment:
    """One epoch: the ops of one thread between two synchronization events.

    ``opens`` is the sync event starting the segment (``None`` for thread
    entry); ``closes`` is the sync event ending it (``None`` for thread
    exit).  ``start``/``end`` index the thread's event list (half-open).
    """

    seg_id: int
    tid: int
    start: int
    end: int
    opens: OpEvent | None = None
    closes: OpEvent | None = None
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    annotations: list[OpEvent] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable location, used in diagnostics."""
        left = self.opens.op.mnemonic if self.opens else "entry"
        right = self.closes.op.mnemonic if self.closes else "exit"
        return f"segment {self.seg_id} ({left} .. {right})"


@dataclass
class CallSite:
    """Aggregate of every op one function emitted on one thread."""

    qualname: str
    ops: int = 0
    kinds: dict[str, int] = field(default_factory=dict)

    def count(self, op: isa.Op) -> None:
        """Fold one op into the aggregate."""
        self.ops += 1
        self.kinds[op.mnemonic] = self.kinds.get(op.mnemonic, 0) + 1


@dataclass
class ThreadCFG:
    """Linear chain of epoch segments plus the thread's call summary."""

    tid: int
    segments: list[Segment]
    calls: dict[str, CallSite]

    def segment_of(self, idx: int) -> Segment:
        """Segment containing the thread's op at stream position *idx*."""
        for seg in self.segments:
            if seg.start <= idx < max(seg.end, seg.start + 1):
                return seg
        return self.segments[-1]


def build_cfg(trace: KernelTrace, tid: int) -> ThreadCFG:
    """Build one thread's epoch CFG from its extracted stream."""
    events = trace.per_thread[tid]
    segments: list[Segment] = []
    seg = Segment(seg_id=0, tid=tid, start=0, end=0)
    calls: dict[str, CallSite] = {}
    for pos, ev in enumerate(events):
        # Innermost frame is the function that physically yielded the op.
        leaf = ev.call_path[-1] if ev.call_path else "<unknown>"
        site = calls.get(leaf)
        if site is None:
            site = calls[leaf] = CallSite(leaf)
        site.count(ev.op)

        if isinstance(ev.op, isa.SYNC_OPS):
            seg.end = pos
            seg.closes = ev
            segments.append(seg)
            seg = Segment(
                seg_id=len(segments), tid=tid, start=pos + 1, end=pos + 1,
                opens=ev,
            )
            continue
        if isinstance(ev.op, isa.Read):
            seg.reads.add(trace.array_of(ev.op.addr))
        elif isinstance(ev.op, isa.Write):
            seg.writes.add(trace.array_of(ev.op.addr))
        elif isinstance(ev.op, isa.WB_OPS + isa.INV_OPS):
            seg.annotations.append(ev)
    seg.end = len(events)
    segments.append(seg)
    return ThreadCFG(tid=tid, segments=segments, calls=calls)


def build_cfgs(trace: KernelTrace) -> list[ThreadCFG]:
    """One epoch CFG per thread."""
    return [build_cfg(trace, tid) for tid in range(trace.num_threads)]


def render_cfg(cfg: ThreadCFG) -> str:
    """Human-readable dump of one thread's CFG (``repro lint --dump-cfg``)."""
    lines = [f"thread {cfg.tid}: {len(cfg.segments)} segment(s)"]
    for seg in cfg.segments:
        n_ops = seg.end - seg.start
        lines.append(
            f"  {seg.describe()}: {n_ops} op(s), "
            f"reads {sorted(seg.reads) or '-'}, "
            f"writes {sorted(seg.writes) or '-'}, "
            f"{len(seg.annotations)} annotation(s)"
        )
    lines.append("  call summary:")
    for name in sorted(cfg.calls):
        site = cfg.calls[name]
        kinds = ", ".join(
            f"{k}×{v}" for k, v in sorted(site.kinds.items())
        )
        lines.append(f"    {name}: {site.ops} op(s) [{kinds}]")
    return "\n".join(lines)
