"""The annotation rule catalog (Section IV-A Table I, normative form).

Each :class:`Rule` is one row of the catalog every lint diagnostic cites.
The IDs are stable identifiers — they appear in text and JSON reports and
anchor into ``docs/ANNOTATIONS.md`` (rule ``WB-BAR`` is documented at
``docs/ANNOTATIONS.md#wb-bar``), so tooling and humans land on the same
normative description of why an annotation is required.

Rule families:

``*-BAR`` / ``*-REL`` / ``*-ACQ`` / ``*-FLAG`` / ``*-OCC``
    Missing annotations on synchronized communication, split by the
    synchronization idiom that orders the producer before the consumer
    (barrier, critical section, condition flag, or sync that orders data
    written *outside* the protecting construct — the paper's "occasional"
    updates).
``*-RACE``
    Deliberately unsynchronized communication (Figure 6b) lacking the
    WB-after-store / INV-before-load pattern that makes it merely racy
    instead of silently stale forever.
``*-LEVEL``
    An annotation exists but stops at the wrong cache level for the
    producer/consumer placement (Section V-B level-adaptive ops).
``*-RED``
    Redundant annotations: explicitly ranged WB/INV whose range provably
    covers no communicated data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rule:
    """One normative annotation rule.

    ``severity`` is ``"error"`` (a correctness hazard: stale read or lost
    update is possible) or ``"warning"`` (a performance hazard only).
    ``requirement`` states the Table I obligation; ``remedy`` is the
    level-adaptive fix ``repro lint --fix`` applies.
    """

    rule_id: str
    severity: str
    title: str
    requirement: str
    remedy: str

    @property
    def anchor(self) -> str:
        """Anchor of this rule's section in ``docs/ANNOTATIONS.md``."""
        return f"docs/ANNOTATIONS.md#{self.rule_id.lower()}"


_CATALOG = [
    Rule(
        "WB-BAR", "error", "missing write-back before barrier",
        "Data written before a barrier and read after it by another thread "
        "must be written back (WB) before the producer enters the barrier.",
        "insert WB_CONS(range, consumer) before the producer's barrier",
    ),
    Rule(
        "INV-BAR", "error", "missing invalidation after barrier",
        "A thread reading data produced by another thread before a barrier "
        "must self-invalidate (INV) its stale copies after leaving the "
        "barrier and before the first read.",
        "insert INV_PROD(range, producer) after the consumer's barrier",
    ),
    Rule(
        "WB-REL", "error", "missing write-back before lock release",
        "Data written inside a critical section must be written back "
        "before the lock release that publishes it.",
        "insert WB_CONS(range, consumer) before the lock release",
    ),
    Rule(
        "INV-ACQ", "error", "missing invalidation after lock acquire",
        "A thread entering a critical section must self-invalidate its "
        "copies of the protected data after the acquire, before reading.",
        "insert INV_PROD(range, producer) after the lock acquire",
    ),
    Rule(
        "WB-FLAG", "error", "missing write-back before flag set",
        "Data published through a condition flag must be written back "
        "before the flag set that signals the consumer.",
        "insert WB_CONS(range, consumer) before the flag set",
    ),
    Rule(
        "INV-FLAG", "error", "missing invalidation after flag wait",
        "A thread consuming data signalled through a condition flag must "
        "self-invalidate its stale copies after the flag wait succeeds.",
        "insert INV_PROD(range, producer) after the flag wait",
    ),
    Rule(
        "WB-OCC", "error", "missing write-back for occasional update",
        "Data written outside the synchronization construct that orders "
        "it (an occasional update) must still be written back before the "
        "ordering release-side operation.",
        "insert WB_CONS(range, consumer) before the ordering release",
    ),
    Rule(
        "INV-OCC", "error", "missing invalidation for occasional read",
        "A thread reading occasionally-updated data must self-invalidate "
        "after the ordering acquire-side operation, before the read.",
        "insert INV_PROD(range, producer) after the ordering acquire",
    ),
    Rule(
        "WB-RACE", "error", "unannotated racy write",
        "A data write with no synchronization ordering it before a remote "
        "access must be immediately followed by a WB in program order "
        "(Figure 6b pattern), or the remote thread can miss it forever.",
        "insert WB_CONS(word, consumer) immediately after the store",
    ),
    Rule(
        "INV-RACE", "error", "unannotated racy read",
        "A read racing with a remote write must be immediately preceded "
        "by an INV in program order (Figure 6b pattern), or it can return "
        "the same stale value forever.",
        "insert INV_PROD(word, producer) immediately before the load",
    ),
    Rule(
        "WB-LEVEL", "error", "write-back stops below the consumer",
        "When producer and consumer are in different blocks, the WB must "
        "reach the shared L3 (WB_L3, WB ALL_L3, or WB_CONS with a remote "
        "consumer); an L2-level WB leaves the data invisible to the "
        "consumer's block.",
        "replace with / add WB_CONS(range, consumer) or WB_L3(range)",
    ),
    Rule(
        "INV-LEVEL", "error", "invalidation stops above the stale copy",
        "When producer and consumer are in different blocks, the INV must "
        "also invalidate the consumer's L2 (INV_L2, INV ALL_L2, or "
        "INV_PROD with a remote producer); an L1-only INV re-fetches the "
        "stale L2 copy.",
        "replace with / add INV_PROD(range, producer) or INV_L2(range)",
    ),
    Rule(
        "WB-RED", "warning", "redundant write-back",
        "An explicitly ranged WB whose range contains no word dirtied by "
        "this thread since the last covering write-back does nothing but "
        "consume cycles and write-buffer slots.",
        "delete the WB or narrow its range to the words actually written",
    ),
    Rule(
        "INV-RED", "warning", "redundant invalidation",
        "An explicitly ranged INV whose range contains no word this "
        "thread later reads — or no word ever written by another thread — "
        "only destroys locality (extra misses, no correctness benefit).",
        "delete the INV or narrow its range to the words actually shared",
    ),
]

#: The catalog, keyed by rule ID.
RULES: dict[str, Rule] = {r.rule_id: r for r in _CATALOG}


@dataclass(frozen=True)
class ModelLintProfile:
    """How one memory model (:mod:`repro.models`) parameterizes the catalog.

    Table I is written for the ``base`` incoherent hierarchy; other models
    discharge some obligations in the protocol itself.  ``waived`` lists
    the rule IDs whose findings that model's lint run drops, ``rationale``
    says why in one sentence, and ``notes`` carries per-rule commentary
    for rules the model *keeps* but reinterprets (rendered in
    ``docs/ANNOTATIONS.md`` and JSON reports).
    """

    model: str
    waived: frozenset[str]
    rationale: str
    notes: dict[str, str] = field(default_factory=dict)

    def keeps(self, rule_id: str) -> bool:
        """True when findings of *rule_id* survive under this model."""
        return rule_id not in self.waived


#: Per-model lint profiles, keyed by registered model name.
MODEL_PROFILES: dict[str, ModelLintProfile] = {
    "base": ModelLintProfile(
        model="base",
        waived=frozenset(),
        rationale="the catalog's native model: every Table I obligation "
        "applies verbatim",
    ),
    "hcc": ModelLintProfile(
        model="hcc",
        waived=frozenset(RULES),
        rationale="hardware MESI invalidates and forwards on its own; no "
        "annotation is ever required (HCC configurations are rejected by "
        "the lint front-ends for exactly this reason)",
    ),
    "rc": ModelLintProfile(
        model="rc",
        waived=frozenset({"WB-OCC", "WB-RED", "INV-RED"}),
        rationale="the region write set spans every write since the last "
        "region flush, so a release-side WB ALL already covers lines "
        "written outside the protecting construct, and no WB before "
        "release is needed for non-region lines; acquire invalidation is "
        "lazy, so redundant annotations cost (nearly) nothing",
        notes={
            "WB-REL": "the release's WB ALL flushes only region-written "
            "lines — precise by construction, no MEB epoch to miss",
            "INV-ACQ": "discharged lazily: the acquire opens an epoch and "
            "each stale line pays its refresh on first read",
        },
    ),
    "sisd": ModelLintProfile(
        model="sisd",
        waived=frozenset({"WB-RED", "INV-RED"}),
        rationale="WB/INV ranges are ignored — every annotation triggers "
        "a full self-downgrade/self-invalidation of the shared set, so "
        "'redundant by range' has no meaning; every INV-side error rule "
        "is kept because nothing ever invalidates a copy remotely — a "
        "consumer that skips its own SI keeps its stale line forever",
        notes={
            "INV-BAR": "SISD forbids relying on remote invalidation: only "
            "the consumer's own sync-triggered SI removes stale copies",
            "WB-BAR": "first-touch transition recovery rescues lines "
            "communicated while still private, but every later round "
            "needs the sync-triggered SD this annotation provides",
        },
    ),
}


def lint_profile(model: str | None = None) -> ModelLintProfile:
    """The lint profile for *model* (default ``base``).

    Unknown model names raise ``KeyError`` — the CLI validates against the
    model registry before reaching this point.
    """
    return MODEL_PROFILES[model or "base"]
