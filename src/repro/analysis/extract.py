"""Operation-stream extraction: the analyzer's front end.

A Model-1 kernel is a Python generator over :mod:`repro.isa.ops`; the
"program text" the static pass analyzes is the linear operation stream each
thread produces.  This module obtains that stream *without running the cache
simulator*: the spawned thread generators are driven by a sequentially
consistent reference scheduler (flat word store, exact barrier/lock/flag
semantics, no caches, no timing).  Because the store is sequentially
consistent, loaded values — and therefore all value-dependent control flow —
match what a correctly annotated program observes, so the recorded streams
are a faithful unrolling of each thread's control-flow graph.

Interprocedural context comes for free from the generator machinery: at
every yield the live ``yield from`` chain (workload program → ``ThreadCtx``
helper → annotator fragment) is walked and recorded as the op's call path.
This is the analyzer's interprocedural call summary — diagnostics can say
*which* helper emitted (or should have emitted) an annotation.

Blocking operations are recorded at their *completion* point, so the global
event order is a legal sequentially-consistent linearization: a lock acquire
appears after the release that granted it, a barrier round appears as one
consecutive group, and a flag wait appears after the set that satisfied it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.common.errors import AnalysisError
from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine

#: Ops a thread may execute before the scheduler rotates to the next thread.
DEFAULT_QUANTUM = 4096

#: Hard cap on total extracted operations (runaway-kernel backstop).
DEFAULT_MAX_OPS = 8_000_000


@dataclass(frozen=True)
class OpEvent:
    """One operation executed by one thread, in extraction order.

    ``idx`` is the op's position in its thread's stream (the insertion index
    used by :mod:`repro.analysis.fix` patches); ``seq`` is the global
    sequentially-consistent position.  ``call_path`` is the interprocedural
    context, outermost frame first.  ``group`` ties the participants of one
    barrier round together.  ``locks_held`` are the lock IDs the thread held
    when the op completed.
    """

    tid: int
    idx: int
    seq: int
    op: isa.Op
    call_path: tuple[str, ...]
    group: int | None = None
    locks_held: frozenset[int] = frozenset()


@dataclass
class KernelTrace:
    """Everything the downstream analysis stages consume.

    The originating :class:`~repro.core.machine.Machine` is retained (never
    run) for its address space, placement, and configuration — the analyzer
    needs array names for diagnostics and block geometry for level checks.
    """

    machine: "Machine"
    events: list[OpEvent]
    per_thread: list[list[OpEvent]]

    @property
    def num_threads(self) -> int:
        """Number of extracted thread streams."""
        return len(self.per_thread)

    def array_of(self, byte_addr: int) -> str:
        """Name of the shared array owning *byte_addr* (or a hex fallback)."""
        alloc = self.machine.space.owner_of(byte_addr)
        return alloc.name if alloc is not None else f"0x{byte_addr:x}"

    def sync_events(self, tid: int) -> Iterator[OpEvent]:
        """The synchronization events of one thread, in program order."""
        for ev in self.per_thread[tid]:
            if isinstance(ev.op, isa.SYNC_OPS):
                yield ev


# ---------------------------------------------------------------------------
# reference scheduler internals
# ---------------------------------------------------------------------------


def _call_path(gen) -> tuple[str, ...]:
    """Walk the live ``yield from`` chain and return the qualname path."""
    path: list[str] = []
    g = gen
    while g is not None:
        code = getattr(g, "gi_code", None)
        if code is None:
            break
        path.append(getattr(code, "co_qualname", code.co_name))
        g = getattr(g, "gi_yieldfrom", None)
    return tuple(path)


@dataclass
class _Thread:
    """Scheduler bookkeeping for one extracted thread."""

    tid: int
    gen: Any
    send: Any = None
    started: bool = False
    done: bool = False
    blocked: str | None = None
    locks_held: frozenset[int] = frozenset()
    events: list[OpEvent] = field(default_factory=list)
    #: (op, call_path) of a blocking op issued but not yet completed.
    pending: tuple[isa.Op, tuple[str, ...]] | None = None
    #: A batch op split across quantum boundaries:
    #: (op, call_path, next micro-op index, values read so far).
    batch: tuple[isa.Op, tuple[str, ...], int, list] | None = None


class _Extractor:
    """Sequentially consistent reference execution of all spawned threads."""

    def __init__(self, machine: "Machine", quantum: int, max_ops: int) -> None:
        cpus = getattr(machine, "_cpus")
        if not cpus:
            raise AnalysisError("no threads spawned; call prepare() first")
        self.machine = machine
        self.quantum = quantum
        self.max_ops = max_ops
        self.threads = [_Thread(cpu.tid, cpu.program) for cpu in cpus]
        self.mem: dict[int, Any] = {}
        self.runnable: deque[int] = deque(t.tid for t in self.threads)
        self.seq = 0
        self.total_ops = 0
        # Synchronization state mirroring repro.sync.primitives semantics.
        self.barrier_count: dict[int, int] = {}
        self.barrier_waiting: dict[int, list[int]] = {}
        self.barrier_round = 0
        self.lock_holder: dict[int, int] = {}
        self.lock_queue: dict[int, deque[int]] = {}
        self.flag_value: dict[int, int] = {}
        self.flag_waiting: dict[int, list[tuple[int, int]]] = {}

    # -- memory -------------------------------------------------------------

    def _read(self, byte_addr: int) -> Any:
        word = byte_addr // 4
        if word in self.mem:
            return self.mem[word]
        return self.machine.read_word(byte_addr)

    def _write(self, byte_addr: int, value: Any) -> None:
        self.mem[byte_addr // 4] = value

    # -- event recording ----------------------------------------------------

    def _record(
        self,
        thread: _Thread,
        op: isa.Op,
        call_path: tuple[str, ...],
        group: int | None = None,
    ) -> None:
        thread.events.append(
            OpEvent(
                tid=thread.tid,
                idx=len(thread.events),
                seq=self.seq,
                op=op,
                call_path=call_path,
                group=group,
                locks_held=thread.locks_held,
            )
        )
        self.seq += 1

    def _wake(self, tid: int) -> None:
        thread = self.threads[tid]
        thread.blocked = None
        thread.pending = None
        self.runnable.append(tid)

    # -- sync completion helpers --------------------------------------------

    def _complete_barrier(self, bid: int) -> None:
        """Record one whole barrier round and wake every participant."""
        group = self.barrier_round
        self.barrier_round += 1
        waiting = self.barrier_waiting.pop(bid)
        for tid in sorted(waiting):
            thread = self.threads[tid]
            op, path = thread.pending  # type: ignore[misc]
            self._record(thread, op, path, group=group)
            if thread.blocked is not None:
                self._wake(tid)
            else:  # the last arriver was never blocked
                thread.pending = None

    def _grant_lock(self, lid: int, tid: int) -> None:
        thread = self.threads[tid]
        self.lock_holder[lid] = tid
        thread.locks_held = thread.locks_held | {lid}
        op, path = thread.pending  # type: ignore[misc]
        self._record(thread, op, path)
        self._wake(tid)

    def _settle_flag(self, fid: int) -> None:
        value = self.flag_value.get(fid, 0)
        waiting = self.flag_waiting.get(fid, [])
        still = [(tid, th) for tid, th in waiting if th > value]
        ready = [(tid, th) for tid, th in waiting if th <= value]
        self.flag_waiting[fid] = still
        for tid, _ in sorted(ready):
            thread = self.threads[tid]
            op, path = thread.pending  # type: ignore[misc]
            self._record(thread, op, path)
            self._wake(tid)

    # -- the scheduler ------------------------------------------------------

    def run(self) -> None:
        """Drive every thread to completion (or diagnose a deadlock)."""
        while self.runnable:
            tid = self.runnable.popleft()
            thread = self.threads[tid]
            if thread.done or thread.blocked is not None:
                continue
            self._run_quantum(thread)
            if not (thread.done or thread.blocked is not None):
                self.runnable.append(tid)
        blocked = [t for t in self.threads if not t.done]
        if blocked:
            detail = ", ".join(
                f"tid {t.tid} on {t.blocked}" for t in blocked
            )
            raise AnalysisError(
                f"extraction deadlocked with {len(blocked)} thread(s) "
                f"blocked: {detail}"
            )

    def _run_quantum(self, thread: _Thread) -> None:
        gen = thread.gen
        budget = self.quantum
        while budget > 0:
            if thread.batch is not None:
                budget = self._resume_batch(thread, budget)
                continue
            try:
                op = gen.send(thread.send) if thread.started else next(gen)
            except StopIteration:
                thread.done = True
                return
            thread.started = True
            thread.send = None
            path = _call_path(gen)
            if type(op) in isa.BATCH_OPS:
                # Batches are charged per expanded micro-op, and the
                # quantum boundary may fall inside one — the word-level
                # interleaving is exactly that of the scalar form.
                thread.batch = (op, path, 0, [])
                budget = self._resume_batch(thread, budget)
                continue
            budget -= 1
            self._charge()
            if not self._execute(thread, op, path):
                return  # blocked

    def _charge(self) -> None:
        self.total_ops += 1
        if self.total_ops > self.max_ops:
            raise AnalysisError(
                f"extraction exceeded {self.max_ops} operations; "
                "raise max_ops or shrink the kernel scale"
            )

    def _resume_batch(self, thread: _Thread, budget: int) -> int:
        """Execute micro-ops of the thread's in-progress batch.

        Read-modify-write batches expand to two micro-ops per element, and
        the quantum boundary may fall between them, exactly as it could
        between the scalar ``Read`` and ``Write``.  ``thread.send`` is only
        delivered once the whole batch has executed.
        """
        op, path, pos, acc = thread.batch  # type: ignore[misc]
        kind = type(op)
        if kind is isa.ReadBatch:
            addrs = op.addrs
            total = len(addrs)
            while pos < total and budget > 0:
                acc.append(self._read(addrs[pos]))
                self._record(thread, isa.Read(addrs[pos]), path)
                pos += 1
                budget -= 1
                self._charge()
            done = pos == total
            if done:
                thread.send = acc
        elif kind is isa.WriteBatch:
            addrs, values = op.addrs, op.values
            if len(addrs) != len(values):
                raise AnalysisError("WriteBatch addrs/values length mismatch")
            total = len(addrs)
            while pos < total and budget > 0:
                self._write(addrs[pos], values[pos])
                self._record(thread, isa.Write(addrs[pos], values[pos]), path)
                pos += 1
                budget -= 1
                self._charge()
            done = pos == total
        elif kind is isa.CopyBatch:
            srcs, dsts = op.src_addrs, op.dst_addrs
            if len(srcs) != len(dsts):
                raise AnalysisError("CopyBatch src/dst length mismatch")
            total = 2 * len(srcs)
            while pos < total and budget > 0:
                k, phase = divmod(pos, 2)
                if phase == 0:
                    acc.append(self._read(srcs[k]))
                    self._record(thread, isa.Read(srcs[k]), path)
                else:
                    self._write(dsts[k], acc[k])
                    self._record(thread, isa.Write(dsts[k], acc[k]), path)
                pos += 1
                budget -= 1
                self._charge()
            done = pos == total
        elif kind is isa.AddBatch:
            addrs, deltas = op.addrs, op.deltas
            if len(addrs) != len(deltas):
                raise AnalysisError("AddBatch addrs/deltas length mismatch")
            total = 2 * len(addrs)
            while pos < total and budget > 0:
                k, phase = divmod(pos, 2)
                if phase == 0:
                    acc.append(self._read(addrs[k]))
                    self._record(thread, isa.Read(addrs[k]), path)
                else:
                    new = acc[k] + deltas[k]
                    self._write(addrs[k], new)
                    self._record(thread, isa.Write(addrs[k], new), path)
                pos += 1
                budget -= 1
                self._charge()
            done = pos == total
        else:  # pragma: no cover - BATCH_OPS is exhaustive
            raise AnalysisError(f"unknown batch op {kind.__name__}")
        thread.batch = None if done else (op, path, pos, acc)
        return budget

    def _execute(
        self, thread: _Thread, op: isa.Op, path: tuple[str, ...]
    ) -> bool:
        """Apply one op; record it; return False when the thread blocked."""
        kind = type(op)
        if kind is isa.Read:
            thread.send = self._read(op.addr)
            self._record(thread, op, path)
            return True
        if kind is isa.Write:
            self._write(op.addr, op.value)
            self._record(thread, op, path)
            return True
        if kind is isa.Barrier:
            return self._exec_barrier(thread, op, path)
        if kind is isa.LockAcquire:
            return self._exec_acquire(thread, op, path)
        if kind is isa.LockRelease:
            return self._exec_release(thread, op, path)
        if kind is isa.FlagSet:
            return self._exec_flag_set(thread, op, path)
        if kind is isa.FlagWait:
            return self._exec_flag_wait(thread, op, path)
        # Compute, every WB/INV flavor, and epoch markers have no
        # sequential-semantics effect — they are recorded for the checker.
        self._record(thread, op, path)
        return True

    def _exec_barrier(
        self, thread: _Thread, op: isa.Barrier, path: tuple[str, ...]
    ) -> bool:
        known = self.barrier_count.get(op.bid)
        if known is not None and known != op.count:
            raise AnalysisError(
                f"barrier {op.bid} redeclared with count {op.count} != {known}"
            )
        self.barrier_count[op.bid] = op.count
        waiting = self.barrier_waiting.setdefault(op.bid, [])
        waiting.append(thread.tid)
        thread.pending = (op, path)
        if len(waiting) == op.count:
            self._complete_barrier(op.bid)
            return thread.blocked is None and thread.pending is None
        thread.blocked = f"barrier {op.bid}"
        return False

    def _exec_acquire(
        self, thread: _Thread, op: isa.LockAcquire, path: tuple[str, ...]
    ) -> bool:
        holder = self.lock_holder.get(op.lid)
        if holder is None:
            self.lock_holder[op.lid] = thread.tid
            thread.locks_held = thread.locks_held | {op.lid}
            self._record(thread, op, path)
            return True
        if holder == thread.tid:
            raise AnalysisError(
                f"tid {thread.tid} re-acquired non-reentrant lock {op.lid}"
            )
        self.lock_queue.setdefault(op.lid, deque()).append(thread.tid)
        thread.pending = (op, path)
        thread.blocked = f"lock {op.lid}"
        return False

    def _exec_release(
        self, thread: _Thread, op: isa.LockRelease, path: tuple[str, ...]
    ) -> bool:
        if self.lock_holder.get(op.lid) != thread.tid:
            raise AnalysisError(
                f"tid {thread.tid} released lock {op.lid} held by "
                f"{self.lock_holder.get(op.lid)!r}"
            )
        thread.locks_held = thread.locks_held - {op.lid}
        self._record(thread, op, path)
        queue = self.lock_queue.get(op.lid)
        if queue:
            self._grant_lock(op.lid, queue.popleft())
        else:
            del self.lock_holder[op.lid]
        return True

    def _exec_flag_set(
        self, thread: _Thread, op: isa.FlagSet, path: tuple[str, ...]
    ) -> bool:
        current = self.flag_value.get(op.fid, 0)
        if op.value < current:
            raise AnalysisError(
                f"flag {op.fid} values are monotonic "
                f"(have {current}, got {op.value})"
            )
        self.flag_value[op.fid] = op.value
        self._record(thread, op, path)
        self._settle_flag(op.fid)
        return True

    def _exec_flag_wait(
        self, thread: _Thread, op: isa.FlagWait, path: tuple[str, ...]
    ) -> bool:
        if self.flag_value.get(op.fid, 0) >= op.value:
            self._record(thread, op, path)
            return True
        self.flag_waiting.setdefault(op.fid, []).append(
            (thread.tid, op.value)
        )
        thread.pending = (op, path)
        thread.blocked = f"flag {op.fid}"
        return False


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def extract(
    machine: "Machine",
    *,
    quantum: int = DEFAULT_QUANTUM,
    max_ops: int = DEFAULT_MAX_OPS,
) -> KernelTrace:
    """Extract every spawned thread's operation stream from *machine*.

    The machine must be fully prepared (arrays allocated, inputs preloaded,
    threads spawned) but **not** run — extraction replaces ``run()`` with a
    sequentially consistent reference execution.  The machine is left
    un-run; callers that also want simulator results must build a second
    machine.
    """
    ex = _Extractor(machine, quantum, max_ops)
    ex.run()
    events = sorted(
        (ev for t in ex.threads for ev in t.events), key=lambda e: e.seq
    )
    return KernelTrace(
        machine=machine,
        events=events,
        per_thread=[t.events for t in ex.threads],
    )
