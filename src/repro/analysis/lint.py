"""The annotation rule checker behind ``repro lint``.

Consumes the communication edges of :mod:`repro.analysis.hb` and checks each
against the Section IV-A Table I obligations catalogued in
:mod:`repro.analysis.rules`:

* every cross-thread read-after-write edge needs a **covering WB** (emitted
  by the producer after the write, ordered before the read) and a **covering
  INV** (emitted by the consumer before the read, ordered after the write);
* every cross-thread write-after-write edge needs the covering WB (or the
  earlier write can resurface later — a lost update);
* unordered edges must follow the Figure 6b annotated-race pattern
  (WB immediately after the store, INV immediately before each load);
* on multi-block machines, cross-block edges additionally need annotations
  that reach the shared L3 / invalidate the local L2 (Section V-B);
* explicitly ranged WB/INV ops whose range provably covers no communication
  are reported as redundant (performance, not correctness).

Two placement idioms of :class:`repro.core.annotate.Annotator` are modelled
explicitly: an INV placed immediately *before* an acquire counts as ordered
by that acquire (the cache cannot change in between — only non-memory ops
separate them), and ``WB ALL via-MEB`` only covers writes made after the
epoch's ``EpochBegin``.

Findings are aggregated per (rule, array, producer, consumer, call site) and
carry the op-stream insertion hints :mod:`repro.analysis.fix` consumes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.extract import KernelTrace, OpEvent, extract
from repro.analysis.hb import WORD, AnnotEvent, CommEdge, analyze_hb
from repro.analysis.rules import RULES, lint_profile

from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine


@dataclass
class FixHint:
    """One op-stream insertion ``repro lint --fix`` should perform.

    ``anchor`` is a per-thread op index in the *original* stream: the new
    op(s) are inserted immediately before the op currently at that index.
    ``words`` accumulates the byte addresses the inserted ranged op must
    cover; ``peer`` is the consumer (for a WB) or producer (for an INV)
    thread the level-adaptive op names.
    """

    kind: str
    tid: int
    anchor: int
    peer: int
    words: set[int] = field(default_factory=set)


@dataclass
class Finding:
    """One aggregated lint diagnostic.

    A finding represents every edge that violated the same rule on the same
    array between the same producer/consumer pair at the same program
    location; ``count`` is the number of such edges and ``word`` one example
    address.  ``note`` carries rule-specific detail (e.g. why an INV is
    redundant).
    """

    rule_id: str
    array: str
    producer: int
    consumer: int
    word: int
    count: int = 1
    producer_site: str = ""
    consumer_site: str = ""
    note: str = ""
    fixes: list[FixHint] = field(default_factory=list)

    @property
    def severity(self) -> str:
        """``"error"`` or ``"warning"``, from the rule catalog."""
        return RULES[self.rule_id].severity

    @property
    def message(self) -> str:
        """One-line human-readable diagnostic."""
        rule = RULES[self.rule_id]
        who = f"tid {self.producer}"
        if self.consumer >= 0 and self.consumer != self.producer:
            who += f" -> tid {self.consumer}"
        text = (
            f"{rule.title}: {who}, {self.count} access(es) to "
            f"'{self.array}' (e.g. 0x{self.word:x})"
        )
        if self.note:
            text += f" — {self.note}"
        return f"{text} [see {rule.anchor}]"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (stable across runs)."""
        rule = RULES[self.rule_id]
        return {
            "rule": self.rule_id,
            "severity": rule.severity,
            "title": rule.title,
            "doc": rule.anchor,
            "array": self.array,
            "producer": self.producer,
            "consumer": self.consumer,
            "word": f"0x{self.word:x}",
            "count": self.count,
            "producer_site": self.producer_site,
            "consumer_site": self.consumer_site,
            "note": self.note,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The full result of linting one kernel on one machine/config."""

    name: str
    config: str
    num_threads: int
    num_blocks: int
    events: int
    edges: int
    findings: list[Finding] = field(default_factory=list)
    #: Memory model whose lint profile filtered the findings.
    model: str = "base"
    #: Findings dropped by the model's waiver set (performance obligations
    #: the model discharges in the protocol itself).
    waived: int = 0

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def clean(self) -> bool:
        """True when no finding of any severity was produced."""
        return not self.findings

    def sort(self) -> None:
        """Deterministic report order: errors first, then by rule/location."""
        self.findings.sort(
            key=lambda f: (
                f.severity != "error",
                f.rule_id,
                f.array,
                f.producer,
                f.consumer,
                f.word,
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of the whole report."""
        return {
            "name": self.name,
            "config": self.config,
            "model": self.model,
            "machine": {
                "threads": self.num_threads,
                "blocks": self.num_blocks,
            },
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "waived": self.waived,
                "events": self.events,
                "edges": self.edges,
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable report text."""
        head = (
            f"{self.name or 'kernel'} [{self.config or 'default'}]: "
            f"{self.errors} error(s), {self.warnings} warning(s) "
            f"({self.edges} communication edge(s) over {self.events} op(s))"
        )
        if self.model != "base":
            head += f" [model {self.model}: {self.waived} waived]"
        lines = [head]
        for f in self.findings:
            lines.append(f"  {f.severity:7s} {f.rule_id:9s} {f.message}")
            where = []
            if f.producer_site:
                where.append(f"producer at {f.producer_site}")
            if f.consumer_site:
                where.append(f"consumer at {f.consumer_site}")
            if where:
                lines.append(" " * 20 + "; ".join(where))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


def _site(ev: OpEvent) -> str:
    """Call-site label of one event: innermost frame plus stream position."""
    leaf = ev.call_path[-1] if ev.call_path else "<unknown>"
    return f"{leaf} (op {ev.idx})"


class _Checker:
    """Stateful single-kernel check; see :func:`lint_trace`."""

    def __init__(self, trace: KernelTrace, name: str, config: str) -> None:
        self.trace = trace
        self.hb = analyze_hb(trace)
        machine = trace.machine
        self.placement = machine.placement
        self.num_blocks = getattr(
            machine, "num_blocks", machine.params.num_blocks
        )
        self.multi_block = self.num_blocks > 1
        self.report = LintReport(
            name=name,
            config=config,
            num_threads=trace.num_threads,
            num_blocks=self.num_blocks,
            events=len(trace.events),
            edges=len(self.hb.edges),
        )
        self._by_key: dict[tuple, Finding] = {}
        self._edge_memo: dict[tuple, list[Finding]] = {}
        n = trace.num_threads
        self._wb_idx = [
            [e.idx for e in self.hb.wb_events[t]] for t in range(n)
        ]
        self._inv_idx = [
            [e.idx for e in self.hb.inv_events[t]] for t in range(n)
        ]
        self._meb_begins, self._epoch_ends = self._scan_epochs()
        self._inv_eff_vc = self._effective_inv_clocks()

    # -- precomputation -----------------------------------------------------

    def _scan_epochs(self) -> tuple[list[list[int]], list[list[int]]]:
        """Per-thread sorted indices of MEB epoch begins and epoch ends."""
        begins: list[list[int]] = []
        ends: list[list[int]] = []
        for events in self.trace.per_thread:
            b: list[int] = []
            e: list[int] = []
            for ev in events:
                if type(ev.op) is isa.EpochBegin and ev.op.record_meb:
                    b.append(ev.idx)
                elif type(ev.op) is isa.EpochEnd:
                    e.append(ev.idx)
            begins.append(b)
            ends.append(e)
        return begins, ends

    def _effective_inv_clocks(self) -> list[list[tuple[int, ...]]]:
        """Each INV's vector clock, extended through an adjacent acquire.

        The Model-1 annotator legally places the critical-section INV
        immediately *before* the lock acquire: nothing can enter the cache
        between them.  An INV therefore inherits the knowledge of any
        acquire-side sync that follows it with no intervening memory access.
        """
        out: list[list[tuple[int, ...]]] = []
        for tid, invs in enumerate(self.hb.inv_events):
            acq_vc = {sp.idx: sp.vc for sp in self.hb.acquires[tid]}
            events = self.trace.per_thread[tid]
            effs: list[tuple[int, ...]] = []
            for inv in invs:
                eff = list(inv.vc)  # type: ignore[arg-type]
                for ev in events[inv.idx + 1:]:
                    if type(ev.op) in (isa.Read, isa.Write):
                        break
                    vc = acq_vc.get(ev.idx)
                    if vc is not None:
                        for i, v in enumerate(vc):
                            if v > eff[i]:
                                eff[i] = v
                effs.append(tuple(eff))
            out.append(effs)
        return out

    # -- op coverage predicates ---------------------------------------------

    def _meb_covers(self, tid: int, wb_idx: int, write_idx: int) -> bool:
        """Does a via-MEB WB ALL at *wb_idx* cover a write at *write_idx*?

        The MEB only records lines written inside the current epoch; a WB
        ALL via-MEB therefore misses writes made before ``EpochBegin``.
        Outside any epoch the hardware falls back to a full WB ALL.
        """
        begins = self._meb_begins[tid]
        pos = bisect_left(begins, wb_idx)
        if pos == 0:
            return True  # no epoch open: full WB ALL fallback
        begin = begins[pos - 1]
        ends = self._epoch_ends[tid]
        if bisect_left(ends, wb_idx) != bisect_right(ends, begin):
            return True  # that epoch already closed: fallback again
        return write_idx > begin

    def _wb_covers(self, wb: AnnotEvent, edge: CommEdge) -> bool:
        op = wb.op
        if type(op) is isa.WBAll:
            if op.via_meb:
                return self._meb_covers(
                    edge.write.tid, wb.idx, edge.write.idx
                )
            return True
        if isinstance(op, (isa.WBConsAll, isa.WBAllL3)):
            return True
        rng = isa.byte_range(op)
        return rng is not None and rng[0] <= edge.word < rng[1]

    def _inv_covers(self, inv: AnnotEvent, edge: CommEdge) -> bool:
        op = inv.op
        if type(op) is isa.EpochBegin:
            # IEB protection lasts until the matching EpochEnd.
            ends = self._epoch_ends[edge.sink.tid]
            pos = bisect_left(ends, inv.idx)
            return pos >= len(ends) or edge.sink.idx < ends[pos]
        if isinstance(op, (isa.INVAll, isa.InvProdAll, isa.INVAllL2)):
            return True
        rng = isa.byte_range(op)
        return rng is not None and rng[0] <= edge.word < rng[1]

    def _cross_block(self, edge: CommEdge) -> bool:
        if not self.multi_block:
            return False
        return self.placement.block_of_thread(
            edge.write.tid
        ) != self.placement.block_of_thread(edge.sink.tid)

    def _wb_reaches(self, op: isa.Op, producer: int) -> bool:
        """Does this WB flavor push cross-block-visible data (to the L3)?"""
        if isinstance(op, isa.GLOBAL_WB_OPS):
            return True
        if isinstance(op, (isa.WBCons, isa.WBConsAll)):
            return self.placement.block_of_thread(
                op.cons_tid
            ) != self.placement.block_of_thread(producer)
        return False

    def _inv_reaches(self, op: isa.Op, consumer: int) -> bool:
        """Does this INV flavor also clear the consumer's block L2?"""
        if isinstance(op, isa.GLOBAL_INV_OPS):
            return True
        if isinstance(op, (isa.InvProd, isa.InvProdAll)):
            return self.placement.block_of_thread(
                op.prod_tid
            ) != self.placement.block_of_thread(consumer)
        return False

    # -- finding aggregation ------------------------------------------------

    def _emit(
        self,
        rule_id: str,
        edge: CommEdge | None,
        *,
        array: str,
        producer: int,
        consumer: int,
        word: int,
        producer_site: str = "",
        consumer_site: str = "",
        note: str = "",
        fix: tuple[str, int, int, int] | None = None,
    ) -> Finding:
        """Record one violation, merging into an existing finding if any."""
        key = (rule_id, array, producer, consumer, producer_site,
               consumer_site, note)
        finding = self._by_key.get(key)
        if finding is None:
            finding = Finding(
                rule_id=rule_id,
                array=array,
                producer=producer,
                consumer=consumer,
                word=word,
                producer_site=producer_site,
                consumer_site=consumer_site,
                note=note,
            )
            self._by_key[key] = finding
            self.report.findings.append(finding)
        else:
            finding.count += 1
        if fix is not None:
            kind, tid, anchor, peer = fix
            for hint in finding.fixes:
                if (hint.kind, hint.tid, hint.anchor) == (kind, tid, anchor):
                    hint.words.add(word)
                    break
            else:
                finding.fixes.append(
                    FixHint(kind=kind, tid=tid, anchor=anchor, peer=peer,
                            words={word})
                )
        return finding

    # -- per-edge checks ----------------------------------------------------

    def _find_wb(self, edge: CommEdge, *, need_global: bool):
        """Covering WB for *edge*: after the write, ordered before the sink.

        Returns ``(adequate, inadequate)`` — the first covering WB that
        reaches the required level, and (when only a too-shallow one exists)
        that one, for the WB-LEVEL diagnostic.
        """
        p = edge.write.tid
        wbs = self.hb.wb_events[p]
        start = bisect_right(self._wb_idx[p], edge.write.idx)
        shallow = None
        for wb in wbs[start:]:
            if wb.clock > edge.vcp_at_sink:
                continue
            if not self._wb_covers(wb, edge):
                continue
            if not need_global or self._wb_reaches(wb.op, p):
                return wb, None
            shallow = shallow or wb
        return None, shallow

    def _find_inv(self, edge: CommEdge, *, need_global: bool):
        """Covering INV for *edge*: before the read, ordered after the write."""
        c = edge.sink.tid
        p = edge.write.tid
        invs = self.hb.inv_events[c]
        effs = self._inv_eff_vc[c]
        shallow = None
        for i, inv in enumerate(invs):
            if inv.idx >= edge.sink.idx:
                break
            if effs[i][p] < edge.write_clock:
                continue
            if not self._inv_covers(inv, edge):
                continue
            if not need_global or self._inv_reaches(inv.op, c):
                return inv, None
            shallow = shallow or inv
        return None, shallow

    def _wb_rule(self, edge: CommEdge) -> tuple[str, int]:
        """Rule ID and fix anchor for a missing-WB violation."""
        for rel in self.hb.releases[edge.write.tid]:
            if rel.idx > edge.write.idx:
                op = rel.op
                if type(op) is isa.Barrier:
                    return "WB-BAR", rel.idx
                if type(op) is isa.LockRelease:
                    if op.lid in edge.write.locks_held:
                        return "WB-REL", rel.idx
                    return "WB-OCC", rel.idx
                return "WB-FLAG", rel.idx
        return "WB-RACE", edge.write.idx + 1

    def _inv_rule(self, edge: CommEdge) -> tuple[str, int]:
        """Rule ID and fix anchor for a missing-INV violation.

        Normally the *earliest* acquire that orders the write names the
        idiom (the barrier/flag/lock the programmer used to synchronize).
        But when the consumer reads inside a critical section whose own
        acquire also orders the write, the CS acquire wins — that is where
        Table I (and the Annotator) place the INV, even if an earlier flag
        or barrier happens to order the data too.
        """
        p = edge.write.tid
        first: tuple[str, int] | None = None
        for acq in self.hb.acquires[edge.sink.tid]:
            if acq.idx >= edge.sink.idx:
                break
            if acq.vc is not None and acq.vc[p] >= edge.write_clock:
                op = acq.op
                if (
                    type(op) is isa.LockAcquire
                    and op.lid in edge.sink.locks_held
                ):
                    return "INV-ACQ", acq.idx + 1
                if first is None:
                    if type(op) is isa.Barrier:
                        first = ("INV-BAR", acq.idx + 1)
                    elif type(op) is isa.LockAcquire:
                        first = ("INV-OCC", acq.idx + 1)
                    else:
                        first = ("INV-FLAG", acq.idx + 1)
        if first is not None:
            return first
        return "INV-RACE", edge.sink.idx

    def _prev_same_word_access(self, edge: CommEdge) -> int:
        """Consumer's previous access to the edge's word (stream index)."""
        events = self.trace.per_thread[edge.sink.tid]
        for ev in reversed(events[: edge.sink.idx]):
            op = ev.op
            if type(op) in (isa.Read, isa.Write):
                if (op.addr // WORD) * WORD == edge.word:
                    return ev.idx
        return -1

    def _check_racy_edge(self, edge: CommEdge) -> list[Finding]:
        """Figure 6b pattern check for an edge with no HB ordering."""
        out = []
        p, word = edge.write.tid, edge.word
        need_global = self._cross_block(edge)
        wbs = self.hb.wb_events[p]
        start = bisect_right(self._wb_idx[p], edge.write.idx)
        wb_ok = any(
            self._wb_covers(wb, edge)
            and (not need_global or self._wb_reaches(wb.op, p))
            for wb in wbs[start:]
        )
        if not wb_ok:
            out.append(self._emit(
                "WB-RACE", edge,
                array=self.trace.array_of(word),
                producer=p, consumer=edge.sink.tid, word=word,
                producer_site=_site(edge.write),
                consumer_site=_site(edge.sink),
                fix=("wb", p, edge.write.idx + 1, edge.sink.tid),
            ))
        if edge.kind == "rw":
            c = edge.sink.tid
            prev = self._prev_same_word_access(edge)
            invs = self.hb.inv_events[c]
            inv_ok = any(
                prev < inv.idx < edge.sink.idx
                and self._inv_covers(inv, edge)
                and (not need_global or self._inv_reaches(inv.op, c))
                for inv in invs
            )
            if not inv_ok:
                out.append(self._emit(
                    "INV-RACE", edge,
                    array=self.trace.array_of(word),
                    producer=p, consumer=c, word=word,
                    producer_site=_site(edge.write),
                    consumer_site=_site(edge.sink),
                    fix=("inv", c, edge.sink.idx, p),
                ))
        return out

    def _check_edge(self, edge: CommEdge) -> list[Finding]:
        """All Table I checks for one communication edge."""
        if not edge.ordered:
            return self._check_racy_edge(edge)
        out = []
        p, c, word = edge.write.tid, edge.sink.tid, edge.word
        array = self.trace.array_of(word)
        need_global = self._cross_block(edge)

        wb, shallow_wb = self._find_wb(edge, need_global=need_global)
        if wb is None:
            if shallow_wb is not None:
                out.append(self._emit(
                    "WB-LEVEL", edge, array=array, producer=p, consumer=c,
                    word=word, producer_site=_site(edge.write),
                    consumer_site=_site(edge.sink),
                    note=f"{shallow_wb.op.mnemonic} stops at the block L2",
                    fix=("wb", p, shallow_wb.idx, c),
                ))
            else:
                rule_id, anchor = self._wb_rule(edge)
                out.append(self._emit(
                    rule_id, edge, array=array, producer=p, consumer=c,
                    word=word, producer_site=_site(edge.write),
                    consumer_site=_site(edge.sink),
                    note="lost update risk" if edge.kind == "ww" else "",
                    fix=("wb", p, anchor, c),
                ))

        if edge.kind == "rw":
            inv, shallow_inv = self._find_inv(edge, need_global=need_global)
            if inv is None:
                if shallow_inv is not None:
                    out.append(self._emit(
                        "INV-LEVEL", edge, array=array, producer=p,
                        consumer=c, word=word,
                        producer_site=_site(edge.write),
                        consumer_site=_site(edge.sink),
                        note=(
                            f"{shallow_inv.op.mnemonic} leaves the stale "
                            "L2 copy"
                        ),
                        fix=("inv", c, shallow_inv.idx, p),
                    ))
                else:
                    rule_id, anchor = self._inv_rule(edge)
                    out.append(self._emit(
                        rule_id, edge, array=array, producer=p, consumer=c,
                        word=word, producer_site=_site(edge.write),
                        consumer_site=_site(edge.sink),
                        fix=("inv", c, anchor, p),
                    ))
        return out

    def check_edges(self) -> None:
        """Check every communication edge, memoizing repeated situations."""
        for edge in self.hb.edges:
            c = edge.sink.tid
            key = (
                edge.write.tid, edge.write.idx, c, edge.word,
                edge.kind, edge.vcp_at_sink,
                bisect_left(self._inv_idx[c], edge.sink.idx),
            )
            prior = self._edge_memo.get(key)
            if prior is not None:
                for finding in prior:
                    finding.count += 1
                continue
            self._edge_memo[key] = self._check_edge(edge)

    # -- redundancy ---------------------------------------------------------

    def check_redundant(self) -> None:
        """Flag explicitly ranged WB/INV ops that provably do nothing."""
        trace = self.trace
        n = trace.num_threads
        written_by: dict[int, int] = {}
        for ev in trace.events:
            if type(ev.op) is isa.Write:
                word = (ev.op.addr // WORD) * WORD
                written_by[word] = written_by.get(word, 0) | (1 << ev.tid)

        shared_sorted = sorted(written_by)

        def range_has_other_writer(tid: int, lo: int, hi: int) -> bool:
            i = bisect_left(shared_sorted, lo)
            j = bisect_left(shared_sorted, hi)
            mask = ~(1 << tid)
            return any(written_by[shared_sorted[k]] & mask for k in range(i, j))

        for tid in range(n):
            events = trace.per_thread[tid]
            dirty: set[int] = set()
            last_read: dict[int, int] = {}
            for ev in events:
                op = ev.op
                if type(op) is isa.Read:
                    last_read[(op.addr // WORD) * WORD] = ev.idx
            read_words = sorted(last_read)

            for ev in events:
                op = ev.op
                kind = type(op)
                if kind is isa.Write:
                    dirty.add((op.addr // WORD) * WORD)
                elif isinstance(op, isa.RANGED_WB_OPS):
                    lo, hi = isa.byte_range(op)  # type: ignore[misc]
                    covered = [w for w in dirty if lo <= w < hi]
                    if covered:
                        dirty.difference_update(covered)
                    else:
                        self._emit(
                            "WB-RED", None,
                            array=self.trace.array_of(lo),
                            producer=tid, consumer=-1, word=lo,
                            producer_site=_site(ev),
                            note="no dirty word in range",
                        )
                elif isinstance(op, isa.ALL_WB_OPS):
                    dirty.clear()
                elif isinstance(op, isa.RANGED_INV_OPS):
                    lo, hi = isa.byte_range(op)  # type: ignore[misc]
                    i = bisect_left(read_words, lo)
                    j = bisect_left(read_words, hi)
                    reads_later = any(
                        last_read[read_words[k]] > ev.idx
                        for k in range(i, j)
                    )
                    if not reads_later:
                        self._emit(
                            "INV-RED", None,
                            array=self.trace.array_of(lo),
                            producer=tid, consumer=-1, word=lo,
                            producer_site=_site(ev),
                            note="no covered word is read afterwards",
                        )
                    elif not range_has_other_writer(tid, lo, hi):
                        self._emit(
                            "INV-RED", None,
                            array=self.trace.array_of(lo),
                            producer=tid, consumer=-1, word=lo,
                            producer_site=_site(ev),
                            note="no covered word is written by another "
                                 "thread",
                        )

    def run(self) -> LintReport:
        """Execute every check and return the sorted report."""
        self.check_edges()
        self.check_redundant()
        self.report.sort()
        return self.report


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def lint_trace(
    trace: KernelTrace, *, name: str = "", config: str = "",
    model: str = "base",
) -> LintReport:
    """Check one extracted kernel trace against the annotation rules.

    ``model`` selects the :class:`~repro.analysis.rules.ModelLintProfile`
    that parameterizes the catalog: findings of waived rules are dropped
    (and counted in ``report.waived``), because that model discharges the
    obligation inside the protocol itself.
    """
    report = _Checker(trace, name, config).run()
    profile = lint_profile(model)
    report.model = profile.model
    if profile.waived:
        kept = [f for f in report.findings if profile.keeps(f.rule_id)]
        report.waived = len(report.findings) - len(kept)
        report.findings = kept
    return report


def lint_machine(
    machine: "Machine", *, name: str = "", config: str = "",
    model: str = "base",
) -> LintReport:
    """Extract and check a prepared (but not yet run) machine.

    ``name``/``config`` label the report only; the machine must already
    have its threads spawned with the annotation config under test.
    ``model`` is passed through to :func:`lint_trace`.
    """
    return lint_trace(extract(machine), name=name, config=config, model=model)
