"""Static WB/INV annotation analysis (``repro lint``).

The paper's Model 2 relies on a compiler pass — interprocedural CFG
construction plus DEF-USE producer–consumer extraction — to place
level-adaptive ``WB``/``INV`` instructions (Section V).  This package turns
that machinery into a *correctness tool* for every kernel in the repo,
Model-1 hand-annotated SPLASH codes included: a compiler-style static pass
over the kernel's operation stream that reports **missing** annotations
(potential stale reads / lost updates) and **redundant** ones (WB/INV with
no crossing communication), with a ``--fix`` mode that inserts the
level-adaptive ops the way the paper's compiler does.

Pipeline (one module per stage):

1. :mod:`repro.analysis.extract` — drive the spawned thread generators under
   a sequentially-consistent reference scheduler (no caches, no timing) and
   record each thread's linear operation stream with interprocedural call
   provenance;
2. :mod:`repro.analysis.cfg` — per-thread control-flow graph: epoch segments
   bounded by synchronization events, plus the interprocedural call summary;
3. :mod:`repro.analysis.hb` — vector-clock happens-before over sync edges
   (barrier / lock / flag, Section IV-A Table I) yielding the cross-thread
   producer→consumer communication edges;
4. :mod:`repro.analysis.lint` — check every edge against the Table I rules
   (:mod:`repro.analysis.rules`) and report findings;
5. :mod:`repro.analysis.fix` — compute op-stream patches for the findings
   and re-run the patched kernel on the real simulator to verify them.

Every diagnostic references a rule ID documented in ``docs/ANNOTATIONS.md``.
"""

from repro.analysis.extract import KernelTrace, OpEvent, extract
from repro.analysis.hb import HBAnalysis, analyze_hb
from repro.analysis.lint import Finding, LintReport, lint_machine, lint_trace
from repro.analysis.rules import (
    MODEL_PROFILES,
    RULES,
    ModelLintProfile,
    Rule,
    lint_profile,
)

__all__ = [
    "KernelTrace",
    "OpEvent",
    "extract",
    "HBAnalysis",
    "analyze_hb",
    "Finding",
    "LintReport",
    "lint_machine",
    "lint_trace",
    "RULES",
    "Rule",
    "ModelLintProfile",
    "MODEL_PROFILES",
    "lint_profile",
]
