"""Happens-before analysis over extracted streams: DEF-USE across threads.

This is the producer–consumer extraction of the paper's compiler pass
(Section V-A.1) generalized from affine loop nests to arbitrary operation
streams: instead of comparing statically chunked element intervals, the
analyzer tracks the last writer of every word and derives ordering from the
synchronization edges of Section IV-A Table I — barrier rounds, lock
release→acquire chains, and monotonic flag set→wait pairs.

Clock representation follows the FastTrack observation: a write is fully
identified by its thread's scalar clock (``vc[p][p]`` at the write), so
``W`` happens-before an event of thread *c* iff that scalar is ≤ *c*'s
current knowledge of *p* (``vc[c][p]``).  Full vector snapshots are kept
only at the (rare) INV and acquire-side events, where the checker later
needs *c*'s whole knowledge at an intermediate point.

The output is the set of cross-thread communication edges — read-after-write
(a potential stale read) and write-after-write (a potential lost update) —
plus the per-thread WB/INV/acquire/release event indexes the rule checker
(:mod:`repro.analysis.lint`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.extract import KernelTrace, OpEvent
from repro.isa import ops as isa

WORD = 4


@dataclass(frozen=True)
class CommEdge:
    """One cross-thread communication: a write observed (or overwritten).

    ``kind`` is ``"rw"`` (read-after-write) or ``"ww"`` (write-after-write).
    ``write_clock`` is the producer's scalar clock at the write;
    ``vcp_at_sink`` is the consumer's knowledge of the producer when the
    sink executed — the edge is ordered iff ``write_clock <= vcp_at_sink``.
    """

    kind: str
    write: OpEvent
    write_clock: int
    sink: OpEvent
    vcp_at_sink: int

    @property
    def ordered(self) -> bool:
        """True when synchronization orders the write before the sink."""
        return self.write_clock <= self.vcp_at_sink

    @property
    def word(self) -> int:
        """The communicated word's byte address."""
        return (self.sink.op.addr // WORD) * WORD


@dataclass(frozen=True)
class AnnotEvent:
    """A WB or INV (or IEB epoch-begin) event with its clock context.

    For WB events only the emitting thread's scalar ``clock`` is kept; for
    INV events ``vc`` snapshots the thread's whole vector clock so the
    checker can ask "had the producer's write reached this thread *by the
    time it invalidated*?".
    """

    idx: int
    op: isa.Op
    clock: int
    vc: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SyncPoint:
    """An acquire- or release-side sync event of one thread.

    ``vc`` is the post-join vector clock (acquire side only; release-side
    points carry ``None`` — the checker only needs their program order).
    """

    idx: int
    op: isa.Op
    vc: tuple[int, ...] | None = None


@dataclass
class HBAnalysis:
    """Everything the rule checker needs, indexed per thread."""

    trace: KernelTrace
    edges: list[CommEdge] = field(default_factory=list)
    wb_events: list[list[AnnotEvent]] = field(default_factory=list)
    inv_events: list[list[AnnotEvent]] = field(default_factory=list)
    acquires: list[list[SyncPoint]] = field(default_factory=list)
    releases: list[list[SyncPoint]] = field(default_factory=list)
    #: Words with at least one cross-thread write during the run.
    shared_words: set[int] = field(default_factory=set)


def _merge(into: list[int], other) -> None:
    for i, v in enumerate(other):
        if v > into[i]:
            into[i] = v


def analyze_hb(trace: KernelTrace) -> HBAnalysis:
    """Single forward pass: clocks, sync edges, and communication edges."""
    n = trace.num_threads
    out = HBAnalysis(
        trace,
        wb_events=[[] for _ in range(n)],
        inv_events=[[] for _ in range(n)],
        acquires=[[] for _ in range(n)],
        releases=[[] for _ in range(n)],
    )
    vc = [[0] * n for _ in range(n)]
    lock_vc: dict[int, tuple[int, ...]] = {}
    flag_vc: dict[int, list[int]] = {}
    barrier_members: dict[int, list[OpEvent]] = {}
    done_groups: set[int] = set()
    #: word byte address -> (writer tid, writer scalar clock, write event)
    last_write: dict[int, tuple[int, int, OpEvent]] = {}
    writers: dict[int, int] = {}  # word -> first writer tid

    for ev in trace.events:
        if ev.group is not None:
            barrier_members.setdefault(ev.group, []).append(ev)

    for ev in trace.events:
        t = ev.tid
        op = ev.op
        kind = type(op)

        if kind is isa.Barrier:
            # One barrier round is a single HB join over all participants;
            # process the whole (consecutively recorded) group atomically so
            # every member's post-barrier clock covers every member's
            # barrier event — then skip the other members' stream entries.
            if ev.group in done_groups:
                continue
            done_groups.add(ev.group)  # type: ignore[arg-type]
            members = barrier_members[ev.group]  # type: ignore[index]
            for m_ev in members:
                vc[m_ev.tid][m_ev.tid] += 1
            joined = [
                max(vc[m_ev.tid][i] for m_ev in members) for i in range(n)
            ]
            for m_ev in members:
                _merge(vc[m_ev.tid], joined)
                out.releases[m_ev.tid].append(SyncPoint(m_ev.idx, m_ev.op))
                out.acquires[m_ev.tid].append(
                    SyncPoint(m_ev.idx, m_ev.op, vc=tuple(vc[m_ev.tid]))
                )
            continue

        me = vc[t]

        if kind is isa.Write or kind is isa.Read:
            word = (op.addr // WORD) * WORD
            lw = last_write.get(word)
            if lw is not None and lw[0] != t:
                # A silent update — overwriting with the very same value —
                # cannot lose anything observable: whichever copy reaches
                # memory carries the same bits, and a genuine reader still
                # forms an rw edge to the final writer.  The Model-2
                # inspector relies on this (all consumers of an element
                # record the identical owner tid in the conflict array).
                silent = (
                    kind is isa.Write and op.value == lw[2].op.value
                )
                if not silent:
                    out.edges.append(
                        CommEdge(
                            kind="rw" if kind is isa.Read else "ww",
                            write=lw[2],
                            write_clock=lw[1],
                            sink=ev,
                            vcp_at_sink=me[lw[0]],
                        )
                    )
            if kind is isa.Write:
                me[t] += 1
                last_write[word] = (t, me[t], ev)
                first = writers.get(word)
                if first is None:
                    writers[word] = t
                elif first != t:
                    out.shared_words.add(word)
            else:
                me[t] += 1
            continue

        me[t] += 1

        if isinstance(op, isa.WB_OPS):
            out.wb_events[t].append(AnnotEvent(ev.idx, op, me[t]))
        elif isinstance(op, isa.INV_OPS):
            out.inv_events[t].append(
                AnnotEvent(ev.idx, op, me[t], vc=tuple(me))
            )
        elif kind is isa.EpochBegin and op.ieb_mode:
            # The IEB checks every read of the epoch against the L2 — the
            # hardware equivalent of INV ALL at the epoch boundary.
            out.inv_events[t].append(
                AnnotEvent(ev.idx, op, me[t], vc=tuple(me))
            )
        elif kind is isa.LockAcquire:
            held = lock_vc.get(op.lid)
            if held is not None:
                _merge(me, held)
            out.acquires[t].append(SyncPoint(ev.idx, op, vc=tuple(me)))
        elif kind is isa.LockRelease:
            lock_vc[op.lid] = tuple(me)
            out.releases[t].append(SyncPoint(ev.idx, op))
        elif kind is isa.FlagSet:
            acc = flag_vc.setdefault(op.fid, [0] * n)
            _merge(acc, me)
            out.releases[t].append(SyncPoint(ev.idx, op))
        elif kind is isa.FlagWait:
            acc = flag_vc.get(op.fid)
            if acc is not None:
                _merge(me, acc)
            out.acquires[t].append(SyncPoint(ev.idx, op, vc=tuple(me)))
    return out
