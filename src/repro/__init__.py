"""repro — reproduction of *Architecting and Programming a Hardware-Incoherent
Multiprocessor Cache Hierarchy* (Kim, Tavarageri, Sadayappan, Torrellas,
IPPS 2016).

The package provides:

* an operation-level discrete-event simulator of a Runnemede-style clustered
  manycore (private L1s, block-shared banked L2, chip-shared banked L3, 2D
  mesh, off-chip memory),
* the paper's hardware-incoherent cache hierarchy — WB/INV ISA with per-word
  dirty bits, the MEB and IEB entry buffers, level-adaptive
  ``WB_CONS``/``INV_PROD`` with the per-L2 ThreadMap — plus a full-map
  directory MESI baseline (HCC),
* both programming models: Model 1 (annotated shared memory inside a block)
  and Model 2 (compiler-analyzed shared memory across blocks), and the
  on-chip MPI layer,
* scaled reimplementations of the paper's workloads (SPLASH-2 kernels for
  Model 1; NAS EP/IS/CG and 2D Jacobi for Model 2), and
* the evaluation harness regenerating every table and figure.

Quickstart::

    from repro import Machine, intra_block_machine, INTRA_BMI

    m = Machine(intra_block_machine(4), INTRA_BMI, num_threads=4)
    data = m.array("data", 1024)
    ...
"""

from repro.common.params import (
    BufferParams,
    CacheParams,
    CoreParams,
    MachineParams,
    MeshParams,
    inter_block_machine,
    intra_block_machine,
)
from repro.core.config import (
    INTER_ADDR,
    INTER_ADDR_L,
    INTER_BASE,
    INTER_CONFIGS,
    INTER_HCC,
    INTRA_BASE,
    INTRA_BI,
    INTRA_BM,
    INTRA_BMI,
    INTRA_CONFIGS,
    INTRA_HCC,
    ExperimentConfig,
    InterMode,
    inter_config,
    intra_config,
)
from repro.core.context import ThreadCtx
from repro.core.machine import Machine
from repro.noc.placement import (
    Placement,
    identity_placement,
    round_robin_placement,
)
from repro.sim.stats import MachineStats, StallCat, TrafficCat

__version__ = "1.0.0"

__all__ = [
    "BufferParams",
    "CacheParams",
    "CoreParams",
    "ExperimentConfig",
    "INTER_ADDR",
    "INTER_ADDR_L",
    "INTER_BASE",
    "INTER_CONFIGS",
    "INTER_HCC",
    "INTRA_BASE",
    "INTRA_BI",
    "INTRA_BM",
    "INTRA_BMI",
    "INTRA_CONFIGS",
    "INTRA_HCC",
    "InterMode",
    "Machine",
    "MachineParams",
    "MachineStats",
    "MeshParams",
    "Placement",
    "StallCat",
    "ThreadCtx",
    "TrafficCat",
    "identity_placement",
    "inter_block_machine",
    "inter_config",
    "intra_block_machine",
    "intra_config",
    "round_robin_placement",
]
