"""JSONL trace schema: documentation, validator, and a CLI entry point.

Every line of a ``--trace`` output file is one JSON object with the fields
below (see also the "Observability" section of README.md):

=========  ========  ====================================================
field      type      meaning
=========  ========  ====================================================
``kind``   str       one of :data:`repro.obs.trace.TRACE_KINDS`
``core``   int >= 0  issuing (or, for hardware-initiated events, target)
                     core id
``cycle``  int >= 0  issue cycle of the operation
``addr``   int >= 0  byte address (optional; absent for ALL-flavored ops)
``line``   int >= 0  line address = addr // line_bytes (optional)
``level``  str       hierarchy level touched: ``L1``/``L2``/``L3``/``mem``
                     (optional)
``lat``    int >= 0  charged latency in cycles (optional)
``op``     str       ISA mnemonic or event detail, e.g. ``WB_ALL``,
                     ``barrier``, ``DIR_INV`` (optional)
``arg``    int >= 0  operation operand: sync variable id (barrier/lock/
                     flag), peer thread id (``WB_CONS*``/``INV_PROD*``),
                     ``via_meb`` bit (``WB_ALL``), or the
                     ``record_meb | ieb_mode << 1`` flag mask for
                     ``epoch_begin`` (optional)
``n``      int >= 0  operation count operand: barrier arrival count, flag
                     value, or ranged WB/INV byte length (optional)
``val``    number    value stored by a ``write`` event, when JSON-scalar
                     (optional; may be negative)
=========  ========  ====================================================

The ``arg``/``n``/``val`` trio makes traces *program-reconstructible*:
:mod:`repro.workloads.replay` rebuilds an executable workload from any
trace that carries them (record -> replay -> re-record is bit-identical).
Traces recorded before these fields existed still validate — all three
are optional.

``python -m repro.obs.schema FILE`` validates a JSONL trace file and exits
non-zero on the first violation — CI runs it against a ``repro trace``
smoke output.
"""

from __future__ import annotations

import json
import sys

from repro.obs.trace import TRACE_KINDS

#: Hierarchy levels an event may name.
TRACE_LEVELS = ("L1", "L2", "L3", "mem")

#: field name -> (required, expected type(s)).  Plain-int fields must be >= 0.
TRACE_FIELDS: dict[str, tuple[bool, type | tuple[type, ...]]] = {
    "kind": (True, str),
    "core": (True, int),
    "cycle": (True, int),
    "addr": (False, int),
    "line": (False, int),
    "level": (False, str),
    "lat": (False, int),
    "op": (False, str),
    "arg": (False, int),
    "n": (False, int),
    # Stored values may be negative floats; (int, float) skips the >= 0
    # check below (which applies to plain-int fields only).
    "val": (False, (int, float)),
}


class TraceSchemaError(ValueError):
    """A trace event violates the documented schema."""


def validate_event(ev: dict) -> None:
    """Raise :class:`TraceSchemaError` unless *ev* matches the schema."""
    if not isinstance(ev, dict):
        raise TraceSchemaError(f"event is not an object: {ev!r}")
    for name, (required, typ) in TRACE_FIELDS.items():
        if name not in ev:
            if required:
                raise TraceSchemaError(f"missing required field {name!r}: {ev!r}")
            continue
        value = ev[name]
        # bool is an int subclass; a True/False core or cycle is a bug.
        if not isinstance(value, typ) or isinstance(value, bool):
            want = typ.__name__ if isinstance(typ, type) else "number"
            raise TraceSchemaError(
                f"field {name!r} has type {type(value).__name__}, "
                f"expected {want}: {ev!r}"
            )
        if typ is int and value < 0:
            raise TraceSchemaError(f"field {name!r} is negative: {ev!r}")
    unknown = set(ev) - set(TRACE_FIELDS)
    if unknown:
        raise TraceSchemaError(f"unknown field(s) {sorted(unknown)}: {ev!r}")
    if ev["kind"] not in TRACE_KINDS:
        raise TraceSchemaError(f"unknown kind {ev['kind']!r}: {ev!r}")
    if "level" in ev and ev["level"] not in TRACE_LEVELS:
        raise TraceSchemaError(f"unknown level {ev['level']!r}: {ev!r}")


def validate_jsonl(path) -> int:
    """Validate every line of a JSONL trace file; return the event count.

    Raises :class:`TraceSchemaError` naming the offending line on the first
    violation (malformed JSON included).
    """
    count = 0
    with open(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                ev = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: bad JSON: {exc}") from None
            try:
                validate_event(ev)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from None
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.schema FILE [FILE ...]`` — validate traces."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.schema TRACE.jsonl ...", file=sys.stderr)
        return 2
    for path in paths:
        try:
            n = validate_jsonl(path)
        except (OSError, TraceSchemaError) as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: {n} event(s) ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke step
    raise SystemExit(main())
