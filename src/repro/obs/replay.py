"""Traced replay of sweep cells.

The figure sweeps run with tracing off (fanned out over worker processes
and served from the persistent cache); when an anomaly needs per-operation
visibility, these helpers replay individual (application, configuration)
cells in-process with a :class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.Metrics` registry attached.  Because tracing is
bit-identical-neutral, a traced replay reproduces exactly the statistics
the untraced sweep reported.

Used by ``repro trace`` and by the ``--trace``/``--metrics`` flags of the
``fig9``–``fig12`` commands.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

from repro.common.errors import ConfigError
from repro.core.config import ExperimentConfig
from repro.eval.runner import RunResult, run_inter, run_intra
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer
from repro.workloads import MODEL_ONE, MODEL_TWO


def kind_of_app(app: str) -> str:
    """``intra`` for Model-1 workloads, ``inter`` for Model-2."""
    if app in MODEL_ONE:
        return "intra"
    if app in MODEL_TWO:
        return "inter"
    raise ConfigError(f"unknown workload {app!r}")


def run_traced(
    kind: str, app: str, config: ExperimentConfig, **kwargs
) -> tuple[RunResult, Tracer, Metrics]:
    """Run one cell in-process with tracing and metrics attached."""
    tracer = Tracer()
    metrics = Metrics()
    if kind == "intra":
        result = run_intra(app, config, tracer=tracer, metrics=metrics, **kwargs)
    elif kind == "inter":
        result = run_inter(app, config, tracer=tracer, metrics=metrics, **kwargs)
    else:
        raise ConfigError(f"unknown sweep kind {kind!r}")
    return result, tracer, metrics


def cell_trace_name(app: str, config_name: str) -> str:
    """File-system-safe trace file name for one cell."""
    safe_cfg = config_name.replace("+", "")
    return f"{app}-{safe_cfg}.trace.jsonl"


def traced_sweep(
    kind: str,
    apps: Sequence[str],
    configs: Sequence[ExperimentConfig],
    *,
    trace_dir=None,
    metrics_path=None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """Serial traced sweep over the (app × config) matrix.

    Writes one JSONL trace per cell under *trace_dir* (created if needed)
    and, when *metrics_path* is given, one JSON file mapping
    ``{app: {config: metrics snapshot}}``.  Returns the same result dict a
    normal sweep produces, so the figure renderers print identical tables.
    """
    if trace_dir is not None:
        trace_dir = pathlib.Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    results: dict[str, dict[str, RunResult]] = {}
    all_metrics: dict[str, dict[str, dict]] = {}
    for app in apps:
        results[app] = {}
        all_metrics[app] = {}
        for config in configs:
            result, tracer, metrics = run_traced(kind, app, config, **kwargs)
            results[app][config.name] = result
            all_metrics[app][config.name] = metrics.snapshot()
            if trace_dir is not None:
                tracer.write_jsonl(trace_dir / cell_trace_name(app, config.name))
    if metrics_path is not None:
        metrics_path = pathlib.Path(metrics_path)
        if metrics_path.parent != pathlib.Path(""):
            metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(json.dumps(all_metrics, indent=1, sort_keys=True))
    return results
