"""Structured per-operation event tracing.

The :class:`Tracer` records one event per simulated operation — reads,
writes, WB/INV instructions, line fills, evictions, synchronization, and
epoch markers — each stamped with the issuing core, byte and line address,
hierarchy level, latency, and issue cycle.  Components hold an optional
tracer reference defaulting to ``None`` and guard every emission with a
single ``is not None`` check, so a run without tracing allocates nothing
and pays one pointer comparison per hook point; results are bit-identical
either way (the tracer only records, it never changes latencies or state —
enforced by ``tests/obs/test_neutrality.py``).

Clocking: the core model batches non-blocking operations between
synchronization points without advancing the engine, so ``engine.now`` alone
is not the issue time of an op mid-batch.  The CPU therefore publishes the
current op's issue cycle into :attr:`Tracer.cycle` before dispatching to the
protocol; protocol-internal events (fills, evictions) inherit that cycle.

Output formats:

* :meth:`write_jsonl` — one JSON object per line, validated by
  :mod:`repro.obs.schema` (fields documented there);
* :meth:`write_chrome` — Chrome ``trace_event`` JSON (open chrome://tracing
  or https://ui.perfetto.dev and load the file; one row per core).
"""

from __future__ import annotations

import json
from typing import IO

#: Event kinds a tracer may emit (the JSONL schema's closed vocabulary).
TRACE_KINDS = (
    "read",
    "write",
    "compute",
    "wb",
    "inv",
    "fill",
    "evict",
    "fault",
    "sync",
    "epoch",
)


class Tracer:
    """In-memory event recorder with JSONL and Chrome trace_event output."""

    __slots__ = ("events", "cycle")

    def __init__(self) -> None:
        #: Recorded events, in emission order (JSON-safe dicts).
        self.events: list[dict] = []
        #: Issue cycle of the operation currently executing (set by the CPU
        #: before each dispatch; protocol-internal events inherit it).
        self.cycle: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        core: int,
        *,
        addr: int | None = None,
        line: int | None = None,
        level: str | None = None,
        lat: int | None = None,
        op: str | None = None,
        cycle: int | None = None,
        arg: int | None = None,
        n: int | None = None,
        val: int | float | None = None,
    ) -> None:
        """Record one event.

        ``cycle=None`` stamps the tracer's current op cycle; sync grants and
        other engine-timed events pass an explicit cycle instead.  ``arg``,
        ``n``, and ``val`` carry the operand detail that makes a trace
        program-reconstructible (see :mod:`repro.obs.schema`).
        """
        ev: dict = {
            "kind": kind,
            "core": core,
            "cycle": self.cycle if cycle is None else cycle,
        }
        if addr is not None:
            ev["addr"] = addr
        if line is not None:
            ev["line"] = line
        if level is not None:
            ev["level"] = level
        if lat is not None:
            ev["lat"] = lat
        if op is not None:
            ev["op"] = op
        if arg is not None:
            ev["arg"] = arg
        if n is not None:
            ev["n"] = n
        if val is not None:
            ev["val"] = val
        self.events.append(ev)

    # -- selection helpers (used by tests and analysis scripts) --------------

    def of_kind(self, *kinds: str) -> list[dict]:
        """Events whose kind is in *kinds*, in emission order."""
        want = set(kinds)
        return [ev for ev in self.events if ev["kind"] in want]

    def of_core(self, core: int) -> list[dict]:
        """Events issued by *core*, in emission order."""
        return [ev for ev in self.events if ev["core"] == core]

    # -- output --------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        with open(path, "w") as fh:
            self._dump_jsonl(fh)
        return len(self.events)

    def _dump_jsonl(self, fh: IO[str]) -> None:
        for ev in self.events:
            fh.write(json.dumps(ev, sort_keys=True))
            fh.write("\n")

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` representation (complete "X" events).

        Cycles map to microseconds one-to-one (chrome://tracing's units are
        µs); each core renders as one thread row, with the event's address
        and level preserved under ``args``.
        """
        trace_events = []
        for ev in self.events:
            args = {
                k: v for k, v in ev.items() if k not in ("kind", "core", "cycle")
            }
            trace_events.append(
                {
                    "name": ev.get("op") or ev["kind"],
                    "cat": ev["kind"],
                    "ph": "X",
                    "ts": ev["cycle"],
                    "dur": max(1, ev.get("lat", 1) or 1),
                    "pid": 0,
                    "tid": ev["core"],
                    "args": args,
                }
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"source": "repro", "time_unit": "cycle"},
        }

    def write_chrome(self, path) -> int:
        """Write the Chrome trace_event JSON; returns the event count."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
        return len(self.events)
