"""Metrics registry: named counters and latency histograms.

A :class:`Metrics` instance is the machine-wide sink every instrumented
component reports into — the protocols (fills, evictions, directory
activity), the CPU front end (per-operation latencies), the synchronization
controller (request counts, wait times), the write buffer model, and the
engine (event totals).  Components hold an optional reference that defaults
to ``None``; every hook point is guarded by a single ``is not None`` check,
so a run without metrics pays one pointer comparison per hook and allocates
nothing.

Histograms use power-of-two buckets (bucket *i* counts observations with
``bit_length() == i``, i.e. values in ``[2**(i-1), 2**i)``), which is exact
enough for cycle latencies spanning an L1 hit (~1) to an off-chip round
trip (~hundreds) while keeping observation O(1) with no pre-declared bounds.

Snapshots (:meth:`Metrics.snapshot`) are plain JSON-safe dicts; they travel
inside :class:`~repro.eval.runner.RunResult` through the process-pool sweep
and the persistent result cache, and :meth:`Metrics.from_snapshot` restores
a registry bit-for-bit for the round-trip tests.
"""

from __future__ import annotations


class Histogram:
    """Power-of-two-bucketed latency histogram (cycles, value >= 0)."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        #: bucket index -> observation count; index = value.bit_length().
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        """Record one observation (bucket index = ``value.bit_length()``)."""
        value = int(value)
        b = value.bit_length() if value > 0 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Half-open value range ``[lo, hi)`` covered by bucket *index*."""
        if index <= 0:
            return (0, 1)
        return (1 << (index - 1), 1 << index)

    def to_dict(self) -> dict:
        """JSON-safe form (bucket keys stringified for JSON round trips)."""
        return {
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        """Exact inverse of :meth:`to_dict` (the round-trip contract)."""
        h = cls()
        h.buckets = {int(k): int(v) for k, v in d["buckets"].items()}
        h.count = int(d["count"])
        h.total = int(d["total"])
        h.min = d["min"]
        h.max = d["max"]
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.1f}, "
            f"min={self.min}, max={self.max})"
        )


class Metrics:
    """Registry of named counters and histograms for one simulation run."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set(self, name: str, value: int) -> None:
        """Set counter *name* to an absolute value (end-of-run gauges)."""
        self.counters[name] = int(value)

    def observe(self, name: str, value: int) -> None:
        """Record one observation into histogram *name*."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        h.observe(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never touched)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        """Histogram *name*, or ``None`` if nothing was observed into it."""
        return self.histograms.get(name)

    def snapshot(self) -> dict:
        """JSON-safe dump of every counter and histogram."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                k: h.to_dict() for k, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Metrics":
        """Exact inverse of :meth:`snapshot` (the round-trip contract)."""
        m = cls()
        m.counters = {k: int(v) for k, v in snap.get("counters", {}).items()}
        m.histograms = {
            k: Histogram.from_dict(d)
            for k, d in snap.get("histograms", {}).items()
        }
        return m

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self.counters)} counter(s), "
            f"{len(self.histograms)} histogram(s))"
        )
