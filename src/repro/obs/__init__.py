"""Observability: per-operation event tracing and a metrics registry.

See :mod:`repro.obs.trace` (Tracer, JSONL + Chrome trace_event output),
:mod:`repro.obs.metrics` (counters and latency histograms),
:mod:`repro.obs.schema` (trace schema + validator), and
:mod:`repro.obs.replay` (traced replay of sweep cells).
"""

from repro.obs.metrics import Histogram, Metrics
from repro.obs.trace import TRACE_KINDS, Tracer

#: Names re-exported lazily from :mod:`repro.obs.schema`, so that running
#: ``python -m repro.obs.schema`` does not import the module twice (runpy
#: warns when the target is already in ``sys.modules``).
_SCHEMA_NAMES = (
    "TRACE_FIELDS",
    "TRACE_LEVELS",
    "TraceSchemaError",
    "validate_event",
    "validate_jsonl",
)


def __getattr__(name: str):
    if name in _SCHEMA_NAMES:
        from repro.obs import schema

        return getattr(schema, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Histogram",
    "Metrics",
    "TRACE_FIELDS",
    "TRACE_KINDS",
    "TRACE_LEVELS",
    "TraceSchemaError",
    "Tracer",
    "validate_event",
    "validate_jsonl",
]
