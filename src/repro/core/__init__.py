"""Subpackage of repro."""
