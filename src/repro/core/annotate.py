"""Model-1 annotation algorithm (Section IV-A, Figure 4).

Synchronization operations are explicit markers separating inter-thread data
dependences; immediately before/after each one, WB and INV operations are
inserted according to the synchronization type.  This module is the
"algorithm decides, programmer refines" layer: each hook takes optional
programmer hints (address ranges, or a no-communication declaration) and
falls back to WB ALL / INV ALL.

Pattern → insertion summary (Figure 4):

* **Barrier** — before: WB of shared variables written since the last
  barrier (default WB ALL); after: INV of exposed reads until the next
  barrier (default INV ALL).
* **Critical section** — INV of CS exposed reads *immediately before* the
  acquire (legal because the cache cannot change between INV and acquire);
  WB of CS writes immediately before the release.  The MEB replaces the
  release-side WB ALL; the IEB replaces the acquire-side INV ALL.
* **Flag** — WB of writes since the last full-WB point before the set;
  INV of exposed reads after a successful wait.
* **Outside-critical-section communication (OCC)** — assumed unless the
  program declares otherwise: WB ALL before the acquire, INV ALL after the
  release.
* **Data race** — the racy store is followed by WB(flag)+WB(data); the racy
  load is preceded by INV (Figure 6b).

Under HCC every hook returns no operations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import ExperimentConfig
from repro.isa import ops as isa

#: A programmer hint: list of (byte address, byte length) ranges, or None
#: meaning "no information — use ALL", or () meaning "nothing to do".
Ranges = Sequence[tuple[int, int]] | None


class Annotator:
    """Emits the WB/INV (and epoch-marker) ops around each sync operation."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    # -- helpers -------------------------------------------------------------

    def _wb(self, ranges: Ranges) -> list[isa.Op]:
        if ranges is None:
            return [isa.WBAll()]
        return [isa.WB(addr, length) for addr, length in ranges]

    def _inv(self, ranges: Ranges) -> list[isa.Op]:
        if ranges is None:
            return [isa.INVAll()]
        return [isa.INV(addr, length) for addr, length in ranges]

    # -- barrier (Figure 4a) ---------------------------------------------------

    def before_barrier(self, wb: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return self._wb(wb)

    def after_barrier(self, inv: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return self._inv(inv)

    # -- critical section (Figures 4b, 4d) ---------------------------------------

    def before_acquire(
        self, *, occ: bool = True, cs_inv: Ranges = None, occ_wb: Ranges = None
    ) -> list[isa.Op]:
        """Ops placed immediately before a lock acquire.

        Order matters: the OCC write-back (posting data produced since the
        last full-WB point for consumers that dequeue it later) precedes the
        CS-entry invalidation.
        """
        if not self.config.annotations_enabled:
            return []
        out: list[isa.Op] = []
        if occ:
            out.extend(self._wb(occ_wb))
        if self.config.use_ieb and cs_inv is None:
            pass  # the IEB replaces the CS-entry INV ALL (armed after acquire)
        else:
            out.extend(self._inv(cs_inv))
        return out

    def after_acquire(self) -> list[isa.Op]:
        """Arm the entry buffers for the critical-section epoch."""
        if not self.config.annotations_enabled:
            return []
        if self.config.use_meb or self.config.use_ieb:
            return [
                isa.EpochBegin(
                    record_meb=self.config.use_meb,
                    ieb_mode=self.config.use_ieb,
                    kind="critical",
                )
            ]
        return []

    def before_release(self, cs_wb: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        out: list[isa.Op] = []
        if cs_wb is not None:
            out.extend(self._wb(cs_wb))
        else:
            out.append(isa.WBAll(via_meb=self.config.use_meb))
        if self.config.use_meb or self.config.use_ieb:
            out.append(isa.EpochEnd())
        return out

    def after_release(self, *, occ: bool = True, occ_inv: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled or not occ:
            return []
        return self._inv(occ_inv)

    # -- flag set/wait (Figure 4c) -------------------------------------------------

    def before_flag_set(self, wb: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return self._wb(wb)

    def after_flag_wait(self, inv: Ranges = None) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return self._inv(inv)

    # -- data races (Figure 6) --------------------------------------------------------

    def after_racy_store(self, addr: int, length: int = 4) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return [isa.WB(addr, length)]

    def before_racy_load(self, addr: int, length: int = 4) -> list[isa.Op]:
        if not self.config.annotations_enabled:
            return []
        return [isa.INV(addr, length)]


def expand(op_lists: Iterable[list[isa.Op]]) -> list[isa.Op]:
    """Flatten annotation fragments into a single op list."""
    out: list[isa.Op] = []
    for ops in op_lists:
        out.extend(ops)
    return out
