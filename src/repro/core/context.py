"""Thread programming API.

A workload thread is a Python generator over :mod:`repro.isa.ops` operations.
:class:`ThreadCtx` provides composable helpers (themselves generators, used
with ``yield from``) that bundle each synchronization operation with the
Model-1 annotations of Section IV-A.  Hot loops may also yield raw ops
directly — ``value = yield Read(addr)`` — which is what the inner kernels of
the SPLASH workloads do.

Programmer hints mirror the paper: every sync helper accepts optional
``(addr, length)`` range lists that replace WB ALL / INV ALL, and critical
sections accept ``occ=False`` when the program declares there is no
outside-critical-section communication.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, TYPE_CHECKING

from repro.core.annotate import Annotator, Ranges
from repro.isa import ops as isa

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine

#: The generator type produced by thread programs.
OpStream = Generator[isa.Op, Any, Any]

#: Reserved flag-ID base for internal pairwise channels (MPI layer).
_GLOBAL_BARRIER_ID = 0


class ThreadCtx:
    """Per-thread handle passed to every workload program."""

    def __init__(self, machine: "Machine", tid: int) -> None:
        self.machine = machine
        self.tid = tid
        self.annot: Annotator = machine.annotator

    @property
    def nthreads(self) -> int:
        return self.machine.num_threads

    # -- plain accesses ------------------------------------------------------

    def load(self, addr: int) -> OpStream:
        value = yield isa.Read(addr)
        return value

    def store(self, addr: int, value: Any) -> OpStream:
        yield isa.Write(addr, value)

    def compute(self, cycles: int) -> OpStream:
        if cycles > 0:
            yield isa.Compute(cycles)

    # -- barriers ---------------------------------------------------------------

    def barrier(
        self,
        bid: int = _GLOBAL_BARRIER_ID,
        *,
        count: int | None = None,
        wb: Ranges = None,
        inv: Ranges = None,
    ) -> OpStream:
        """Global barrier with Figure-4a annotations.

        ``wb``/``inv`` are programmer hints narrowing the default WB ALL /
        INV ALL; pass ``()`` to declare "nothing to write back/invalidate"
        (thread-private reuse of shared space).
        """
        for op in self.annot.before_barrier(wb):
            yield op
        yield isa.Barrier(bid, count if count is not None else self.nthreads)
        for op in self.annot.after_barrier(inv):
            yield op

    # -- critical sections --------------------------------------------------------

    def lock_acquire(
        self,
        lid: int,
        *,
        occ: bool = True,
        cs_inv: Ranges = None,
        occ_wb: Ranges = None,
    ) -> OpStream:
        for op in self.annot.before_acquire(occ=occ, cs_inv=cs_inv, occ_wb=occ_wb):
            yield op
        yield isa.LockAcquire(lid)
        for op in self.annot.after_acquire():
            yield op

    def lock_release(
        self,
        lid: int,
        *,
        occ: bool = True,
        cs_wb: Ranges = None,
        occ_inv: Ranges = None,
    ) -> OpStream:
        for op in self.annot.before_release(cs_wb):
            yield op
        yield isa.LockRelease(lid)
        for op in self.annot.after_release(occ=occ, occ_inv=occ_inv):
            yield op

    # -- condition flags --------------------------------------------------------------

    def flag_set(self, fid: int, value: int = 1, *, wb: Ranges = None) -> OpStream:
        for op in self.annot.before_flag_set(wb):
            yield op
        yield isa.FlagSet(fid, value)

    def flag_wait(self, fid: int, value: int = 1, *, inv: Ranges = None) -> OpStream:
        yield isa.FlagWait(fid, value)
        for op in self.annot.after_flag_wait(inv):
            yield op

    # -- data races (Figure 6b) -----------------------------------------------------------

    def racy_store(self, addr: int, value: Any) -> OpStream:
        yield isa.Write(addr, value)
        for op in self.annot.after_racy_store(addr):
            yield op

    def racy_load(self, addr: int) -> OpStream:
        for op in self.annot.before_racy_load(addr):
            yield op
        value = yield isa.Read(addr)
        return value

    # -- Model-2 raw instrumentation (emitted by the compiler) ------------------------------

    def wb_cons(self, addr: int, length: int, cons_tid: int) -> OpStream:
        yield isa.WBCons(addr, length, cons_tid)

    def inv_prod(self, addr: int, length: int, prod_tid: int) -> OpStream:
        yield isa.InvProd(addr, length, prod_tid)

    def wb_l3(self, addr: int, length: int) -> OpStream:
        yield isa.WBL3(addr, length)

    def inv_l2(self, addr: int, length: int) -> OpStream:
        yield isa.INVL2(addr, length)

    # -- bulk helpers -----------------------------------------------------------------------

    def load_many(self, addrs: Iterable[int]) -> OpStream:
        values = yield isa.ReadBatch(tuple(addrs))
        return values

    def store_many(self, pairs: Iterable[tuple[int, Any]]) -> OpStream:
        pairs = tuple(pairs)
        yield isa.WriteBatch(
            tuple(a for a, _ in pairs), tuple(v for _, v in pairs)
        )
