"""In-order core model: consumes a thread's operation stream.

The core advances its program generator, charges each operation's latency
from the protocol, and attributes cycles to Figure 9's stall categories:

* ``Read``/``Write``/``Compute`` → *rest*
* WB-family instructions → *WB stall*
* INV-family instructions → *INV stall*
* lock acquire/release → *lock stall* (queue wait included)
* barrier and flag operations → *barrier stall*

Non-blocking operations are executed back-to-back in a single engine step
(operation batching): latencies only interact across cores at
synchronization points, so a core may privately accumulate time between
them.  This is what makes an operation-level Python simulation fast enough
(DESIGN.md §2) while keeping per-core timing exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import SimulationError
from repro.isa import ops as isa
from repro.sim.stats import CoreStats, StallCat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine


class CPU:
    """One core executing one thread (one-to-one mapping, no migration)."""

    __slots__ = (
        "machine", "core_id", "tid", "program", "stats",
        "_send_value", "_sync_issue_time", "_sync_cat", "_sync_mnem",
        "_sync_arg", "_sync_n", "_done",
    )

    def __init__(self, machine: "Machine", core_id: int, tid: int, program) -> None:
        self.machine = machine
        self.core_id = core_id
        self.tid = tid
        self.program = program
        self.stats: CoreStats = machine.stats.per_core[core_id]
        self._send_value: Any = None
        self._sync_issue_time: int = 0
        self._sync_cat: StallCat = StallCat.REST
        self._sync_mnem: str = ""
        self._sync_arg: int = 0
        self._sync_n: int | None = None
        self._done = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.machine.engine.register_entity()
        self.machine.engine.schedule(0, self._step)

    def _finish(self) -> None:
        self._done = True
        self.stats.finish_time = self.machine.engine.now
        self.machine.engine.entity_finished()

    # -- execution -------------------------------------------------------------

    def _step(self) -> None:
        """Run non-blocking ops back-to-back; yield to the engine at syncs."""
        engine = self.machine.engine
        proto = self.machine.protocol
        stats = self.stats
        # Innermost simulator loop: bind the stall dict, the REST key, and
        # the program's send method locally, and update the REST bucket
        # in-place instead of through add_stall (protocol latencies are
        # already ints; Compute cycles are coerced explicitly).
        stalls = stats.stalls
        rest = StallCat.REST
        advance = self.program.send
        core_id = self.core_id
        accumulated = 0
        send = self._send_value
        self._send_value = None
        # Observability sinks: None when disabled, leaving a single
        # ``observing`` branch per operation on the hot path.
        tracer = self.machine.tracer
        metrics = self.machine.metrics
        observing = tracer is not None or metrics is not None
        # Fault injector: None when no plan is armed (one comparison on the
        # WB/INV branch only; plain accesses are never wbuf-stalled).
        faults = self.machine.faults

        while True:
            try:
                op = advance(send)
            except StopIteration:
                if accumulated:
                    engine.schedule(accumulated, self._finish)
                else:
                    self._finish()
                return
            send = None

            kind = type(op)
            if kind is isa.Read:
                if observing and tracer is not None:
                    tracer.cycle = engine.now + accumulated
                lat, send = proto.read(core_id, op.addr)
                stats.loads += 1
                stalls[rest] += lat
                accumulated += lat
                if observing:
                    self._obs_access("read", tracer, metrics, op.addr, lat)
            elif kind is isa.Write:
                if observing and tracer is not None:
                    tracer.cycle = engine.now + accumulated
                lat = proto.write(core_id, op.addr, op.value)
                stats.stores += 1
                stalls[rest] += lat
                accumulated += lat
                if observing:
                    self._obs_access(
                        "write", tracer, metrics, op.addr, lat, val=op.value
                    )
            elif kind is isa.Compute:
                cycles = int(op.cycles)
                if observing and tracer is not None:
                    tracer.emit(
                        "compute",
                        core_id,
                        lat=cycles,
                        cycle=engine.now + accumulated,
                    )
                stalls[rest] += cycles
                accumulated += cycles
            elif kind is isa.ReadBatch:
                values = []
                for addr in op.addrs:
                    if observing and tracer is not None:
                        tracer.cycle = engine.now + accumulated
                    lat, value = proto.read(core_id, addr)
                    stats.loads += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access("read", tracer, metrics, addr, lat)
                    values.append(value)
                send = values
            elif kind is isa.WriteBatch:
                for addr, value in zip(op.addrs, op.values, strict=True):
                    if observing and tracer is not None:
                        tracer.cycle = engine.now + accumulated
                    lat = proto.write(core_id, addr, value)
                    stats.stores += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access(
                            "write", tracer, metrics, addr, lat, val=value
                        )
            elif kind is isa.CopyBatch:
                for src, dst in zip(op.src_addrs, op.dst_addrs, strict=True):
                    if observing and tracer is not None:
                        tracer.cycle = engine.now + accumulated
                    lat, value = proto.read(core_id, src)
                    stats.loads += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access("read", tracer, metrics, src, lat)
                        if tracer is not None:
                            tracer.cycle = engine.now + accumulated
                    lat = proto.write(core_id, dst, value)
                    stats.stores += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access(
                            "write", tracer, metrics, dst, lat, val=value
                        )
            elif kind is isa.AddBatch:
                for addr, delta in zip(op.addrs, op.deltas, strict=True):
                    if observing and tracer is not None:
                        tracer.cycle = engine.now + accumulated
                    lat, value = proto.read(core_id, addr)
                    stats.loads += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access("read", tracer, metrics, addr, lat)
                        if tracer is not None:
                            tracer.cycle = engine.now + accumulated
                    lat = proto.write(core_id, addr, value + delta)
                    stats.stores += 1
                    stalls[rest] += lat
                    accumulated += lat
                    if observing:
                        self._obs_access(
                            "write", tracer, metrics, addr, lat, val=value + delta
                        )
            elif isinstance(op, isa.SYNC_OPS):
                self._issue_sync(op, accumulated)
                return
            else:
                if observing and tracer is not None:
                    tracer.cycle = engine.now + accumulated
                lat, cat = self._wbinv(proto, op)
                if faults is not None:
                    # WB/INV drain through the write buffer (Section III-C);
                    # an injected drain stall delays their retirement.
                    lat += faults.wbuf_stall(core_id)
                stats.add_stall(cat, lat)
                accumulated += lat
                if observing:
                    self._obs_wbinv(tracer, metrics, op, lat)

    # -- observability ---------------------------------------------------------
    #
    # These helpers only run when a tracer or metrics registry is attached
    # (the hot loop guards on a single ``observing`` flag otherwise).  The
    # tracer's current-op cycle is published before each dispatch so that
    # protocol-internal events (fills, evictions) share the op's timestamp.

    def _obs_access(
        self, kind: str, tracer, metrics, addr: int, lat: int, val=None
    ) -> None:
        """Report one load/store to the attached observability sinks.

        Write events carry their stored value when it is a JSON scalar
        (int/float) so the trace is program-reconstructible; object-valued
        stores trace without ``val`` (replay substitutes 0).
        """
        if tracer is not None:
            if val is not None and (type(val) is not int and type(val) is not float):
                val = None
            tracer.emit(
                kind,
                self.core_id,
                addr=addr,
                line=self.machine.hier.line_of(addr),
                lat=lat,
                val=val,
            )
        if metrics is not None:
            metrics.observe(f"lat.{kind}", lat)

    def _obs_wbinv(self, tracer, metrics, op: isa.Op, lat: int) -> None:
        """Report one WB/INV/epoch instruction to the observability sinks.

        Operand detail rides in ``n``/``arg`` (ranged length; peer thread
        id for the CONS/PROD flavors; ``via_meb`` for WB_ALL; the
        ``record_meb | ieb_mode << 1`` mask for epoch_begin) so that
        :mod:`repro.workloads.replay` can rebuild the exact instruction.
        """
        if isinstance(op, isa.WB_OPS):
            kind = "wb"
        elif isinstance(op, isa.INV_OPS):
            kind = "inv"
        else:
            kind = "epoch"
        addr = getattr(op, "addr", None)
        if tracer is not None:
            length = getattr(op, "length", None)
            arg = getattr(op, "cons_tid", None)
            if arg is None:
                arg = getattr(op, "prod_tid", None)
            if arg is None and type(op) is isa.WBAll and op.via_meb:
                arg = 1
            if type(op) is isa.EpochBegin:
                arg = int(op.record_meb) | int(op.ieb_mode) << 1
            tracer.emit(
                kind,
                self.core_id,
                addr=addr,
                line=self.machine.hier.line_of(addr) if addr is not None else None,
                lat=lat,
                op=op.mnemonic,
                arg=arg,
                n=length,
            )
        if metrics is not None:
            metrics.inc(f"cpu.{kind}.{op.mnemonic}")
            if kind != "epoch":
                metrics.observe(f"lat.{kind}", lat)

    def _wbinv(self, proto, op: isa.Op) -> tuple[int, StallCat]:
        """Dispatch a WB/INV/epoch op; return (latency, stall category)."""
        core = self.core_id
        stats = self.stats
        kind = type(op)
        if kind is isa.WB:
            stats.wb_ops += 1
            return proto.wb_range(core, op.addr, op.length), StallCat.WB
        if kind is isa.WBAll:
            stats.wb_ops += 1
            return proto.wb_all(core, via_meb=op.via_meb), StallCat.WB
        if kind is isa.WBCons:
            stats.wb_ops += 1
            return proto.wb_cons(core, op.addr, op.length, op.cons_tid), StallCat.WB
        if kind is isa.WBConsAll:
            stats.wb_ops += 1
            return proto.wb_cons_all(core, op.cons_tid), StallCat.WB
        if kind is isa.WBL3:
            stats.wb_ops += 1
            return proto.wb_l3(core, op.addr, op.length), StallCat.WB
        if kind is isa.WBAllL3:
            stats.wb_ops += 1
            return proto.wb_all_l3(core), StallCat.WB
        if kind is isa.INV:
            stats.inv_ops += 1
            return proto.inv_range(core, op.addr, op.length), StallCat.INV
        if kind is isa.INVAll:
            stats.inv_ops += 1
            return proto.inv_all(core), StallCat.INV
        if kind is isa.InvProd:
            stats.inv_ops += 1
            return proto.inv_prod(core, op.addr, op.length, op.prod_tid), StallCat.INV
        if kind is isa.InvProdAll:
            stats.inv_ops += 1
            return proto.inv_prod_all(core, op.prod_tid), StallCat.INV
        if kind is isa.INVL2:
            stats.inv_ops += 1
            return proto.inv_l2(core, op.addr, op.length), StallCat.INV
        if kind is isa.INVAllL2:
            stats.inv_ops += 1
            return proto.inv_all_l2(core), StallCat.INV
        if kind is isa.EpochBegin:
            return proto.epoch_begin(core, op.record_meb, op.ieb_mode), StallCat.REST
        if kind is isa.EpochEnd:
            return proto.epoch_end(core), StallCat.REST
        raise SimulationError(f"unknown operation {op!r}")

    # -- synchronization -----------------------------------------------------------

    def _issue_sync(self, op: isa.Op, accumulated: int) -> None:
        """Charge accumulated time, then hand the op to the sync controller."""
        engine = self.machine.engine
        self._sync_mnem = op.mnemonic

        def issue() -> None:
            self._sync_issue_time = engine.now
            ctl = self.machine.sync
            core = self.core_id
            kind = type(op)
            if kind is isa.Barrier:
                self._sync_cat = StallCat.BARRIER
                self._sync_arg, self._sync_n = op.bid, op.count
                ctl.barrier_arrive(core, op.bid, op.count, self._sync_resume)
            elif kind is isa.LockAcquire:
                self._sync_cat = StallCat.LOCK
                self._sync_arg, self._sync_n = op.lid, None
                ctl.lock_acquire(core, op.lid, self._sync_resume)
            elif kind is isa.LockRelease:
                self._sync_cat = StallCat.LOCK
                self._sync_arg, self._sync_n = op.lid, None
                ctl.lock_release(core, op.lid, self._sync_resume)
            elif kind is isa.FlagSet:
                self._sync_cat = StallCat.BARRIER
                self._sync_arg, self._sync_n = op.fid, op.value
                ctl.flag_set(core, op.fid, op.value, self._sync_resume)
            elif kind is isa.FlagWait:
                self._sync_cat = StallCat.BARRIER
                self._sync_arg, self._sync_n = op.fid, op.value
                ctl.flag_wait(core, op.fid, op.value, self._sync_resume)
            else:  # pragma: no cover - SYNC_OPS is exhaustive
                raise SimulationError(f"unknown sync op {op!r}")

        engine.schedule(accumulated, issue)

    def _sync_resume(self) -> None:
        waited = self.machine.engine.now - self._sync_issue_time
        self.stats.add_stall(self._sync_cat, waited)
        tracer = self.machine.tracer
        if tracer is not None:
            # One event per sync op, stamped at issue and spanning the wait.
            # arg = sync variable id, n = barrier count / flag value.
            tracer.emit(
                "sync",
                self.core_id,
                op=self._sync_mnem,
                lat=waited,
                cycle=self._sync_issue_time,
                arg=self._sync_arg,
                n=self._sync_n,
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.observe(f"sync.wait.{self._sync_mnem}", waited)
        self._send_value = None
        self._step()
