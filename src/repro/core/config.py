"""Experiment configurations (paper Table II).

Intra-block experiments:

========  ==========================================================
Name      Configuration
========  ==========================================================
Base      WB ALL and INV ALL at every synchronization annotation
B+M       Base plus the MEB (used in critical sections)
B+I       Base plus the IEB (used in critical sections)
B+M+I     Base plus both buffers
HCC       Hardware cache coherence (full-map directory MESI)
========  ==========================================================

Inter-block experiments:

========  ==========================================================
Base      WB ALL to L3; INV ALL from L2 (always global, no addresses)
Addr      WB of addresses to L3; INV of addresses from L2
Addr+L    Level-adaptive WB_CONS and INV_PROD (addresses + ThreadMap)
HCC       Hierarchical full-map directory MESI
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigError


class InterMode(str, Enum):
    """How Model-2 instrumentation is lowered (inter-block experiments)."""

    BASE = "base"  # WB ALL to L3 / INV ALL from L2
    ADDR = "addr"  # explicit address ranges, always global (WB_L3 / INV_L2)
    ADDR_LEVEL = "addr_l"  # WB_CONS / INV_PROD (level-adaptive)
    HCC = "hcc"  # no instrumentation


@dataclass(frozen=True)
class ExperimentConfig:
    """One column of Table II."""

    name: str
    hardware_coherent: bool
    use_meb: bool = False
    use_ieb: bool = False
    inter_mode: InterMode = InterMode.BASE

    def __post_init__(self) -> None:
        if self.hardware_coherent and (self.use_meb or self.use_ieb):
            raise ConfigError("HCC has no MEB/IEB")
        if self.hardware_coherent and self.inter_mode != InterMode.HCC:
            object.__setattr__(self, "inter_mode", InterMode.HCC)

    @property
    def annotations_enabled(self) -> bool:
        return not self.hardware_coherent


# -- intra-block configurations (Table II, upper half) ------------------------

INTRA_BASE = ExperimentConfig("Base", hardware_coherent=False)
INTRA_BM = ExperimentConfig("B+M", hardware_coherent=False, use_meb=True)
INTRA_BI = ExperimentConfig("B+I", hardware_coherent=False, use_ieb=True)
INTRA_BMI = ExperimentConfig(
    "B+M+I", hardware_coherent=False, use_meb=True, use_ieb=True
)
INTRA_HCC = ExperimentConfig("HCC", hardware_coherent=True, inter_mode=InterMode.HCC)

INTRA_CONFIGS = (INTRA_HCC, INTRA_BASE, INTRA_BM, INTRA_BI, INTRA_BMI)

# -- inter-block configurations (Table II, lower half) -------------------------

INTER_BASE = ExperimentConfig(
    "Base", hardware_coherent=False, inter_mode=InterMode.BASE
)
INTER_ADDR = ExperimentConfig(
    "Addr", hardware_coherent=False, inter_mode=InterMode.ADDR
)
INTER_ADDR_L = ExperimentConfig(
    "Addr+L",
    hardware_coherent=False,
    use_meb=True,
    use_ieb=True,
    inter_mode=InterMode.ADDR_LEVEL,
)
INTER_HCC = ExperimentConfig("HCC", hardware_coherent=True, inter_mode=InterMode.HCC)

INTER_CONFIGS = (INTER_HCC, INTER_BASE, INTER_ADDR, INTER_ADDR_L)


def intra_config(name: str) -> ExperimentConfig:
    for cfg in INTRA_CONFIGS:
        if cfg.name == name:
            return cfg
    raise ConfigError(f"unknown intra-block configuration {name!r}")


def inter_config(name: str) -> ExperimentConfig:
    for cfg in INTER_CONFIGS:
        if cfg.name == name:
            return cfg
    raise ConfigError(f"unknown inter-block configuration {name!r}")
