"""Machine assembly: parameters + configuration → runnable simulation.

A :class:`Machine` wires together the event engine, the physical hierarchy,
the selected protocol (a registered memory model from :mod:`repro.models`;
hardware-coherent Table II configurations always select directory MESI),
the synchronization controller, the shared address space,
and one CPU per spawned thread.  ``run()`` drives the event loop to
completion, records the execution time, then flushes caches (untimed, with
traffic accounting frozen) so callers can verify results in main memory.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.threadmap import ThreadMapTable
from repro.common.errors import ConfigError
from repro.common.params import MachineParams
from repro.core.annotate import Annotator
from repro.core.config import ExperimentConfig
from repro.core.context import OpStream, ThreadCtx
from repro.core.cpu import CPU
from repro.mem.addrspace import AddressSpace, SharedArray
from repro.noc.placement import Placement, identity_placement
from repro.sim.engine import Engine
from repro.sim.stats import MachineStats
from repro.sync.controller import SyncController

#: A thread program: callable taking (ctx) and returning an op generator.
Program = Callable[[ThreadCtx], OpStream]


class Machine:
    """One simulated chip executing one multithreaded program."""

    def __init__(
        self,
        params: MachineParams,
        config: ExperimentConfig,
        *,
        num_threads: int | None = None,
        placement: Placement | None = None,
        detect_staleness: bool = False,
        tracer=None,
        metrics=None,
        faults=None,
        engine: str | None = None,
        model: str | None = None,
    ) -> None:
        from repro.engines import resolve_engine
        from repro.models import resolve_model

        self.params = params
        self.config = config
        #: Selected simulator core (:mod:`repro.engines`): ``engine`` names
        #: a registered :class:`~repro.engines.EngineSpec` (``None`` falls
        #: back to ``$REPRO_ENGINE``, then ``ref``).  Engines are
        #: bit-identical by contract; only wall-clock speed differs.
        self.engine_spec = resolve_engine(engine)
        #: Observability sinks (:mod:`repro.obs`): a per-operation event
        #: Tracer and/or a Metrics registry.  ``None`` (the default) means
        #: disabled; attaching them never changes simulated results — the
        #: neutrality test asserts bit-identical statistics either way.
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`repro.faults.injector.FaultInjector`.  ``None``
        #: (the default) means no fault plan is armed: every hook point is
        #: a single pointer comparison and results are bit-identical to a
        #: build without the fault subsystem (tests/faults/test_neutrality).
        self.faults = faults
        if placement is None:
            placement = identity_placement(
                params, num_threads if num_threads is not None else params.num_cores
            )
        if num_threads is not None and placement.num_threads != num_threads:
            raise ConfigError("placement size disagrees with num_threads")
        self.placement = placement
        self.num_threads = placement.num_threads

        self.engine = Engine()
        self.stats = MachineStats.for_cores(params.num_cores)
        self.hier = Hierarchy(
            params, self.stats, cache_class=self.engine_spec.cache_class
        )
        self.space = AddressSpace(line_bytes=params.line_bytes)
        self.annotator = Annotator(config)

        #: Selected memory model (:mod:`repro.models`): ``model`` names a
        #: registered :class:`~repro.models.ModelSpec` (``None`` falls back
        #: to ``$REPRO_MODEL``, then ``base``).  Hardware-coherent Table II
        #: configurations always resolve to ``hcc`` — MESI *is* the model
        #: those configurations name, so sweeps can pass one model id to
        #: every cell, HCC reference cells included.
        if config.hardware_coherent:
            self.model_spec = resolve_model("hcc")
        else:
            self.model_spec = resolve_model(model)
        threadmap = (
            ThreadMapTable(placement) if params.num_blocks > 1 else None
        )
        self.protocol = self.model_spec.factory(
            self.hier,
            config,
            threadmap=threadmap,
            detect_staleness=detect_staleness,
        )
        self.protocol.tracer = tracer
        self.protocol.metrics = metrics
        self.sync = SyncController(
            self.hier.mesh, self.engine, self.stats,
            tracer=tracer, metrics=metrics,
        )
        if faults is not None:
            faults.arm(self)
        self._cpus: list[CPU] = []
        self._ran = False

    # -- allocation -------------------------------------------------------------

    def array(
        self, name: str, shape: int | tuple[int, int], *, pad_rows: bool = False
    ) -> SharedArray:
        """Allocate a named shared array (see :class:`SharedArray`)."""
        return SharedArray(self.space, name, shape, pad_rows=pad_rows)

    # -- thread management ---------------------------------------------------------

    def spawn(self, program: Program) -> int:
        """Spawn the next thread (IDs assigned in spawn order); returns its tid."""
        tid = len(self._cpus)
        if tid >= self.num_threads:
            raise ConfigError(
                f"placement holds {self.num_threads} threads; cannot spawn more"
            )
        core = self.placement.core_of(tid)
        ctx = ThreadCtx(self, tid)
        cpu = self.engine_spec.cpu_class(self, core, tid, program(ctx))
        self._cpus.append(cpu)
        return tid

    def spawn_all(self, program: Program) -> None:
        """Spawn ``num_threads`` instances of the same SPMD program."""
        for _ in range(self.num_threads):
            self.spawn(program)

    # -- execution ---------------------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> MachineStats:
        """Execute to completion; flush caches; return statistics."""
        if self._ran:
            raise ConfigError("a Machine instance runs exactly once")
        if not self._cpus:
            raise ConfigError("no threads spawned")
        self._ran = True
        for cpu in self._cpus:
            cpu.start()
        self.stats.exec_time = self.engine.run(max_cycles=max_cycles)
        self.stats.frozen = True  # verification flush must not count traffic
        if self.faults is not None:
            # The timed run is over: verification-time flushes must neither
            # fire faults nor advance any fault RNG stream.
            self.faults.freeze()
        buffers = self.buffer_stats()
        self.stats.meb_overflow_events = buffers["meb_overflows"]
        self.stats.ieb_evictions = buffers["ieb_evictions"]
        self.stats.ieb_redundant_invalidations = buffers[
            "ieb_redundant_invalidations"
        ]
        if self.metrics is not None:
            # End-of-run gauges: the engine hook point plus headline totals,
            # recorded here so the event loop itself stays uninstrumented.
            self.metrics.set("engine.events", self.engine.events_scheduled)
            self.metrics.set("machine.exec_time", self.stats.exec_time)
            self.metrics.set("machine.total_flits", self.stats.total_flits)
        self.protocol.finalize()
        return self.stats

    # -- verification helpers ---------------------------------------------------------------

    def read_word(self, byte_addr: int) -> Any:
        """Read a word from main memory (valid after ``run()``)."""
        return self.hier.memory.read_word(self.hier.word_addr(byte_addr))

    def read_array(self, arr: SharedArray) -> list[Any]:
        """All elements of *arr* from main memory, row-major."""
        return [self.read_word(a) for a in arr.element_addrs()]

    def buffer_stats(self) -> dict[str, int]:
        """Aggregate MEB/IEB counters (zeros under HCC).

        ``meb_overflows`` counts epochs whose MEB spilled (WB ALL fell back
        to a full tag walk); ``ieb_evictions`` counts FIFO evictions (later
        re-reads pay a redundant invalidation).  Both are the quantities the
        Section IV-B sizing argument is about.
        """
        mebs = getattr(self.protocol, "mebs", [])
        iebs = getattr(self.protocol, "iebs", [])
        return {
            "meb_insertions": sum(m.insertions for m in mebs),
            "meb_overflows": sum(m.overflow_events for m in mebs),
            "ieb_evictions": sum(i.evictions for i in iebs),
            "ieb_redundant_invalidations": sum(
                i.redundant_invalidations for i in iebs
            ),
        }

    @property
    def stale_reads(self):
        """Stale reads logged by the detector (``detect_staleness=True``).

        Empty under HCC (hardware coherence cannot go stale), and empty for
        any race-free program whose WB/INV annotations are sufficient — the
        porting aid a developer targeting this machine would reach for.
        """
        return getattr(self.protocol, "stale_reads", [])
