"""Engine registry: selectable simulator cores behind one interface.

An *engine* is a (CPU class, cache class) pair that executes the exact same
operation streams against the exact same protocol semantics:

* ``ref``  — the reference core (:class:`repro.core.cpu.CPU` over the
  per-set-dict :class:`repro.mem.cache.Cache`): one protocol call per
  memory word, the code the semantics documentation points at.
* ``fast`` — the packed fast-path core (:class:`~repro.engines.fastcpu.
  FastCPU` over :class:`~repro.engines.fastcache.PackedCache`): flat
  tag/stamp arrays, fused L1-hit loops, batch macro-ops executed in one
  dispatch.

The two engines are required to be *bit-identical*: same
:class:`~repro.sim.stats.MachineStats`, same final-memory digest, same
traces when tracing is enabled (``tests/engines`` enforces this; the CI
``fastcore-equivalence`` job runs it on every push).  Because results
never differ, the sweep result cache is deliberately engine-agnostic.

Selection: pass ``engine="fast"`` to :class:`repro.core.machine.Machine`
(or ``--engine fast`` on the CLI), or set the ``REPRO_ENGINE`` environment
variable.  An explicit argument wins over the environment; the default is
``ref``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.core.cpu import CPU
from repro.engines.fastcache import PackedCache
from repro.engines.fastcpu import FastCPU
from repro.mem.cache import Cache

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Registry default (also used when ``REPRO_ENGINE`` is unset or empty).
DEFAULT_ENGINE = "ref"


@dataclass(frozen=True)
class EngineSpec:
    """One selectable simulator core: its CPU and cache implementations."""

    name: str
    cpu_class: type
    cache_class: type
    description: str


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add *spec* to the registry (last registration of a name wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def available_engines() -> tuple[str, ...]:
    """Registered engine names, registration order."""
    return tuple(_REGISTRY)


def resolve_engine(name: str | None = None) -> EngineSpec:
    """Resolve an engine by *name*, the environment, or the default.

    ``None`` falls back to ``$REPRO_ENGINE``, then to ``ref``.  Unknown
    names raise :class:`~repro.common.errors.ConfigError` listing the
    registered engines.
    """
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown engine {name!r} (available: "
            + ", ".join(available_engines()) + ")"
        )
    return spec


register_engine(
    EngineSpec(
        name="ref",
        cpu_class=CPU,
        cache_class=Cache,
        description="reference core: per-op protocol calls, dict-LRU cache",
    )
)
register_engine(
    EngineSpec(
        name="fast",
        cpu_class=FastCPU,
        cache_class=PackedCache,
        description="packed fast-path core: flat arrays, fused L1-hit loops",
    )
)
