"""Packed tag/state/LRU arrays: the fast engine's cache structure.

:class:`PackedCache` is a drop-in replacement for
:class:`repro.mem.cache.Cache` that stores the tag array as flat
slot-indexed lists (``slot = set * assoc + way``) instead of one dict per
set:

* ``_tags[slot]``  — resident line address (or ``None`` for a free way),
* ``_lines[slot]`` — the :class:`~repro.mem.line.CacheLine` object,
* ``_stamps[slot]``— monotonic LRU stamp (larger = more recently used),
* ``_index``       — one flat ``line_addr → slot`` dict for O(1) lookup
  and O(1) way-indexed :meth:`line_id` (no linear tag scan).

Observable behaviour is bit-identical to the reference cache: the
reference keeps each set's dict in LRU→MRU insertion order, touches
promote to MRU, and eviction takes the set's oldest entry.  Stamps encode
exactly that order — every touch/insert writes a fresh maximal stamp, the
eviction victim is the minimal stamp in the set, and :meth:`lines` yields
each set's lines sorted by stamp — so every iteration-order-sensitive
consumer (WB ALL sample lines, ``inv_all``, verification flushes) sees
the same sequence as the reference engine.

The hot-path structures (``_index``, ``_lines``, ``_stamps``) are never
reassigned after construction, so the fast CPU may bind them locally once
per scheduling step.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.params import CacheParams
from repro.mem.line import CacheLine


class PackedCache:
    """Set-associative cache over flat packed arrays with true-LRU stamps."""

    __slots__ = (
        "params", "name", "_set_mask", "_assoc",
        "_index", "_tags", "_lines", "_stamps", "_stamp",
    )

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        # CacheParams guarantees num_sets is a power of two, so set indexing
        # is a mask rather than a modulo (hot path: every lookup/insert).
        self._set_mask = params.num_sets - 1
        self._assoc = params.assoc
        slots = params.num_sets * params.assoc
        self._index: dict[int, int] = {}
        self._tags: list[int | None] = [None] * slots
        self._lines: list[CacheLine | None] = [None] * slots
        self._stamps: list[int] = [0] * slots
        self._stamp = 0

    # -- geometry -----------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def line_id(self, line_addr: int) -> int:
        """Position of a resident line in the tag array: set*assoc + way.

        Slots are laid out as ``set * assoc + way`` by construction, so the
        index lookup *is* the line ID — O(1), and stable across LRU touches
        (a line keeps its physical way until it is evicted or removed).
        """
        slot = self._index.get(line_addr)
        if slot is None:
            raise KeyError(f"line {line_addr:#x} not resident in {self.name}")
        return slot

    # -- lookup / insert ----------------------------------------------------

    def lookup(self, line_addr: int, *, touch: bool = True) -> CacheLine | None:
        """Return the resident line or None.  ``touch`` updates LRU order."""
        slot = self._index.get(line_addr)
        if slot is None:
            return None
        if touch:
            self._stamp += 1
            self._stamps[slot] = self._stamp
        return self._lines[slot]

    def insert(self, line: CacheLine) -> CacheLine | None:
        """Insert *line* as MRU; return the evicted victim, if any.

        The caller owns victim handling (dirty victims must be written back
        by the coherence policy before their state is dropped).
        """
        la = line.line_addr
        self._stamp += 1
        slot = self._index.get(la)
        if slot is not None:
            self._lines[slot] = line
            self._stamps[slot] = self._stamp
            return None
        base = (la & self._set_mask) * self._assoc
        tags = self._tags
        victim: CacheLine | None = None
        free = -1
        for s in range(base, base + self._assoc):
            if tags[s] is None:
                free = s
                break
        if free < 0:
            # Set full: evict the way with the minimal stamp (the set's
            # least recently used line — the reference dict's oldest entry).
            stamps = self._stamps
            free = min(range(base, base + self._assoc), key=stamps.__getitem__)
            victim = self._lines[free]
            del self._index[tags[free]]  # type: ignore[arg-type]
        tags[free] = la
        self._lines[free] = line
        self._stamps[free] = self._stamp
        self._index[la] = free
        return victim

    def remove(self, line_addr: int) -> CacheLine | None:
        """Invalidate (drop) a line; return it if it was resident."""
        slot = self._index.pop(line_addr, None)
        if slot is None:
            return None
        line = self._lines[slot]
        self._tags[slot] = None
        self._lines[slot] = None
        return line

    # -- traversal ----------------------------------------------------------

    def lines(self) -> list[CacheLine]:
        """All resident lines (tag-array walk order: sets ascending, LRU→MRU).

        Visits only occupied slots (via ``_index``) with a single flat sort
        keyed by ``(set, stamp)`` — stamps are unique, so within a set this
        is exactly the reference dict's LRU→MRU order.  Cost scales with
        residency, not geometry (tag walks run every epoch; most sets are
        empty in the scaled-down simulated caches).
        """
        if not self._index:
            return []
        assoc = self._assoc
        stamps = self._stamps
        lines_ = self._lines
        order = sorted(
            (slot // assoc, stamps[slot], slot)
            for slot in self._index.values()
        )
        return [lines_[slot] for _, _, slot in order]

    def resident_line_addrs(self) -> list[int]:
        return [ln.line_addr for ln in self.lines()]

    def dirty_lines(self) -> list[CacheLine]:
        """Resident dirty lines, in :meth:`lines` order (filter-then-sort)."""
        assoc = self._assoc
        stamps = self._stamps
        lines_ = self._lines
        order = sorted(
            (slot // assoc, stamps[slot], slot)
            for slot in self._index.values()
            if lines_[slot].dirty  # type: ignore[union-attr]
        )
        return [lines_[slot] for _, _, slot in order]

    def clear(self, *, on_evict: Callable[[CacheLine], Any] | None = None) -> int:
        """Drop every resident line, optionally visiting each; return count."""
        n = len(self._index)
        if on_evict is not None:
            for line in self.lines():
                on_evict(line)
        self._index.clear()
        for slot in range(len(self._tags)):
            self._tags[slot] = None
            self._lines[slot] = None
        return n

    @property
    def occupancy(self) -> int:
        return len(self._index)
