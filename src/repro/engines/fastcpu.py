"""Fast-engine core: fused L1-hit execution behind the CPU interface.

:class:`FastCPU` overrides :meth:`repro.core.cpu.CPU._step` with two
protocol-specialized loops that execute L1 *hits* — by far the most common
memory operation — inline against the :class:`~repro.engines.fastcache.
PackedCache` arrays, without a protocol method call, a dict-reorder LRU
touch, or per-access float math:

* address arithmetic is shift/mask (line sizes are powers of two),
* the hit latency ``max(1, round(l1_rt * (1 - overlap)))`` is a
  precomputed constant,
* loads/stores/hits/stall counters accumulate in locals and flush to
  :class:`~repro.sim.stats.CoreStats` at scheduling boundaries,
* batch macro-ops (``ReadBatch``/``WriteBatch``/``CopyBatch``/``AddBatch``)
  run their whole word sequence inside one dispatch.

Everything that is not a plain L1 hit — misses, IEB-armed refreshes, MESI
S-state upgrades, WB/INV instructions, synchronization — delegates to the
*shared* protocol/sync implementations, so the complex paths have exactly
one implementation and the fast engine inherits their semantics (and their
fault-injection hooks) verbatim.  When an observability sink or the
staleness detector is attached, the whole step falls back to the reference
loop: instrumented runs are reference runs.

Bit-identity argument, per fused path (vs. the reference protocols):

* incoherent read hit: requires a resident line and — in an IEB-armed
  epoch — the line being refreshed (IEB membership) or the target word
  locally dirty; charges ``l1_hits += 1`` and the overlapped L1 latency.
* incoherent write hit: resident line; writes the word, sets the per-word
  dirty bit, records a clean→dirty transition in the MEB; same charge.
* MESI read hit: resident line in M/E/S; same charge.
* MESI write hit: resident line in M or E; E→M promotes through the same
  directory fix-ups as the reference (owner, L3 owner_block); same charge.

All other cases take the exact reference code path.
"""

from __future__ import annotations

from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.mesi import MESIProtocol
from repro.core.cpu import CPU
from repro.isa import ops as isa
from repro.mem.line import CacheLine, MESIState
from repro.sim.stats import StallCat, TrafficCat


class FastCPU(CPU):
    """One core executing one thread through the fused fast paths."""

    __slots__ = ()

    def _step(self) -> None:
        """Dispatch to a protocol-specialized loop (or the reference one)."""
        machine = self.machine
        proto = machine.protocol
        if (
            machine.tracer is not None
            or machine.metrics is not None
            or getattr(proto, "detect_staleness", False)
        ):
            # Instrumented runs take the reference loop wholesale so traces,
            # metrics, and the staleness shadow are bit-identical.
            return CPU._step(self)
        if type(proto) is IncoherentProtocol:
            return self._step_incoherent(proto)
        if type(proto) is MESIProtocol:
            return self._step_mesi(proto)
        # Subclassed protocols (rc, sisd — see repro/models/) override hook
        # methods the packed loops bypass, so they take the reference loop.
        return CPU._step(self)

    # -- incoherent fast loop ----------------------------------------------

    def _step_incoherent(self, proto: IncoherentProtocol) -> None:
        engine = self.machine.engine
        stats = self.stats
        stalls = stats.stalls
        rest = StallCat.REST
        advance = self.program.send
        core_id = self.core_id
        faults = self.machine.faults
        hier = proto.hier
        l1 = hier.l1s[core_id]
        # PackedCache internals (never reassigned; see fastcache module doc).
        index_get = l1._index.get
        lines_arr = l1._lines
        stamps = l1._stamps
        line_bytes = hier.line_bytes
        line_shift = line_bytes.bit_length() - 1
        off_mask = line_bytes - 1
        hit_lat = max(
            1, round(hier.l1_latency() * (1.0 - proto.machine.core.overlap))
        )
        ieb = proto.iebs[core_id]
        use_meb = proto.use_meb
        meb_record = proto.mebs[core_id].record_write
        proto_read = proto.read
        proto_write = proto.write
        ov = proto._overlapped
        l2_row = hier.l2_banks[hier.block_of_core(core_id)]
        cpb = hier.machine.cores_per_block
        l2_lat_row = hier._l2_lat[core_id]
        count_line = hier.count_line_transfer
        linefill = TrafficCat.LINEFILL
        wb_l1 = proto._wb_l1_line
        l1_insert = l1.insert
        Read, Write, Compute = isa.Read, isa.Write, isa.Compute
        ReadBatch, WriteBatch = isa.ReadBatch, isa.WriteBatch
        CopyBatch, AddBatch = isa.CopyBatch, isa.AddBatch

        acc = 0          # this step's total simulated cycles
        rest_cyc = 0     # portion attributed to StallCat.REST
        loads = 0
        stores = 0
        hits = 0
        misses = 0
        send = self._send_value
        self._send_value = None
        # The LRU stamp counter and the IEB armed flag live in locals on the
        # fused paths.  Every delegated call (protocol read/write, WB/INV,
        # sync) may advance the counter or rearm the IEB, so the locals are
        # written back before and reloaded after each delegation.
        stamp = l1._stamp
        armed = ieb.armed

        def l2_fetch(la):
            """Inline ``_fetch_into_l1`` for a plain L1 miss that hits the
            home L2 bank: same touch, same victim handling (delegated), same
            LINEFILL accounting, same table-driven latency.  Returns ``None``
            on an L2 miss — the caller then delegates the whole operation to
            the shared protocol, which re-probes without side effects."""
            nonlocal stamp, misses
            if faults is not None:
                # Chaos runs route every miss through the shared protocol so
                # injected NoC/memory delays apply; the inline path assumes
                # the fault-free latency tables.
                return None
            bank = l2_row[la % cpb]
            bslot = bank._index.get(la)
            if bslot is None:
                return None
            bs = bank._stamp + 1
            bank._stamp = bs
            bank._stamps[bslot] = bs
            line = CacheLine(la, list(bank._lines[bslot].data))
            l1._stamp = stamp
            victim = l1_insert(line)
            if victim is not None and victim.dirty:
                wb_l1(core_id, victim, critical=False)
            stamp = l1._stamp
            count_line(linefill)
            misses += 1
            return line

        while True:
            try:
                op = advance(send)
            except StopIteration:
                l1._stamp = stamp
                stats.loads += loads
                stats.stores += stores
                stats.l1_hits += hits
                stats.l1_misses += misses
                stalls[rest] += rest_cyc
                if acc:
                    engine.schedule(acc, self._finish)
                else:
                    self._finish()
                return
            send = None

            kind = type(op)
            if kind is Read:
                addr = op.addr
                la = addr >> line_shift
                slot = index_get(la)
                if slot is not None:
                    word = (addr & off_mask) >> 2
                    line = lines_arr[slot]
                    if (
                        not armed
                        or ieb._mask >> la & 1
                        or line.dirty_mask >> word & 1
                    ):
                        stamp += 1
                        stamps[slot] = stamp
                        hits += 1
                        loads += 1
                        rest_cyc += hit_lat
                        acc += hit_lat
                        send = line.data[word]
                        continue
                elif not armed or ieb._mask >> la & 1:
                    line = l2_fetch(la)
                    if line is not None:
                        loads += 1
                        lat = l2_lat_row[la % cpb]
                        rest_cyc += lat
                        acc += lat
                        send = line.data[(addr & off_mask) >> 2]
                        continue
                l1._stamp = stamp
                lat, send = proto_read(core_id, addr)
                stamp = l1._stamp
                loads += 1
                rest_cyc += lat
                acc += lat
            elif kind is Write:
                addr = op.addr
                la = addr >> line_shift
                slot = index_get(la)
                if slot is not None:
                    line = lines_arr[slot]
                    stamp += 1
                    stamps[slot] = stamp
                    word = (addr & off_mask) >> 2
                    line.data[word] = op.value
                    bit = 1 << word
                    dm = line.dirty_mask
                    if not dm & bit:
                        line.dirty_mask = dm | bit
                        if use_meb:
                            meb_record(la)
                    hits += 1
                    stores += 1
                    rest_cyc += hit_lat
                    acc += hit_lat
                else:
                    line = l2_fetch(la)
                    if line is not None:
                        word = (addr & off_mask) >> 2
                        line.data[word] = op.value
                        line.dirty_mask = 1 << word  # fresh copy was clean
                        if use_meb:
                            meb_record(la)
                        lat = ov(l2_lat_row[la % cpb])
                    else:
                        l1._stamp = stamp
                        lat = proto_write(core_id, addr, op.value)
                        stamp = l1._stamp
                    stores += 1
                    rest_cyc += lat
                    acc += lat
            elif kind is Compute:
                cycles = int(op.cycles)
                rest_cyc += cycles
                acc += cycles
            elif kind is ReadBatch:
                values = []
                append = values.append
                for addr in op.addrs:
                    la = addr >> line_shift
                    slot = index_get(la)
                    if slot is not None:
                        word = (addr & off_mask) >> 2
                        line = lines_arr[slot]
                        if (
                            not armed
                            or ieb._mask >> la & 1
                            or line.dirty_mask >> word & 1
                        ):
                            stamp += 1
                            stamps[slot] = stamp
                            hits += 1
                            rest_cyc += hit_lat
                            acc += hit_lat
                            append(line.data[word])
                            continue
                    elif not armed or ieb._mask >> la & 1:
                        line = l2_fetch(la)
                        if line is not None:
                            lat = l2_lat_row[la % cpb]
                            rest_cyc += lat
                            acc += lat
                            append(line.data[(addr & off_mask) >> 2])
                            continue
                    l1._stamp = stamp
                    lat, value = proto_read(core_id, addr)
                    stamp = l1._stamp
                    rest_cyc += lat
                    acc += lat
                    append(value)
                loads += len(values)
                send = values
            elif kind is WriteBatch:
                for addr, value in zip(op.addrs, op.values, strict=True):
                    la = addr >> line_shift
                    slot = index_get(la)
                    if slot is not None:
                        line = lines_arr[slot]
                        stamp += 1
                        stamps[slot] = stamp
                        word = (addr & off_mask) >> 2
                        line.data[word] = value
                        bit = 1 << word
                        dm = line.dirty_mask
                        if not dm & bit:
                            line.dirty_mask = dm | bit
                            if use_meb:
                                meb_record(la)
                        hits += 1
                        rest_cyc += hit_lat
                        acc += hit_lat
                    else:
                        line = l2_fetch(la)
                        if line is not None:
                            word = (addr & off_mask) >> 2
                            line.data[word] = value
                            line.dirty_mask = 1 << word
                            if use_meb:
                                meb_record(la)
                            lat = ov(l2_lat_row[la % cpb])
                        else:
                            l1._stamp = stamp
                            lat = proto_write(core_id, addr, value)
                            stamp = l1._stamp
                        rest_cyc += lat
                        acc += lat
                    stores += 1
            elif kind is CopyBatch or kind is AddBatch:
                if kind is CopyBatch:
                    pairs = zip(op.src_addrs, op.dst_addrs, strict=True)
                else:
                    pairs = zip(op.addrs, op.deltas, strict=True)
                for src, second in pairs:
                    la = src >> line_shift
                    slot = index_get(la)
                    if slot is not None:
                        word = (src & off_mask) >> 2
                        line = lines_arr[slot]
                        if (
                            not armed
                            or ieb._mask >> la & 1
                            or line.dirty_mask >> word & 1
                        ):
                            stamp += 1
                            stamps[slot] = stamp
                            hits += 1
                            rest_cyc += hit_lat
                            acc += hit_lat
                            value = line.data[word]
                        else:
                            l1._stamp = stamp
                            lat, value = proto_read(core_id, src)
                            stamp = l1._stamp
                            rest_cyc += lat
                            acc += lat
                    elif (not armed or ieb._mask >> la & 1) and (
                        line := l2_fetch(la)
                    ) is not None:
                        lat = l2_lat_row[la % cpb]
                        rest_cyc += lat
                        acc += lat
                        value = line.data[(src & off_mask) >> 2]
                    else:
                        l1._stamp = stamp
                        lat, value = proto_read(core_id, src)
                        stamp = l1._stamp
                        rest_cyc += lat
                        acc += lat
                    loads += 1
                    if kind is CopyBatch:
                        waddr = second
                    else:
                        waddr = src
                        value = value + second
                    la = waddr >> line_shift
                    slot = index_get(la)
                    if slot is not None:
                        line = lines_arr[slot]
                        stamp += 1
                        stamps[slot] = stamp
                        word = (waddr & off_mask) >> 2
                        line.data[word] = value
                        bit = 1 << word
                        dm = line.dirty_mask
                        if not dm & bit:
                            line.dirty_mask = dm | bit
                            if use_meb:
                                meb_record(la)
                        hits += 1
                        rest_cyc += hit_lat
                        acc += hit_lat
                    else:
                        wline = l2_fetch(la)
                        if wline is not None:
                            word = (waddr & off_mask) >> 2
                            wline.data[word] = value
                            wline.dirty_mask = 1 << word
                            if use_meb:
                                meb_record(la)
                            lat = ov(l2_lat_row[la % cpb])
                        else:
                            l1._stamp = stamp
                            lat = proto_write(core_id, waddr, value)
                            stamp = l1._stamp
                        rest_cyc += lat
                        acc += lat
                    stores += 1
            elif isinstance(op, isa.SYNC_OPS):
                l1._stamp = stamp
                stats.loads += loads
                stats.stores += stores
                stats.l1_hits += hits
                stats.l1_misses += misses
                stalls[rest] += rest_cyc
                self._issue_sync(op, acc)
                return
            else:
                l1._stamp = stamp
                lat, cat = self._wbinv(proto, op)
                stamp = l1._stamp
                armed = ieb.armed
                if faults is not None:
                    # WB/INV drain through the write buffer (Section III-C);
                    # an injected drain stall delays their retirement.
                    lat += faults.wbuf_stall(core_id)
                stats.add_stall(cat, lat)
                acc += lat

    # -- MESI fast loop -----------------------------------------------------

    def _step_mesi(self, proto: MESIProtocol) -> None:
        engine = self.machine.engine
        stats = self.stats
        stalls = stats.stalls
        rest = StallCat.REST
        advance = self.program.send
        core_id = self.core_id
        faults = self.machine.faults
        hier = proto.hier
        l1 = hier.l1s[core_id]
        index_get = l1._index.get
        lines_arr = l1._lines
        stamps = l1._stamps
        line_bytes = hier.line_bytes
        line_shift = line_bytes.bit_length() - 1
        off_mask = line_bytes - 1
        hit_lat = max(
            1, round(hier.l1_latency() * (1.0 - proto.machine.core.overlap))
        )
        block = hier.block_of_core(core_id)
        dir2 = proto._dir2
        l3_get = proto._l3_dir.get
        M, E, I = MESIState.M, MESIState.E, MESIState.I
        proto_read = proto.read
        proto_write = proto.write
        Read, Write, Compute = isa.Read, isa.Write, isa.Compute
        ReadBatch, WriteBatch = isa.ReadBatch, isa.WriteBatch
        CopyBatch, AddBatch = isa.CopyBatch, isa.AddBatch

        acc = 0
        rest_cyc = 0
        loads = 0
        stores = 0
        hits = 0
        send = self._send_value
        self._send_value = None
        # Local LRU stamp counter; synced around every delegated call
        # (see the incoherent loop above for the discipline).
        stamp = l1._stamp

        def write_hit(line, la, waddr, value) -> None:
            """One M/E-state store: E→M directory fix-up plus the word write."""
            nonlocal hits, rest_cyc, acc
            if line.state is E:
                line.state = M
                dir2(block, la).owner = core_id
                d3 = l3_get(la)
                if d3 is not None:
                    d3.owner_block = block
            word = (waddr & off_mask) >> 2
            line.data[word] = value
            line.dirty_mask |= 1 << word
            hits += 1
            rest_cyc += hit_lat
            acc += hit_lat

        while True:
            try:
                op = advance(send)
            except StopIteration:
                l1._stamp = stamp
                stats.loads += loads
                stats.stores += stores
                stats.l1_hits += hits
                stalls[rest] += rest_cyc
                if acc:
                    engine.schedule(acc, self._finish)
                else:
                    self._finish()
                return
            send = None

            kind = type(op)
            if kind is Read:
                addr = op.addr
                slot = index_get(addr >> line_shift)
                if slot is not None:
                    line = lines_arr[slot]
                    if line.state is not I:
                        stamp += 1
                        stamps[slot] = stamp
                        hits += 1
                        loads += 1
                        rest_cyc += hit_lat
                        acc += hit_lat
                        send = line.data[(addr & off_mask) >> 2]
                        continue
                l1._stamp = stamp
                lat, send = proto_read(core_id, addr)
                stamp = l1._stamp
                loads += 1
                rest_cyc += lat
                acc += lat
            elif kind is Write:
                addr = op.addr
                la = addr >> line_shift
                slot = index_get(la)
                stores += 1
                if slot is not None:
                    line = lines_arr[slot]
                    st = line.state
                    if st is M or st is E:
                        stamp += 1
                        stamps[slot] = stamp
                        write_hit(line, la, addr, op.value)
                        continue
                l1._stamp = stamp
                lat = proto_write(core_id, addr, op.value)
                stamp = l1._stamp
                rest_cyc += lat
                acc += lat
            elif kind is Compute:
                cycles = int(op.cycles)
                rest_cyc += cycles
                acc += cycles
            elif kind is ReadBatch:
                values = []
                append = values.append
                for addr in op.addrs:
                    slot = index_get(addr >> line_shift)
                    if slot is not None:
                        line = lines_arr[slot]
                        if line.state is not I:
                            stamp += 1
                            stamps[slot] = stamp
                            hits += 1
                            rest_cyc += hit_lat
                            acc += hit_lat
                            append(line.data[(addr & off_mask) >> 2])
                            continue
                    l1._stamp = stamp
                    lat, value = proto_read(core_id, addr)
                    stamp = l1._stamp
                    rest_cyc += lat
                    acc += lat
                    append(value)
                loads += len(values)
                send = values
            elif kind is WriteBatch:
                for addr, value in zip(op.addrs, op.values, strict=True):
                    la = addr >> line_shift
                    slot = index_get(la)
                    stores += 1
                    if slot is not None:
                        line = lines_arr[slot]
                        st = line.state
                        if st is M or st is E:
                            stamp += 1
                            stamps[slot] = stamp
                            write_hit(line, la, addr, value)
                            continue
                    l1._stamp = stamp
                    lat = proto_write(core_id, addr, value)
                    stamp = l1._stamp
                    rest_cyc += lat
                    acc += lat
            elif kind is CopyBatch or kind is AddBatch:
                if kind is CopyBatch:
                    pairs = zip(op.src_addrs, op.dst_addrs, strict=True)
                else:
                    pairs = zip(op.addrs, op.deltas, strict=True)
                for src, second in pairs:
                    slot = index_get(src >> line_shift)
                    loads += 1
                    if slot is not None:
                        line = lines_arr[slot]
                        if line.state is not I:
                            stamp += 1
                            stamps[slot] = stamp
                            hits += 1
                            rest_cyc += hit_lat
                            acc += hit_lat
                            value = line.data[(src & off_mask) >> 2]
                        else:
                            l1._stamp = stamp
                            lat, value = proto_read(core_id, src)
                            stamp = l1._stamp
                            rest_cyc += lat
                            acc += lat
                    else:
                        l1._stamp = stamp
                        lat, value = proto_read(core_id, src)
                        stamp = l1._stamp
                        rest_cyc += lat
                        acc += lat
                    if kind is CopyBatch:
                        waddr = second
                    else:
                        waddr = src
                        value = value + second
                    la = waddr >> line_shift
                    slot = index_get(la)
                    stores += 1
                    if slot is not None:
                        line = lines_arr[slot]
                        st = line.state
                        if st is M or st is E:
                            stamp += 1
                            stamps[slot] = stamp
                            write_hit(line, la, waddr, value)
                            continue
                    l1._stamp = stamp
                    lat = proto_write(core_id, waddr, value)
                    stamp = l1._stamp
                    rest_cyc += lat
                    acc += lat
            elif isinstance(op, isa.SYNC_OPS):
                l1._stamp = stamp
                stats.loads += loads
                stats.stores += stores
                stats.l1_hits += hits
                stalls[rest] += rest_cyc
                self._issue_sync(op, acc)
                return
            else:
                l1._stamp = stamp
                lat, cat = self._wbinv(proto, op)
                stamp = l1._stamp
                if faults is not None:
                    lat += faults.wbuf_stall(core_id)
                stats.add_stall(cat, lat)
                acc += lat
