"""Chaos report: degradation statistics over a :class:`ChaosResult`.

Summarizes one chaos sweep into (a) the verdict — did any fault plan ever
change a value? — and (b) the degradation profile: p50/p99 slowdown of the
degraded runs over their fault-free baselines, per-fault-kind attribution
(opportunities seen, faults fired, extra cycles charged), and the MEB/IEB
degradation counters the hardware itself reports (overflow events, WB-ALL
tag-walk fallbacks, IEB displacements and the redundant re-invalidations
they cause).  Text for humans, JSON for CI.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.faults.chaos import ChaosResult
from repro.faults.model import FaultKind


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of *values* (q in [0, 100])."""
    vals = sorted(values)
    if not vals:
        return 0.0
    if len(vals) == 1:
        return float(vals[0])
    pos = (len(vals) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(vals) - 1)
    frac = pos - lo
    return float(vals[lo] * (1.0 - frac) + vals[hi] * frac)


def summarize(result: ChaosResult) -> dict:
    """The JSON-safe summary of one chaos sweep."""
    slowdowns: list[float] = []
    kinds = {
        k.value: {"opportunities": 0, "fires": 0, "extra_cycles": 0}
        for k in FaultKind
    }
    buffers = {
        "meb_overflow_events": 0,
        "meb_wb_fallbacks": 0,
        "ieb_evictions": 0,
        "ieb_redundant_invalidations": 0,
    }
    targets = []
    for outcome in result.outcomes:
        base = outcome.baseline.exec_time or 1
        runs = []
        for plan, run in zip(result.plans, outcome.runs):
            slowdown = run.exec_time / base
            slowdowns.append(slowdown)
            fires = 0
            if run.faults is not None:
                fires = run.faults["total_fires"]
                for kind, counters in run.faults["kinds"].items():
                    agg = kinds[kind]
                    for key in agg:
                        agg[key] += counters[key]
            for key in buffers:
                buffers[key] += getattr(run.stats, key)
            runs.append(
                {
                    "plan": plan.name,
                    "seed": plan.seed,
                    "exec_time": run.exec_time,
                    "slowdown": round(slowdown, 4),
                    "fires": fires,
                    "diverged": run.memory_digest
                    != outcome.reference.memory_digest,
                }
            )
        targets.append(
            {
                "target": outcome.target.label,
                "config": outcome.target.config.name,
                "reference_digest": outcome.reference.memory_digest,
                "baseline_exec": outcome.baseline.exec_time,
                "worst_slowdown": round(
                    max((r["slowdown"] for r in runs), default=1.0), 4
                ),
                "divergent_plans": outcome.divergent_plans(result.plans),
                "runs": runs,
            }
        )
    return {
        "targets": len(result.outcomes),
        "plans": len(result.plans),
        "runs": len(slowdowns),
        "divergences": result.divergences,
        "clean": result.clean,
        "slowdown_p50": round(percentile(slowdowns, 50), 4),
        "slowdown_p99": round(percentile(slowdowns, 99), 4),
        "slowdown_max": round(max(slowdowns, default=1.0), 4),
        "kinds": kinds,
        "buffers": buffers,
        "per_target": targets,
        "sweep": result.sweep_summary,
    }


def render_text(summary: dict) -> str:
    """Human-readable chaos report over a :func:`summarize` dict."""
    lines = [
        "Chaos sweep: "
        f"{summary['targets']} target(s) x {summary['plans']} plan(s) "
        f"({summary['runs']} degraded run(s))",
        "",
    ]
    verdict = (
        "PASS: no fault plan changed a single memory value"
        if summary["clean"]
        else "FAIL: value divergence from the HCC reference"
    )
    lines.append(verdict)
    for label, plans in summary["divergences"].items():
        lines.append(f"  {label}: diverged under {', '.join(plans)}")
    lines += [
        "",
        "Degradation (exec time / fault-free baseline):",
        f"  p50 {summary['slowdown_p50']:.3f}x   "
        f"p99 {summary['slowdown_p99']:.3f}x   "
        f"max {summary['slowdown_max']:.3f}x",
        "",
        "Fault attribution:",
        f"  {'kind':<22}{'opportunities':>14}{'fires':>10}{'extra cycles':>14}",
    ]
    for kind, agg in summary["kinds"].items():
        lines.append(
            f"  {kind:<22}{agg['opportunities']:>14}{agg['fires']:>10}"
            f"{agg['extra_cycles']:>14}"
        )
    buf = summary["buffers"]
    lines += [
        "",
        "Buffer degradation across degraded runs:",
        f"  MEB overflow events        {buf['meb_overflow_events']}",
        f"  WB-ALL tag-walk fallbacks  {buf['meb_wb_fallbacks']}",
        f"  IEB displacements          {buf['ieb_evictions']}",
        f"  redundant re-invalidations {buf['ieb_redundant_invalidations']}",
        "",
        "Worst slowdown per target:",
    ]
    for t in sorted(
        summary["per_target"], key=lambda t: -t["worst_slowdown"]
    ):
        flag = "" if not t["divergent_plans"] else "  DIVERGED"
        lines.append(
            f"  {t['target']:<34}{t['worst_slowdown']:>8.3f}x{flag}"
        )
    if summary.get("sweep"):
        lines += ["", summary["sweep"]]
    return "\n".join(lines) + "\n"


def render_json(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"
