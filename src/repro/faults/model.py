"""Declarative fault model: what to break, where, how often, from one seed.

A :class:`FaultSpec` names one fault *kind* (the catalog below), a
per-opportunity firing rate, a magnitude for the timing kinds, and optional
trigger predicates (target cores, opportunity window).  A
:class:`FaultPlan` bundles specs with a seed; the injector derives one
independent RNG stream per kind from ``(plan digest, kind, seed)`` via
:func:`repro.common.rng.make_rng`, so every schedule is exactly
reproducible from the plan alone — same plan, same machine, same faults,
cycle for cycle.

Fault catalog (Sections IV-B and V of the paper; "structural" kinds force
the architecture's own conservative fallbacks, "timing" kinds only stretch
latencies):

==================  ==========  =============================================
kind                class       degraded behavior exercised
==================  ==========  =============================================
meb_overflow        structural  MEB marked overflowed -> WB ALL falls back to
                                the full tag walk
ieb_displace        structural  oldest IEB entry evicted -> next read pays a
                                redundant re-invalidation
threadmap_displace  structural  ThreadMap lookup misses -> WB_CONS/INV_PROD
                                take the always-correct global path
wbuf_stall          timing      write-buffer drain stall: WB/INV retirement
                                delayed by up to *magnitude* cycles
noc_jitter          timing      per-message mesh latency jitter of up to
                                *magnitude* cycles
noc_link_down       timing      transient link failure: the message reroutes
                                around the downed link (+2 hops)
mem_wb_delay        timing      delayed write-back propagation: the next
                                memory round trip is held up to *magnitude*
                                cycles
==================  ==========  =============================================

The invariant all of them must preserve: **faults may change timing, never
values** (verified by :mod:`repro.faults.chaos` against the fault-free HCC
reference).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, make_rng


class FaultKind(str, Enum):
    """One injectable fault class (see the module-level catalog)."""

    MEB_OVERFLOW = "meb_overflow"
    IEB_DISPLACE = "ieb_displace"
    THREADMAP_DISPLACE = "threadmap_displace"
    WBUF_STALL = "wbuf_stall"
    NOC_JITTER = "noc_jitter"
    NOC_LINK_DOWN = "noc_link_down"
    MEM_WB_DELAY = "mem_wb_delay"


#: Kinds that force a conservative architectural fallback (no extra cycles
#: charged directly; the fallback path itself is slower).
STRUCTURAL_KINDS = frozenset(
    {FaultKind.MEB_OVERFLOW, FaultKind.IEB_DISPLACE, FaultKind.THREADMAP_DISPLACE}
)

#: Kinds that stretch latencies by a drawn number of cycles.
TIMING_KINDS = frozenset(
    {
        FaultKind.WBUF_STALL,
        FaultKind.NOC_JITTER,
        FaultKind.NOC_LINK_DOWN,
        FaultKind.MEM_WB_DELAY,
    }
)

#: Human-readable catalog (``repro chaos --list-faults``).
FAULT_CATALOG: dict[FaultKind, str] = {
    FaultKind.MEB_OVERFLOW: (
        "force a MEB overflow: WB ALL falls back to the full tag walk"
    ),
    FaultKind.IEB_DISPLACE: (
        "evict the oldest IEB entry: the next read re-invalidates redundantly"
    ),
    FaultKind.THREADMAP_DISPLACE: (
        "miss a ThreadMap lookup: WB_CONS/INV_PROD take the global path"
    ),
    FaultKind.WBUF_STALL: (
        "stall the write-buffer drain: WB/INV retirement delayed by up to "
        "`magnitude` cycles"
    ),
    FaultKind.NOC_JITTER: (
        "jitter one mesh message by up to `magnitude` cycles"
    ),
    FaultKind.NOC_LINK_DOWN: (
        "transient link failure: reroute around the downed link (+2 hops)"
    ),
    FaultKind.MEM_WB_DELAY: (
        "delay write-back propagation: hold the next memory round trip by "
        "up to `magnitude` cycles"
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault kind with its trigger predicate.

    ``rate`` is a per-opportunity Bernoulli probability (an *opportunity*
    is one pass through the kind's hook: one MEB write record, one mesh
    message, ...).  ``magnitude`` bounds the cycles drawn per firing for
    the timing kinds (ignored by structural kinds).  ``cores`` restricts
    firing to the listed core ids (``None`` = all cores); ``window``
    restricts firing to opportunity indices ``start <= i < stop``
    (``None`` = always eligible).
    """

    kind: FaultKind
    rate: float = 0.05
    magnitude: int = 8
    cores: tuple[int, ...] | None = None
    window: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in (0, 1] (got {self.rate})")
        if self.magnitude < 1:
            raise ConfigError(f"fault magnitude must be >= 1 (got {self.magnitude})")
        if self.cores is not None:
            object.__setattr__(self, "cores", tuple(sorted(self.cores)))
            if any(c < 0 for c in self.cores):
                raise ConfigError("fault target cores must be >= 0")
        if self.window is not None:
            start, stop = self.window
            if start < 0 or stop <= start:
                raise ConfigError(f"bad fault window {self.window!r}")
            object.__setattr__(self, "window", (int(start), int(stop)))

    def to_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind.value,
            "rate": self.rate,
            "magnitude": self.magnitude,
            "cores": list(self.cores) if self.cores is not None else None,
            "window": list(self.window) if self.window is not None else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        """Rehydrate a spec dumped by :meth:`to_dict`."""
        return cls(
            kind=FaultKind(d["kind"]),
            rate=d["rate"],
            magnitude=d["magnitude"],
            cores=tuple(d["cores"]) if d.get("cores") is not None else None,
            window=tuple(d["window"]) if d.get("window") is not None else None,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault specs — one reproducible schedule.

    Plans are frozen, hashable, and picklable, so they ride through
    :class:`~repro.eval.parallel.SweepCell` kwargs into worker processes,
    and :meth:`digest` gives the stable content address the result cache
    mixes into its key (chaos cells never collide with fault-free cells).
    At most one spec per kind: the injector keys its RNG streams and
    counters by kind.
    """

    name: str
    seed: int = DEFAULT_SEED
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        kinds = [s.kind for s in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ConfigError(f"plan {self.name!r} repeats a fault kind")

    @property
    def kinds(self) -> tuple[FaultKind, ...]:
        """The fault kinds this plan arms, in spec order."""
        return tuple(s.kind for s in self.specs)

    def to_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        """Rehydrate a plan dumped by :meth:`to_dict`."""
        return cls(
            name=d["name"],
            seed=d["seed"],
            specs=tuple(FaultSpec.from_dict(s) for s in d["specs"]),
        )

    def digest(self) -> str:
        """Stable SHA-256 hex content address of the full plan identity."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def random_plans(
    n: int,
    *,
    seed: int = DEFAULT_SEED,
    kinds: tuple[FaultKind, ...] | None = None,
    name_prefix: str = "chaos",
) -> tuple[FaultPlan, ...]:
    """Generate *n* reproducible plans from one master seed.

    Each plan arms a random subset of *kinds* (default: the whole catalog)
    with rates drawn log-uniformly from [0.01, 0.3] and magnitudes from
    [1, 32]; every plan gets its own derived seed.  The same
    ``(n, seed, kinds)`` always yields the same plans.
    """
    if n < 1:
        raise ConfigError(f"need at least one plan (got {n})")
    pool = tuple(kinds) if kinds else tuple(FaultKind)
    if not pool:
        raise ConfigError("empty fault-kind pool")
    rng = make_rng(f"faults.plans:{','.join(k.value for k in pool)}", seed)
    plans = []
    for i in range(n):
        picked = [k for k in pool if rng.random() < 0.6]
        if not picked:
            picked = [pool[int(rng.integers(0, len(pool)))]]
        specs = tuple(
            FaultSpec(
                kind=k,
                rate=round(float(10.0 ** rng.uniform(-2.0, -0.52)), 6),
                magnitude=int(rng.integers(1, 33)),
            )
            for k in picked
        )
        plans.append(
            FaultPlan(
                name=f"{name_prefix}-{i:03d}",
                seed=int(rng.integers(0, 2**31)),
                specs=specs,
            )
        )
    return tuple(plans)
