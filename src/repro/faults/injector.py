"""Hook-based fault injector: arms a :class:`FaultPlan` onto one machine.

Wiring mirrors the ``obs`` neutrality design exactly: every component that
can host a fault carries a ``faults`` attribute defaulting to ``None`` and
guards its single hook with one ``is not None`` check —

* :class:`~repro.coherence.meb.MEB`  ``record_write`` -> forced overflow,
* :class:`~repro.coherence.ieb.IEB`  ``insert`` -> forced FIFO displacement,
* :class:`~repro.coherence.threadmap.ThreadMapTable`  ``peer_is_local`` ->
  entry displacement (conservative global path),
* :class:`~repro.core.cpu.CPU` WB/INV dispatch and the
  :class:`~repro.isa.writebuffer.WriteBuffer` drain model -> drain stalls,
* :class:`~repro.noc.mesh.Mesh`  ``latency`` -> per-message jitter and
  transient link-down reroute,
* :class:`~repro.mem.memory.MainMemory`  ``write_line_words`` ->
  delayed write-back propagation, charged on the next
  :meth:`~repro.coherence.hierarchy.Hierarchy.mem_latency` round trip.

A run with no injector armed therefore pays one pointer comparison per
hook point and is bit-identical to a pre-fault-subsystem build (enforced
by ``tests/faults/test_neutrality.py`` against golden statistics).

Determinism: each armed kind draws from its own
:func:`~repro.common.rng.make_rng` stream seeded by ``(plan digest, kind,
plan seed)``, so kinds never perturb each other's schedules and a plan
replays identically.  After the timed portion of a run the machine calls
:meth:`FaultInjector.freeze` — verification-time cache flushes neither
fire faults nor advance any stream.
"""

from __future__ import annotations

from repro.faults.model import FaultKind, FaultPlan
from repro.common.rng import make_rng


class _KindState:
    """Counters plus the private RNG stream of one armed fault kind."""

    __slots__ = ("spec", "rng", "opportunities", "fires", "extra_cycles")

    def __init__(self, spec, rng) -> None:
        self.spec = spec
        self.rng = rng
        self.opportunities = 0
        self.fires = 0
        self.extra_cycles = 0


class FaultInjector:
    """Seeded, per-kind fault scheduler wired into a machine's hook points."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.frozen = False
        #: Observability sinks, adopted from the machine at arm time so
        #: fault events ride the same Tracer/Metrics as everything else.
        self.tracer = None
        self.metrics = None
        self._pending_mem_delay = 0
        digest = plan.digest()
        self._states: dict[FaultKind, _KindState] = {
            spec.kind: _KindState(
                spec, make_rng(f"faults.{spec.kind.value}:{digest}", plan.seed)
            )
            for spec in plan.specs
        }

    # -- lifecycle ----------------------------------------------------------

    def arm(self, machine) -> None:
        """Attach this injector to every hook point of *machine*."""
        self.tracer = machine.tracer
        self.metrics = machine.metrics
        proto = machine.protocol
        for core, meb in enumerate(getattr(proto, "mebs", [])):
            meb.faults = self
            meb.core = core
        for core, ieb in enumerate(getattr(proto, "iebs", [])):
            ieb.faults = self
            ieb.core = core
        threadmap = getattr(proto, "threadmap", None)
        if threadmap is not None:
            threadmap.faults = self
        machine.hier.mesh.faults = self
        machine.hier.memory.faults = self
        machine.hier.faults = self

    def freeze(self) -> None:
        """Disable every hook (end of timed run); counters stop moving."""
        self.frozen = True
        self._pending_mem_delay = 0

    # -- core scheduling ----------------------------------------------------

    def _roll(self, kind: FaultKind, core: int | None = None):
        """One opportunity for *kind*; returns its state if it fires."""
        state = self._states.get(kind)
        if state is None or self.frozen:
            return None
        spec = state.spec
        if core is not None and spec.cores is not None and core not in spec.cores:
            return None
        index = state.opportunities
        state.opportunities += 1
        if spec.window is not None and not (
            spec.window[0] <= index < spec.window[1]
        ):
            return None
        if state.rng.random() >= spec.rate:
            return None
        state.fires += 1
        return state

    def _record(self, kind: FaultKind, core: int | None, extra: int) -> None:
        """Account *extra* cycles and report the firing to obs sinks."""
        if extra:
            self._states[kind].extra_cycles += extra
        if self.tracer is not None:
            self.tracer.emit(
                "fault", core if core is not None else 0,
                op=kind.value, lat=extra,
            )
        if self.metrics is not None:
            self.metrics.inc(f"faults.{kind.value}")
            if extra:
                self.metrics.inc(f"faults.{kind.value}.cycles", extra)

    def _draw(self, state) -> int:
        """Cycles for one timing-fault firing: uniform in [1, magnitude]."""
        return int(state.rng.integers(1, state.spec.magnitude + 1))

    # -- hook points (one per fault kind) -----------------------------------

    def meb_overflow(self, core: int) -> bool:
        """Should this MEB write record force an overflow?"""
        state = self._roll(FaultKind.MEB_OVERFLOW, core)
        if state is None:
            return False
        self._record(FaultKind.MEB_OVERFLOW, core, 0)
        return True

    def ieb_displace(self, core: int) -> bool:
        """Should this IEB insert displace the oldest entry first?"""
        state = self._roll(FaultKind.IEB_DISPLACE, core)
        if state is None:
            return False
        self._record(FaultKind.IEB_DISPLACE, core, 0)
        return True

    def threadmap_displace(self, core: int) -> bool:
        """Should this ThreadMap lookup miss (forcing the global path)?"""
        state = self._roll(FaultKind.THREADMAP_DISPLACE, core)
        if state is None:
            return False
        self._record(FaultKind.THREADMAP_DISPLACE, core, 0)
        return True

    def wbuf_stall(self, core: int | None = None) -> int:
        """Extra drain-stall cycles for one WB/INV retirement (0 = none)."""
        state = self._roll(FaultKind.WBUF_STALL, core)
        if state is None:
            return 0
        extra = self._draw(state)
        self._record(FaultKind.WBUF_STALL, core, extra)
        return extra

    def noc_delay(self, hops: int, cycles_per_hop: int) -> int:
        """Extra cycles for one mesh message (jitter and/or link-down)."""
        extra = 0
        state = self._roll(FaultKind.NOC_JITTER)
        if state is not None:
            jitter = self._draw(state)
            self._record(FaultKind.NOC_JITTER, None, jitter)
            extra += jitter
        state = self._roll(FaultKind.NOC_LINK_DOWN)
        if state is not None:
            # Reroute around the downed link: the minimal detour on a 2D
            # mesh is two extra hops.
            detour = 2 * cycles_per_hop
            self._record(FaultKind.NOC_LINK_DOWN, None, detour)
            extra += detour
        return extra

    def mem_writeback(self) -> None:
        """One write-back reached memory; maybe delay its propagation."""
        state = self._roll(FaultKind.MEM_WB_DELAY)
        if state is None:
            return
        extra = self._draw(state)
        self._record(FaultKind.MEM_WB_DELAY, None, extra)
        self._pending_mem_delay += extra

    def take_mem_delay(self) -> int:
        """Accrued propagation delay, charged on the next memory round trip."""
        if self.frozen or not self._pending_mem_delay:
            return 0
        delay = self._pending_mem_delay
        self._pending_mem_delay = 0
        return delay

    # -- reporting ----------------------------------------------------------

    @property
    def total_fires(self) -> int:
        """Faults fired across all kinds so far."""
        return sum(s.fires for s in self._states.values())

    def snapshot(self) -> dict:
        """JSON-safe per-kind accounting (rides in ``RunResult.faults``)."""
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "digest": self.plan.digest(),
            "total_fires": self.total_fires,
            "kinds": {
                kind.value: {
                    "opportunities": s.opportunities,
                    "fires": s.fires,
                    "extra_cycles": s.extra_cycles,
                }
                for kind, s in self._states.items()
            },
        }
