"""Fault injection and resilience verification (``repro.faults``).

The paper's safety argument (Sections IV-V) is that the incoherent
hierarchy is allowed to *degrade* but never to *corrupt*: a full MEB or
IEB falls back to the conservative tag-walk path, ThreadMap entries may be
displaced to the always-correct global level, and write-backs may be
arbitrarily delayed — correctness must survive all of it, only timing may
suffer.  This package makes that argument testable:

* :mod:`repro.faults.model` — declarative, seeded :class:`FaultSpec` /
  :class:`FaultPlan` descriptions (every plan reproducible from one seed);
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that arms a
  plan onto a machine through zero-overhead hooks (``None`` when disabled,
  mirroring the ``obs`` neutrality design);
* :mod:`repro.faults.chaos` — the chaos runner: N seeded plans per target,
  final memory verified value-for-value against the fault-free HCC
  reference;
* :mod:`repro.faults.report` — degradation reports (p50/p99 slowdown,
  per-kind fault attribution) in text and JSON.

``chaos``/``report`` import the evaluation layer, so they are *not*
re-exported here — import them explicitly.  This keeps
``repro.eval.runner`` free to import the model/injector without a cycle.
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FAULT_CATALOG,
    FaultKind,
    FaultPlan,
    FaultSpec,
    random_plans,
)

__all__ = [
    "FAULT_CATALOG",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "random_plans",
]
