"""Seeded chaos runner: degraded-mode verification against the HCC oracle.

The resilience claim of the software-coherent hierarchy is that every
degradation the hardware can suffer — MEB overflow, IEB displacement,
ThreadMap eviction, write-buffer drain stalls, NoC jitter, transient link
failures, slow memory write-back paths — is *conservative*: it may cost
cycles but can never change a value.  The chaos runner turns that claim
into an executable experiment:

1. every target (a litmus kernel or a timing-independent workload) runs
   once under hardware MESI (``HCC``) to establish the reference memory
   image digest,
2. once fault-free under its software-coherent configuration (the timing
   baseline),
3. and once per seeded :class:`~repro.faults.model.FaultPlan`.

A run whose final memory digest differs from the HCC reference is a
**divergence** — a value error, the one thing faults must never cause.
Execution times of the degraded runs, normalized to the fault-free
baseline, quantify graceful degradation (see :mod:`repro.faults.report`).

Targets must be **timing-independent**: their final memory must not depend
on lock-acquisition order.  Determinate litmus kernels qualify by
construction (the differential harness already proves their memory
bit-identical across configurations with very different timing), and so do
lock-free SPLASH/NAS kernels with order-independent reductions (``fft``,
``lu_*``, ``is``).  Lock-ordered workloads like ``raytrace`` (whose
per-thread progress counters record which thread won each tile) and
unordered floating-point reductions like ``jacobi``'s residual (the
non-associative sum depends on lock-acquisition order) are deliberately
excluded.

Every run is a plain :class:`~repro.eval.parallel.SweepCell`, so one
:class:`~repro.eval.parallel.SweepExecutor` fans the whole chaos matrix
out over worker processes and the persistent result cache (fault plans are
part of the cache key).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import ConfigError
from repro.common.params import (
    BufferParams,
    CacheParams,
    MachineParams,
    intra_block_machine,
)
from repro.core.config import (
    INTER_ADDR_L,
    INTER_HCC,
    INTRA_BMI,
    INTRA_HCC,
    ExperimentConfig,
)
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.eval.runner import RunResult
from repro.faults.model import FaultPlan, random_plans

#: Lock-free (hence timing-independent) workload targets the default chaos
#: sweep uses, besides the determinate litmus kernels.  ``is`` rather than
#: ``jacobi``/``ep``/``cg`` on the inter side: those three fold
#: floating-point partials into an *unordered* reduction, so a reordered
#: lock handoff changes the non-associative FP sum by an ULP — a timing
#: dependence, not a protocol bug, but it fails the bit-for-bit bar.  IS's
#: histogram reduction is all-integer and therefore order-independent.
SAFE_INTRA = ("fft", "lu_cont")
SAFE_INTER = ("is",)

#: Workload-token shorthands accepted by :func:`default_targets`.
TOKEN_LITMUS = "litmus"
TOKEN_TINY = "tiny"


def tiny_pressure_machine() -> MachineParams:
    """A 4-core machine with tiny caches and buffers: maximal fault surface.

    512-byte L1s and L2 banks force dirty evictions and memory write-backs
    *during* the timed run (the default intra machine barely touches memory
    mid-run, so ``mem_wb_delay`` would otherwise never fire), and 4/2-entry
    MEB/IEBs overflow under any real working set.
    """
    base = intra_block_machine(
        4, buffers=BufferParams(meb_entries=4, ieb_entries=2)
    )
    return dataclasses.replace(
        base,
        l1=CacheParams(
            size_bytes=512, assoc=2, line_bytes=base.l1.line_bytes,
            round_trip=base.l1.round_trip,
        ),
        l2_bank=CacheParams(
            size_bytes=512, assoc=2, line_bytes=base.l2_bank.line_bytes,
            round_trip=base.l2_bank.round_trip,
        ),
    )


@dataclass(frozen=True)
class ChaosTarget:
    """One workload the chaos runner degrades and digest-verifies.

    ``kind``/``app``/``kwargs`` name a sweep cell; ``config`` is the
    software-coherent configuration under test and ``reference`` the
    hardware-coherent configuration that produces the value oracle.
    """

    kind: str  # "intra" | "inter" | "litmus"
    app: str
    config: ExperimentConfig
    reference: ExperimentConfig
    kwargs: tuple[tuple[str, Any], ...] = ()
    #: Memory model (:mod:`repro.models`) the software-coherent runs use;
    #: ``None`` leaves the Machine default.  The HCC reference cell never
    #: carries it — hardware-coherent configurations always run MESI.
    model: str | None = None

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.app}"

    def cell(self, config: ExperimentConfig, plan: FaultPlan | None) -> SweepCell:
        """The sweep cell for one run of this target."""
        kwargs = dict(self.kwargs)
        if plan is not None:
            kwargs["faults"] = plan
        if self.model is not None and not config.hardware_coherent:
            kwargs["model"] = self.model
        return SweepCell.make(
            self.kind, self.app, config, memory_digest=True, **kwargs
        )


def _litmus_targets(model: str | None = None) -> list[ChaosTarget]:
    from repro.workloads.litmus import LITMUS

    out = []
    for kernel in LITMUS.values():
        if not kernel.determinate:
            continue
        if kernel.model == "inter":
            config, reference = INTER_ADDR_L, INTER_HCC
        else:
            config, reference = INTRA_BMI, INTRA_HCC
        out.append(
            ChaosTarget("litmus", kernel.name, config, reference, model=model)
        )
    return out


def default_targets(
    workloads: Sequence[str] | None = None,
    *,
    scale: float = 0.5,
    model: str | None = None,
) -> list[ChaosTarget]:
    """Resolve workload tokens into chaos targets.

    Tokens: ``litmus`` (every determinate litmus kernel), ``tiny`` (fft on
    the :func:`tiny_pressure_machine`), a Model-1 or Model-2 workload name,
    or a litmus kernel name.  ``None`` selects the full default matrix:
    litmus + the safe SPLASH/NAS workloads + the pressure target.
    ``model`` selects the memory model the software-coherent runs use.
    """
    from repro.workloads import MODEL_ONE, MODEL_TWO
    from repro.workloads.litmus import LITMUS

    if workloads is None:
        workloads = (
            (TOKEN_LITMUS,) + SAFE_INTRA + SAFE_INTER + (TOKEN_TINY,)
        )
    targets: list[ChaosTarget] = []
    for token in workloads:
        if token == TOKEN_LITMUS:
            targets.extend(_litmus_targets(model))
        elif token == TOKEN_TINY:
            # lu_cont's working set overflows the 512-byte caches even at
            # half scale, so dirty L2 victims spill to memory mid-run.
            targets.append(
                ChaosTarget(
                    "intra", "lu_cont", INTRA_BMI, INTRA_HCC,
                    SweepCell.make(
                        "intra", "lu_cont", INTRA_BMI,
                        num_threads=4,
                        machine_params=tiny_pressure_machine(),
                        scale=scale,
                    ).kwargs,
                    model=model,
                )
            )
        elif token in MODEL_ONE:
            targets.append(
                ChaosTarget(
                    "intra", token, INTRA_BMI, INTRA_HCC,
                    (("scale", scale),), model=model,
                )
            )
        elif token in MODEL_TWO:
            targets.append(
                ChaosTarget(
                    "inter", token, INTER_ADDR_L, INTER_HCC,
                    (("cores_per_block", 4), ("num_blocks", 2), ("scale", scale)),
                    model=model,
                )
            )
        elif token in LITMUS:
            kernel = LITMUS[token]
            if kernel.model == "inter":
                config, reference = INTER_ADDR_L, INTER_HCC
            else:
                config, reference = INTRA_BMI, INTRA_HCC
            targets.append(
                ChaosTarget("litmus", token, config, reference, model=model)
            )
        else:
            raise ConfigError(f"unknown chaos workload {token!r}")
    return targets


@dataclass
class TargetOutcome:
    """Everything the chaos runner learned about one target."""

    target: ChaosTarget
    reference: RunResult  # HCC run (value oracle)
    baseline: RunResult  # fault-free run under the target config
    runs: list[RunResult]  # one per fault plan, same order as the plans

    def divergent_plans(self, plans: Sequence[FaultPlan]) -> list[str]:
        """Names of plans whose final memory differs from the HCC oracle."""
        oracle = self.reference.memory_digest
        out = []
        if self.baseline.memory_digest != oracle:
            out.append("<baseline>")
        for plan, run in zip(plans, self.runs):
            if run.memory_digest != oracle:
                out.append(plan.name)
        return out


@dataclass
class ChaosResult:
    """The full outcome of one chaos sweep (input to the report layer)."""

    plans: list[FaultPlan]
    outcomes: list[TargetOutcome]
    sweep_summary: str = ""

    @property
    def divergences(self) -> dict[str, list[str]]:
        """{target label: divergent plan names}, only targets that diverged."""
        out = {}
        for outcome in self.outcomes:
            bad = outcome.divergent_plans(self.plans)
            if bad:
                out[outcome.target.label] = bad
        return out

    @property
    def clean(self) -> bool:
        return not self.divergences


def chaos_cells(
    targets: Sequence[ChaosTarget], plans: Sequence[FaultPlan]
) -> list[SweepCell]:
    """Lower a chaos matrix to its flat cell list.

    Per target: the HCC reference, the fault-free baseline, then one cell
    per plan — a fixed stride of ``2 + len(plans)`` that
    :func:`assemble_chaos` re-slices.  Exposed separately so the job
    server can shard the same cells across its worker pool.
    """
    if not targets:
        raise ConfigError("chaos needs at least one target")
    cells: list[SweepCell] = []
    for target in targets:
        cells.append(target.cell(target.reference, None))
        cells.append(target.cell(target.config, None))
        cells.extend(target.cell(target.config, plan) for plan in plans)
    return cells


def assemble_chaos(
    targets: Sequence[ChaosTarget],
    plans: Sequence[FaultPlan],
    results: Sequence[RunResult],
    *,
    sweep_summary: str = "",
) -> ChaosResult:
    """Fold per-cell results (in :func:`chaos_cells` order) into a result."""
    outcomes = []
    stride = 2 + len(plans)
    for i, target in enumerate(targets):
        chunk = results[i * stride:(i + 1) * stride]
        outcomes.append(
            TargetOutcome(target, chunk[0], chunk[1], list(chunk[2:]))
        )
    return ChaosResult(list(plans), outcomes, sweep_summary)


def run_chaos(
    targets: Sequence[ChaosTarget],
    plans: Sequence[FaultPlan],
    *,
    executor: SweepExecutor | None = None,
) -> ChaosResult:
    """Run every target × (HCC, fault-free, every plan); digest-compare.

    All cells go through one :meth:`SweepExecutor.run_cells` call, so the
    whole chaos matrix parallelizes and caches like any other sweep.
    Composes :func:`chaos_cells` + the executor + :func:`assemble_chaos`;
    the job server runs the same two pure halves around its worker pool.
    """
    executor = executor or SweepExecutor()
    cells = chaos_cells(targets, plans)
    results = executor.run_cells(cells)
    return assemble_chaos(
        targets, plans, results, sweep_summary=executor.stats.summary()
    )


def run_default_chaos(
    *,
    num_plans: int = 10,
    seed: int | None = None,
    kinds=None,
    workloads: Sequence[str] | None = None,
    scale: float = 0.5,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> ChaosResult:
    """Convenience wrapper: default targets × ``num_plans`` random plans."""
    from repro.common.rng import DEFAULT_SEED

    plans = random_plans(
        num_plans, seed=DEFAULT_SEED if seed is None else seed, kinds=kinds
    )
    targets = default_targets(workloads, scale=scale, model=model)
    return run_chaos(targets, plans, executor=executor)
