"""ASCII renderers for the paper's tables and figures.

Each function takes the raw results produced by :mod:`repro.eval.runner`
and prints the same rows/series the paper reports:

* :func:`render_table1` — communication-pattern classification,
* :func:`render_table2`/:func:`render_table3` — configuration/architecture,
* :func:`render_storage` — the Section VII-A storage comparison,
* :func:`render_fig9` — normalized intra-block execution time with the
  five-way stall breakdown,
* :func:`render_fig10` — normalized traffic with the four-way breakdown,
* :func:`render_fig11` — normalized global WB/INV counts (Addr vs Addr+L),
* :func:`render_fig12` — normalized inter-block execution time.
"""

from __future__ import annotations

from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.common.params import MachineParams
from repro.eval.runner import RunResult
from repro.eval.storage import StorageReport
from repro.sim.stats import StallCat, TrafficCat
from repro.workloads import MODEL_ONE


def _fmt_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(c.ljust(w) for c, w in zip(cells, widths))


def render_table1() -> str:
    """Table I: communication patterns observed in the Model-1 workloads."""
    rows = [("Appl.", "Main", "Other")]
    for name, cls in sorted(MODEL_ONE.items()):
        rows.append(
            (
                name,
                ", ".join(cls.main_patterns),
                ", ".join(cls.other_patterns) or "-",
            )
        )
    widths = [max(len(r[c]) for r in rows) for c in range(3)]
    lines = [_fmt_row(list(r), widths) for r in rows]
    lines.insert(1, "-" * (sum(widths) + 4))
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: configurations evaluated."""
    out = ["Intra-Block Experiments"]
    for cfg in INTRA_CONFIGS:
        out.append(f"  {cfg.name:8s} hcc={cfg.hardware_coherent} "
                   f"meb={cfg.use_meb} ieb={cfg.use_ieb}")
    out.append("Inter-Block Experiments")
    for cfg in INTER_CONFIGS:
        out.append(f"  {cfg.name:8s} hcc={cfg.hardware_coherent} "
                   f"mode={cfg.inter_mode.value}")
    return "\n".join(out)


def render_table3(machine: MachineParams) -> str:
    """Table III: architecture modeled."""
    lines = [
        f"Blocks x cores      {machine.num_blocks} x {machine.cores_per_block}",
        f"Private L1          {machine.l1.size_bytes // 1024}KB, "
        f"{machine.l1.assoc}-way, {machine.l1.round_trip}-cycle RT, "
        f"{machine.l1.line_bytes}B lines",
        f"Per-core MEB        {machine.buffers.meb_entries} entries",
        f"Per-core IEB        {machine.buffers.ieb_entries} entries",
        f"Shared L2 bank      {machine.l2_bank.size_bytes // 1024}KB, "
        f"{machine.l2_bank.assoc}-way, {machine.l2_bank.round_trip}-cycle RT",
    ]
    if machine.l3_bank is not None:
        lines.append(
            f"Shared L3           {machine.num_l3_banks} banks x "
            f"{machine.l3_bank.size_bytes // (1024 * 1024)}MB, "
            f"{machine.l3_bank.round_trip}-cycle RT"
        )
    lines.append(
        f"On-chip net         2D mesh, {machine.mesh.cycles_per_hop} "
        f"cycles/hop, {machine.mesh.link_bytes * 8}-bit links"
    )
    lines.append(f"Off-chip mem        {machine.mem_round_trip}-cycle RT")
    return "\n".join(lines)


def render_storage(report: StorageReport) -> str:
    """Section VII-A: control and storage overhead."""
    return "\n".join(
        [
            f"Coherent hierarchy storage:   {report.coherent_kbytes:8.1f} KB",
            f"Incoherent hierarchy storage: {report.incoherent_kbytes:8.1f} KB",
            f"Savings (incoherent):         {report.saved_kbytes:8.1f} KB "
            f"(paper: ~102 KB)",
        ]
    )


def render_fig9(results: dict[str, dict[str, RunResult]]) -> str:
    """Figure 9: normalized execution time + stall breakdown (intra)."""
    header = ["app", "config", "norm"] + [c.value for c in StallCat]
    lines = ["  ".join(f"{h:>13s}" for h in header)]
    ratios: dict[str, float] = {}
    for app, per_cfg in results.items():
        base = per_cfg["HCC"].exec_time
        for cfg, res in per_cfg.items():
            norm = res.exec_time / base
            b = res.breakdown()
            cells = [f"{app:>13s}", f"{cfg:>13s}", f"{norm:13.3f}"] + [
                f"{b[c.value] / base:13.3f}" for c in StallCat
            ]
            lines.append("  ".join(cells))
            ratios.setdefault(cfg, 0.0)
            ratios[cfg] += norm
    n_apps = len(results)
    lines.append("-" * len(lines[0]))
    for cfg, total in ratios.items():
        lines.append(f"{'MEAN':>13s}  {cfg:>13s}  {total / n_apps:13.3f}")
    return "\n".join(lines)


def render_fig10(results: dict[str, dict[str, RunResult]]) -> str:
    """Figure 10: B+M+I traffic normalized to HCC, four-way breakdown.

    The trailing columns surface the Section IV-B buffer-degradation
    counters of the B+M+I run (MEB overflow epochs, WB-ALL tag-walk
    fallbacks, IEB displacements): they explain *why* a workload's traffic
    or WB cost moves when the fixed-size buffers are undersized for it.
    """
    header = (
        ["app", "norm"]
        + [c.value for c in TrafficCat]
        + ["meb_ovf", "wb_fallb", "ieb_evict"]
    )
    lines = ["  ".join(f"{h:>13s}" for h in header)]
    total_ratio = 0.0
    for app, per_cfg in results.items():
        hcc = per_cfg["HCC"].stats
        bmi = per_cfg["B+M+I"].stats
        base = hcc.total_flits or 1
        norm = bmi.total_flits / base
        total_ratio += norm
        cells = (
            [f"{app:>13s}", f"{norm:13.3f}"]
            + [f"{bmi.traffic[c] / base:13.3f}" for c in TrafficCat]
            + [
                f"{bmi.meb_overflow_events:13d}",
                f"{bmi.meb_wb_fallbacks:13d}",
                f"{bmi.ieb_evictions:13d}",
            ]
        )
        lines.append("  ".join(cells))
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'MEAN':>13s}  {total_ratio / max(1, len(results)):13.3f}  "
        f"(paper: ~0.96)"
    )
    return "\n".join(lines)


def render_fig11(results: dict[str, dict[str, RunResult]]) -> str:
    """Figure 11: global WB/INV counts of Addr+L normalized to Addr."""
    header = ["app", "global WB", "global INV"]
    lines = ["  ".join(f"{h:>12s}" for h in header)]
    for app, per_cfg in results.items():
        addr = per_cfg["Addr"].stats
        addr_l = per_cfg["Addr+L"].stats
        wb = addr_l.global_wb_lines / max(1, addr.global_wb_lines)
        inv = addr_l.global_inv_lines / max(1, addr.global_inv_lines)
        lines.append(f"{app:>12s}  {wb:12.3f}  {inv:12.3f}")
    return "\n".join(lines)


def render_fig12(results: dict[str, dict[str, RunResult]]) -> str:
    """Figure 12: inter-block normalized execution time."""
    lines = [f"{'app':>10s}  " + "  ".join(f"{c.name:>8s}" for c in INTER_CONFIGS)]
    means = {c.name: 0.0 for c in INTER_CONFIGS}
    for app, per_cfg in results.items():
        base = per_cfg["HCC"].exec_time
        cells = [f"{app:>10s}"]
        for cfg in INTER_CONFIGS:
            norm = per_cfg[cfg.name].exec_time / base
            means[cfg.name] += norm
            cells.append(f"{norm:8.3f}")
        lines.append("  ".join(cells))
    lines.append("-" * len(lines[0]))
    n = max(1, len(results))
    lines.append(
        f"{'MEAN':>10s}  "
        + "  ".join(f"{means[c.name] / n:8.3f}" for c in INTER_CONFIGS)
    )
    return "\n".join(lines)
