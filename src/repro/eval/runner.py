"""Experiment runner: one (application × configuration) simulation per call.

The intra-block experiments (Figures 9 and 10) run the SPLASH-2 workloads on
the 16-core single-block machine over the upper Table II configurations; the
inter-block experiments (Figures 11 and 12) run the NAS/Jacobi IR workloads
on the 4-block × 8-core machine over the lower Table II configurations.
Every run is functionally verified before its statistics are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.params import MachineParams, inter_block_machine, intra_block_machine
from repro.core.config import ExperimentConfig
from repro.core.machine import Machine
from repro.sim.stats import MachineStats, StallCat
from repro.workloads import MODEL_ONE, MODEL_TWO


@dataclass(frozen=True)
class RunResult:
    """Statistics of one verified (app, config) run.

    Instances are plain frozen dataclasses over picklable state, so they
    travel through process-pool workers unchanged, and ``to_dict`` /
    ``from_dict`` give an exact JSON round trip for the on-disk result
    cache.  ``metrics`` is the optional JSON-safe
    :meth:`repro.obs.metrics.Metrics.snapshot` of an instrumented run; it
    round-trips through both paths bit-for-bit and stays ``None`` (and
    absent from the dict form) for plain sweep runs.  ``faults`` is the
    :meth:`repro.faults.injector.FaultInjector.snapshot` of a degraded run
    and ``memory_digest`` the post-run main-memory fingerprint — both also
    ``None``/absent unless requested.
    """

    app: str
    config: str
    stats: MachineStats
    metrics: dict | None = None
    faults: dict | None = None
    memory_digest: str | None = None

    @property
    def exec_time(self) -> int:
        """Simulated execution time in cycles (the Figure 9/12 y-axis)."""
        return self.stats.exec_time

    def breakdown(self) -> dict[str, float]:
        """Stall/traffic composition of the run (Figure 9/10 categories)."""
        return self.stats.breakdown()

    def to_dict(self) -> dict:
        """JSON-safe form; optional fields are included only when present."""
        d = {"app": self.app, "config": self.config, "stats": self.stats.to_dict()}
        if self.metrics is not None:
            d["metrics"] = self.metrics
        if self.faults is not None:
            d["faults"] = self.faults
        if self.memory_digest is not None:
            d["memory_digest"] = self.memory_digest
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        """Exact inverse of :meth:`to_dict` (the result-cache contract)."""
        return cls(
            d["app"],
            d["config"],
            MachineStats.from_dict(d["stats"]),
            d.get("metrics"),
            d.get("faults"),
            d.get("memory_digest"),
        )


def _make_injector(faults):
    """Build a FaultInjector for *faults* (a FaultPlan), or pass None through."""
    if faults is None:
        return None
    from repro.faults.injector import FaultInjector

    return FaultInjector(faults)


def _finish_result(
    app: str,
    config: ExperimentConfig,
    machine: Machine,
    stats: MachineStats,
    metrics,
    injector,
    memory_digest: bool,
) -> RunResult:
    """Assemble a :class:`RunResult`, attaching the optional extras."""
    from repro.mem.memory import image_digest

    return RunResult(
        app,
        config.name,
        stats,
        metrics.snapshot() if metrics is not None else None,
        injector.snapshot() if injector is not None else None,
        image_digest(machine.hier.memory.image()) if memory_digest else None,
    )


def run_intra(
    app: str,
    config: ExperimentConfig,
    *,
    num_threads: int = 16,
    scale: float = 1.0,
    machine_params: MachineParams | None = None,
    verify: bool = True,
    tracer=None,
    metrics=None,
    faults=None,
    memory_digest: bool = False,
    engine: str | None = None,
    model: str | None = None,
) -> RunResult:
    """Run a Model-1 (SPLASH) workload on the intra-block machine.

    ``tracer``/``metrics`` attach :mod:`repro.obs` sinks to the machine;
    both are bit-identical-neutral and the metrics snapshot rides along in
    the returned :class:`RunResult`.  ``faults`` arms a
    :class:`repro.faults.model.FaultPlan` for the run (degraded timing,
    identical values); ``memory_digest=True`` fingerprints main memory
    after the run so chaos harnesses can compare images across runs.
    ``model`` selects the registered memory model (:mod:`repro.models`,
    default ``$REPRO_MODEL`` then ``base``).
    """
    if app not in MODEL_ONE:
        raise ConfigError(f"unknown Model-1 workload {app!r}")
    params = machine_params or intra_block_machine(num_threads)
    injector = _make_injector(faults)
    machine = Machine(
        params, config, num_threads=num_threads, tracer=tracer, metrics=metrics,
        faults=injector, engine=engine, model=model,
    )
    workload = MODEL_ONE[app](scale=scale)
    if verify:
        stats = workload.run_on(machine)
    else:
        workload.prepare(machine)
        stats = machine.run()
    return _finish_result(app, config, machine, stats, metrics, injector, memory_digest)


def run_inter(
    app: str,
    config: ExperimentConfig,
    *,
    num_blocks: int = 4,
    cores_per_block: int = 8,
    scale: float = 1.0,
    machine_params: MachineParams | None = None,
    verify: bool = True,
    tracer=None,
    metrics=None,
    faults=None,
    memory_digest: bool = False,
    engine: str | None = None,
    model: str | None = None,
) -> RunResult:
    """Run a Model-2 (NAS/Jacobi) workload on the inter-block machine.

    ``tracer``/``metrics``/``faults``/``memory_digest`` behave as in
    :func:`run_intra`.
    """
    if app not in MODEL_TWO:
        raise ConfigError(f"unknown Model-2 workload {app!r}")
    params = machine_params or inter_block_machine(num_blocks, cores_per_block)
    injector = _make_injector(faults)
    machine = Machine(
        params, config, num_threads=params.num_cores, tracer=tracer,
        metrics=metrics, faults=injector, engine=engine, model=model,
    )
    workload = MODEL_TWO[app](scale=scale)
    if verify:
        stats = workload.run_on(machine)
    else:
        runner = workload.make_runner(machine)
        runner.spawn_all()
        stats = machine.run()
    return _finish_result(app, config, machine, stats, metrics, injector, memory_digest)


def run_litmus(
    name: str,
    config: ExperimentConfig,
    *,
    verify: bool = True,
    tracer=None,
    metrics=None,
    faults=None,
    memory_digest: bool = False,
    engine: str | None = None,
    model: str | None = None,
) -> RunResult:
    """Run one litmus kernel (``repro.workloads.litmus``) as a sweep cell.

    Litmus kernels are tiny targeted programs with self-checking oracles;
    running them through the same RunResult/sweep machinery as the big
    workloads lets the chaos harness fan them out and digest-compare their
    memory images.  ``verify`` applies the kernel's oracle — only for
    determinate kernels (broken kernels intentionally fail theirs; the
    chaos runner detects those through digest divergence instead).
    """
    from repro.workloads.litmus import LITMUS, machine_params, spawn_litmus

    if name not in LITMUS:
        raise ConfigError(f"unknown litmus kernel {name!r}")
    kernel = LITMUS[name]
    params = machine_params(kernel)
    injector = _make_injector(faults)
    machine = Machine(
        params, config, num_threads=kernel.threads, tracer=tracer,
        metrics=metrics, faults=injector, engine=engine, model=model,
    )
    arrs, obs = spawn_litmus(kernel, machine)
    stats = machine.run()
    if verify and kernel.determinate and kernel.check is not None:
        mem = {n: machine.read_array(a) for n, a in arrs.items()}
        kernel.check(obs, mem)
    return _finish_result(name, config, machine, stats, metrics, injector, memory_digest)


def sweep_intra(
    apps: list[str],
    configs: list[ExperimentConfig],
    *,
    jobs: int | None = None,
    executor=None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """{app: {config name: result}} over the intra-block matrix.

    Cells fan out over ``jobs`` worker processes (default: CPU count; pass
    ``jobs=1`` to force in-process serial execution).  Pass a preconfigured
    :class:`~repro.eval.parallel.SweepExecutor` as ``executor`` for caching,
    timeouts, or shared hit/miss counters; remaining ``kwargs`` go to
    :func:`run_intra` per cell.
    """
    from repro.eval.parallel import SweepExecutor, sweep_matrix

    executor = executor or SweepExecutor(jobs=jobs)
    return sweep_matrix("intra", apps, configs, executor, **kwargs)


def sweep_inter(
    apps: list[str],
    configs: list[ExperimentConfig],
    *,
    jobs: int | None = None,
    executor=None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """{app: {config name: result}} over the inter-block matrix.

    Same execution semantics as :func:`sweep_intra`; ``kwargs`` go to
    :func:`run_inter` per cell.
    """
    from repro.eval.parallel import SweepExecutor, sweep_matrix

    executor = executor or SweepExecutor(jobs=jobs)
    return sweep_matrix("inter", apps, configs, executor, **kwargs)


def normalized_exec(results: dict[str, RunResult], baseline: str = "HCC") -> dict[str, float]:
    """Execution times of one app's configs normalized to *baseline*."""
    base = results[baseline].exec_time
    if base <= 0:
        raise ConfigError("baseline execution time is zero")
    return {name: r.exec_time / base for name, r in results.items()}


def stall_fractions(result: RunResult) -> dict[str, float]:
    """Figure 9 stacked-bar fractions (each category / exec time)."""
    b = result.breakdown()
    total = result.exec_time or 1
    return {cat.value: b[cat.value] / total for cat in StallCat}
