"""Experiment runner: one (application × configuration) simulation per call.

The intra-block experiments (Figures 9 and 10) run the SPLASH-2 workloads on
the 16-core single-block machine over the upper Table II configurations; the
inter-block experiments (Figures 11 and 12) run the NAS/Jacobi IR workloads
on the 4-block × 8-core machine over the lower Table II configurations.
Every run is functionally verified before its statistics are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.params import MachineParams, inter_block_machine, intra_block_machine
from repro.core.config import ExperimentConfig
from repro.core.machine import Machine
from repro.sim.stats import MachineStats, StallCat
from repro.workloads import MODEL_ONE, MODEL_TWO


@dataclass(frozen=True)
class RunResult:
    """Statistics of one verified (app, config) run.

    Instances are plain frozen dataclasses over picklable state, so they
    travel through process-pool workers unchanged, and ``to_dict`` /
    ``from_dict`` give an exact JSON round trip for the on-disk result
    cache.  ``metrics`` is the optional JSON-safe
    :meth:`repro.obs.metrics.Metrics.snapshot` of an instrumented run; it
    round-trips through both paths bit-for-bit and stays ``None`` (and
    absent from the dict form) for plain sweep runs.
    """

    app: str
    config: str
    stats: MachineStats
    metrics: dict | None = None

    @property
    def exec_time(self) -> int:
        """Simulated execution time in cycles (the Figure 9/12 y-axis)."""
        return self.stats.exec_time

    def breakdown(self) -> dict[str, float]:
        """Stall/traffic composition of the run (Figure 9/10 categories)."""
        return self.stats.breakdown()

    def to_dict(self) -> dict:
        """JSON-safe form; ``metrics`` is included only when present."""
        d = {"app": self.app, "config": self.config, "stats": self.stats.to_dict()}
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        """Exact inverse of :meth:`to_dict` (the result-cache contract)."""
        return cls(
            d["app"],
            d["config"],
            MachineStats.from_dict(d["stats"]),
            d.get("metrics"),
        )


def run_intra(
    app: str,
    config: ExperimentConfig,
    *,
    num_threads: int = 16,
    scale: float = 1.0,
    machine_params: MachineParams | None = None,
    verify: bool = True,
    tracer=None,
    metrics=None,
) -> RunResult:
    """Run a Model-1 (SPLASH) workload on the intra-block machine.

    ``tracer``/``metrics`` attach :mod:`repro.obs` sinks to the machine;
    both are bit-identical-neutral and the metrics snapshot rides along in
    the returned :class:`RunResult`.
    """
    if app not in MODEL_ONE:
        raise ConfigError(f"unknown Model-1 workload {app!r}")
    params = machine_params or intra_block_machine(num_threads)
    machine = Machine(
        params, config, num_threads=num_threads, tracer=tracer, metrics=metrics
    )
    workload = MODEL_ONE[app](scale=scale)
    if verify:
        stats = workload.run_on(machine)
    else:
        workload.prepare(machine)
        stats = machine.run()
    snapshot = metrics.snapshot() if metrics is not None else None
    return RunResult(app, config.name, stats, snapshot)


def run_inter(
    app: str,
    config: ExperimentConfig,
    *,
    num_blocks: int = 4,
    cores_per_block: int = 8,
    scale: float = 1.0,
    machine_params: MachineParams | None = None,
    verify: bool = True,
    tracer=None,
    metrics=None,
) -> RunResult:
    """Run a Model-2 (NAS/Jacobi) workload on the inter-block machine.

    ``tracer``/``metrics`` attach :mod:`repro.obs` sinks, as in
    :func:`run_intra`.
    """
    if app not in MODEL_TWO:
        raise ConfigError(f"unknown Model-2 workload {app!r}")
    params = machine_params or inter_block_machine(num_blocks, cores_per_block)
    machine = Machine(
        params, config, num_threads=params.num_cores, tracer=tracer, metrics=metrics
    )
    workload = MODEL_TWO[app](scale=scale)
    if verify:
        stats = workload.run_on(machine)
    else:
        runner = workload.make_runner(machine)
        runner.spawn_all()
        stats = machine.run()
    snapshot = metrics.snapshot() if metrics is not None else None
    return RunResult(app, config.name, stats, snapshot)


def sweep_intra(
    apps: list[str],
    configs: list[ExperimentConfig],
    *,
    jobs: int | None = None,
    executor=None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """{app: {config name: result}} over the intra-block matrix.

    Cells fan out over ``jobs`` worker processes (default: CPU count; pass
    ``jobs=1`` to force in-process serial execution).  Pass a preconfigured
    :class:`~repro.eval.parallel.SweepExecutor` as ``executor`` for caching,
    timeouts, or shared hit/miss counters; remaining ``kwargs`` go to
    :func:`run_intra` per cell.
    """
    from repro.eval.parallel import SweepExecutor, sweep_matrix

    executor = executor or SweepExecutor(jobs=jobs)
    return sweep_matrix("intra", apps, configs, executor, **kwargs)


def sweep_inter(
    apps: list[str],
    configs: list[ExperimentConfig],
    *,
    jobs: int | None = None,
    executor=None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """{app: {config name: result}} over the inter-block matrix.

    Same execution semantics as :func:`sweep_intra`; ``kwargs`` go to
    :func:`run_inter` per cell.
    """
    from repro.eval.parallel import SweepExecutor, sweep_matrix

    executor = executor or SweepExecutor(jobs=jobs)
    return sweep_matrix("inter", apps, configs, executor, **kwargs)


def normalized_exec(results: dict[str, RunResult], baseline: str = "HCC") -> dict[str, float]:
    """Execution times of one app's configs normalized to *baseline*."""
    base = results[baseline].exec_time
    if base <= 0:
        raise ConfigError("baseline execution time is zero")
    return {name: r.exec_time / base for name, r in results.items()}


def stall_fractions(result: RunResult) -> dict[str, float]:
    """Figure 9 stacked-bar fractions (each category / exec time)."""
    b = result.breakdown()
    total = result.exec_time or 1
    return {cat.value: b[cat.value] / total for cat in StallCat}
