"""Control/storage overhead comparison (Section VII-A).

The paper adds up the storage structures each hierarchy needs on the
4-block × 8-core machine:

* **Coherent**: a hierarchical full-map directory — each L3 line carries 4
  presence bits (one per block) plus a dirty bit; each L2 line carries 8
  presence bits (one per core in the block) plus a dirty bit — and 4 bits
  of MESI state in every L1 and L2 line.
* **Incoherent**: the per-core MEB (16 entries × (9-bit line ID + valid))
  and IEB (4 entries × (40-bit line address + valid)), plus a valid bit and
  16 per-word dirty bits in every L1 and L2 line.

The paper reports the incoherent hierarchy using "about 102 KB less storage"
— "a very small savings" — the argument being simplicity, not area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import MachineParams, inter_block_machine

#: Bits of MESI state per L1/L2 line in the coherent hierarchy.
MESI_STATE_BITS = 4
#: Presence + dirty bits per L3 directory entry (4 blocks + dirty).
L3_DIR_BITS_PER_LINE_PER_BLOCKS = 1  # presence bit per block
#: MEB entry: 9-bit line ID + valid (Table III).
MEB_ENTRY_BITS = 9 + 1
#: IEB entry: 40-bit line address + valid (Table III).
IEB_ENTRY_BITS = 40 + 1


@dataclass(frozen=True)
class StorageReport:
    """Bit counts for both hierarchies plus the headline delta."""

    coherent_bits: int
    incoherent_bits: int

    @property
    def saved_bits(self) -> int:
        """Bits the incoherent hierarchy saves over the directory MESI one."""
        return self.coherent_bits - self.incoherent_bits

    @property
    def saved_kbytes(self) -> float:
        """:attr:`saved_bits` expressed in kilobytes."""
        return self.saved_bits / 8 / 1024

    @property
    def coherent_kbytes(self) -> float:
        """Coherent-hierarchy bookkeeping storage in kilobytes."""
        return self.coherent_bits / 8 / 1024

    @property
    def incoherent_kbytes(self) -> float:
        """Incoherent-hierarchy bookkeeping storage in kilobytes."""
        return self.incoherent_bits / 8 / 1024


def _total_l1_lines(machine: MachineParams) -> int:
    return machine.num_cores * machine.l1.num_lines


def _total_l2_lines(machine: MachineParams) -> int:
    return machine.num_blocks * machine.cores_per_block * machine.l2_bank.num_lines


def _total_l3_lines(machine: MachineParams) -> int:
    if machine.l3_bank is None:
        return 0
    return machine.num_l3_banks * machine.l3_bank.num_lines


def coherent_storage_bits(machine: MachineParams) -> int:
    """Directory plus coherence-state storage for the MESI hierarchy."""
    l1 = _total_l1_lines(machine)
    l2 = _total_l2_lines(machine)
    l3 = _total_l3_lines(machine)
    # Hierarchical full-map directory: L3 entries track blocks, L2 entries
    # track the block's cores; each level adds a dirty bit.
    l3_dir = l3 * (machine.num_blocks + 1)
    l2_dir = l2 * (machine.cores_per_block + 1)
    state = (l1 + l2) * MESI_STATE_BITS
    return l3_dir + l2_dir + state


def incoherent_storage_bits(machine: MachineParams) -> int:
    """MEB/IEB plus valid and per-word dirty bits for the incoherent design."""
    l1 = _total_l1_lines(machine)
    l2 = _total_l2_lines(machine)
    per_line = 1 + machine.words_per_line  # valid + per-word dirty
    lines = (l1 + l2) * per_line
    buffers = machine.num_cores * (
        machine.buffers.meb_entries * MEB_ENTRY_BITS
        + machine.buffers.ieb_entries * IEB_ENTRY_BITS
    )
    return lines + buffers


def storage_report(machine: MachineParams | None = None) -> StorageReport:
    """The Section VII-A comparison (defaults to the 4×8 paper machine)."""
    if machine is None:
        machine = inter_block_machine()
    return StorageReport(
        coherent_bits=coherent_storage_bits(machine),
        incoherent_bits=incoherent_storage_bits(machine),
    )
