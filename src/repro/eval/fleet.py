"""Scenario fleet: N generated scenarios × configs × engines, auto-checked.

``repro fleet`` is a one-command differential test bed over the generative
traffic engine (:mod:`repro.workloads.gen`).  For every sampled
:class:`~repro.workloads.gen.spec.ScenarioSpec` the fleet runs:

* one hardware-coherent (``HCC``) reference cell — the value oracle,
* one cell per (software-coherent configuration × engine),

all through a single :class:`~repro.eval.parallel.SweepExecutor` call
(parallel + cached; the engine name rides in the cell kwargs so ``ref``
and ``fast`` results cache separately), plus a static lint pass per
(scenario × configuration).  The verdict folds three checks:

* **oracle** — every software-coherent cell's final-memory digest equals
  the HCC reference digest (each cell additionally self-verifies against
  the builder's analytic image while running);
* **engine** — for each (scenario, config), every engine produced
  bit-identical :class:`~repro.sim.stats.MachineStats` *and* digest;
* **lint** — every generated program is clean under the Section IV-A
  analyzer for every configuration it runs.

The verdict is JSON-safe (CI uploads it as an artifact) and ``clean`` is
the exit-code contract: any divergence, mismatch, or lint finding makes
the fleet command exit non-zero.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigError
from repro.core.config import (
    INTRA_BASE,
    INTRA_BMI,
    INTRA_HCC,
    ExperimentConfig,
)
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.workloads.gen import ScenarioSpec, lint_scenario, sample_specs

#: Software-coherent configurations a fleet sweeps by default — the two
#: ends of the Table II intra spectrum (plain Base and fully buffered).
DEFAULT_FLEET_CONFIGS = (INTRA_BASE, INTRA_BMI)


def fleet_cells(
    specs: Sequence[ScenarioSpec],
    *,
    configs: Sequence[ExperimentConfig] = DEFAULT_FLEET_CONFIGS,
    engines: Sequence[str] = ("ref",),
) -> list[SweepCell]:
    """Lower a fleet to its flat cell list (validating the matrix).

    Per scenario: one HCC reference cell, then one cell per
    (config × engine), giving a fixed stride of
    ``1 + len(configs) * len(engines)`` that :func:`fleet_verdict`
    re-slices.  Exposed separately so the job server can shard the same
    cells across its worker pool and fold them back with the same verdict.
    """
    if not specs:
        raise ConfigError("fleet needs at least one scenario")
    if not engines:
        raise ConfigError("fleet needs at least one engine")
    for cfg in configs:
        if cfg.hardware_coherent:
            raise ConfigError(
                "fleet configs must be software-coherent (HCC is implicit)"
            )
    cells: list[SweepCell] = []
    for spec in specs:
        cells.append(
            SweepCell.make(
                "gen", spec.name, INTRA_HCC, spec=spec, memory_digest=True
            )
        )
        for cfg in configs:
            for engine in engines:
                cells.append(
                    SweepCell.make(
                        "gen", spec.name, cfg, spec=spec,
                        memory_digest=True, engine=engine,
                    )
                )
    return cells


def fleet_verdict(
    specs: Sequence[ScenarioSpec],
    results: Sequence,
    *,
    configs: Sequence[ExperimentConfig] = DEFAULT_FLEET_CONFIGS,
    engines: Sequence[str] = ("ref",),
    lint: bool = True,
    sweep_summary: str = "",
) -> dict:
    """Fold per-cell results (in :func:`fleet_cells` order) into the verdict."""
    stride = 1 + len(configs) * len(engines)
    details: list[dict] = []
    oracle_divergences = engine_mismatches = lint_violations = 0
    patterns: dict[str, int] = {}
    for i, spec in enumerate(specs):
        chunk = results[i * stride:(i + 1) * stride]
        reference, rest = chunk[0], chunk[1:]
        entry: dict = {
            "scenario": spec.name,
            "pattern": spec.pattern,
            "spec": spec.to_dict(),
            "digest": reference.memory_digest,
            "oracle_ok": True,
            "engine_ok": True,
            "lint_ok": True,
            "cells": {},
        }
        patterns[spec.pattern] = patterns.get(spec.pattern, 0) + 1
        for c, cfg in enumerate(configs):
            per_engine = rest[c * len(engines):(c + 1) * len(engines)]
            for engine, run in zip(engines, per_engine):
                entry["cells"][f"{cfg.name}/{engine}"] = {
                    "exec_time": run.exec_time,
                    "digest": run.memory_digest,
                }
                if run.memory_digest != reference.memory_digest:
                    entry["oracle_ok"] = False
                    oracle_divergences += 1
            first = per_engine[0]
            for run in per_engine[1:]:
                if (
                    run.stats != first.stats
                    or run.memory_digest != first.memory_digest
                ):
                    entry["engine_ok"] = False
                    engine_mismatches += 1
        if lint:
            for cfg in configs:
                report = lint_scenario(spec, cfg)
                if not report.clean:
                    entry["lint_ok"] = False
                    lint_violations += len(report.findings)
                    entry.setdefault("lint_findings", []).extend(
                        f"{cfg.name}: {f.rule_id}" for f in report.findings
                    )
        details.append(entry)

    return {
        "scenarios": len(specs),
        "patterns": patterns,
        "configs": [cfg.name for cfg in configs],
        "engines": list(engines),
        "cells": len(results),
        "lint_checks": (len(specs) * len(configs)) if lint else 0,
        "oracle_divergences": oracle_divergences,
        "engine_mismatches": engine_mismatches,
        "lint_violations": lint_violations,
        "clean": not (oracle_divergences or engine_mismatches or lint_violations),
        "sweep": sweep_summary,
        "details": details,
    }


def run_fleet(
    specs: Sequence[ScenarioSpec],
    *,
    configs: Sequence[ExperimentConfig] = DEFAULT_FLEET_CONFIGS,
    engines: Sequence[str] = ("ref",),
    executor: SweepExecutor | None = None,
    lint: bool = True,
) -> dict:
    """Run the scenario fleet; return the JSON-safe verdict document.

    ``configs`` must be software-coherent (the HCC reference is implicit);
    ``engines`` are registry names (:mod:`repro.engines`).  Every cell
    requests a memory digest and runs with ``verify=True``, so a scenario
    whose image deviates from its analytic oracle raises immediately; the
    verdict additionally cross-compares digests (oracle) and stats+digest
    pairs (engines) and records per-scenario detail.  Composes
    :func:`fleet_cells` + one :meth:`SweepExecutor.run_cells` call +
    :func:`fleet_verdict` — the job server runs the same two pure halves
    around its own worker pool.
    """
    executor = executor or SweepExecutor()
    cells = fleet_cells(specs, configs=configs, engines=engines)
    results = executor.run_cells(cells)
    return fleet_verdict(
        specs, results, configs=configs, engines=engines, lint=lint,
        sweep_summary=executor.stats.summary(),
    )


def run_default_fleet(
    num_scenarios: int,
    *,
    seed: int | None = None,
    configs: Sequence[ExperimentConfig] = DEFAULT_FLEET_CONFIGS,
    engines: Sequence[str] = ("ref",),
    executor: SweepExecutor | None = None,
    lint: bool = True,
) -> dict:
    """Convenience wrapper: sample ``num_scenarios`` specs and run them."""
    from repro.common.rng import DEFAULT_SEED

    specs = sample_specs(
        num_scenarios, seed=DEFAULT_SEED if seed is None else seed
    )
    return run_fleet(
        specs, configs=configs, engines=engines, executor=executor, lint=lint
    )
