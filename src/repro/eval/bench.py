"""Repeatable wall-clock measurement with JSON archival (``BENCH_*.json``).

The benchmark harness under ``benchmarks/`` regenerates paper artifacts;
this module adds the *performance-trajectory* layer on top: run a sweep
callable several times (``--warmup``/``--repeat``), summarize the wall
clock as median + p95, and archive the record — engine name, git revision,
per-run seconds — as ``BENCH_<name>.json`` at the repository root.  Records
are append-friendly snapshots: comparing two files from different
revisions (or the same revision under ``ref`` vs ``fast``) is how the
simulator's speed is tracked over time.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import statistics
import subprocess
import time
from typing import Any, Callable

#: Repository root (this file lives at src/repro/eval/bench.py).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def git_rev(root: pathlib.Path | None = None) -> str:
    """Short git revision of *root* (default: the repo), or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def measure(
    fn: Callable[[], Any], *, warmup: int = 0, repeat: int = 1
) -> tuple[Any, list[float]]:
    """Call *fn* ``warmup`` untimed + ``repeat`` timed times.

    Returns (the last timed call's result, per-run wall-clock seconds).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    seconds: list[float] = []
    result: Any = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        seconds.append(time.perf_counter() - t0)
    return result, seconds


def record(
    name: str,
    seconds: list[float],
    *,
    engine: str | None = None,
    warmup: int = 0,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the archival payload for one measured benchmark.

    ``engine`` defaults to the session's resolved engine (``$REPRO_ENGINE``
    or ``ref``), so records always say which core produced the numbers.
    """
    payload: dict[str, Any] = {
        "name": name,
        "engine": engine or os.environ.get("REPRO_ENGINE", "ref"),
        "git_rev": git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "warmup": warmup,
        "repeat": len(seconds),
        "runs_s": [round(s, 6) for s in seconds],
        "median_s": round(statistics.median(seconds), 6),
        "p95_s": round(percentile(seconds, 95), 6),
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(
    payload: dict[str, Any], out: str | os.PathLike | None = None
) -> pathlib.Path:
    """Write *payload* to ``BENCH_<name>.json`` (or *out*); return the path."""
    path = (
        pathlib.Path(out)
        if out is not None
        else REPO_ROOT / f"BENCH_{payload['name']}.json"
    )
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
