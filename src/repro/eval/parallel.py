"""Parallel sweep execution over the (application × configuration) matrix.

The paper's evaluation is an embarrassingly parallel matrix — Figures 9–12
alone cover ~40 independent simulations — and every cell is deterministic,
so cells can be fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and/or served from the persistent :class:`~repro.eval.cache.ResultCache`
without changing a single statistic.  :class:`SweepExecutor` is the engine
behind :func:`~repro.eval.runner.sweep_intra` /
:func:`~repro.eval.runner.sweep_inter`, so every existing caller (CLI,
benchmarks, reports) inherits parallelism and caching.

Execution strategy per batch of cells:

1. cells with a cache hit are rehydrated and never simulated;
2. the remaining cells run on a process pool of ``jobs`` workers, with a
   per-cell ``timeout`` and up to ``retries`` resubmissions on timeout;
3. with ``jobs=1``, a single pending cell, or an unavailable pool (no
   ``fork``/semaphores, broken workers, sandboxed environments), cells fall
   back to plain in-process serial execution — same results, no pool.

Results are returned in cell order regardless of completion order, and
fresh results are written back to the cache.
"""

from __future__ import annotations

import os
import time
from concurrent import futures
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import ConfigError, SweepError
from repro.core.config import ExperimentConfig
from repro.eval.cache import ResultCache
from repro.eval.runner import RunResult, run_inter, run_intra, run_litmus


@dataclass(frozen=True)
class SweepCell:
    """One (application, configuration) point of a sweep matrix.

    ``kwargs`` is a sorted tuple of the runner keyword arguments so the cell
    is hashable, picklable, and has a canonical form for cache keying.
    """

    kind: str  # "intra" | "inter" | "litmus" | "gen"
    app: str
    config: ExperimentConfig
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, kind: str, app: str, config: ExperimentConfig, **kwargs
    ) -> "SweepCell":
        """Build a cell with kwargs canonicalized into sorted tuple form."""
        return cls(kind, app, config, tuple(sorted(kwargs.items())))


def _run_cell(cell: SweepCell) -> RunResult:
    """Execute one cell (module-level so the process pool can pickle it)."""
    kwargs = dict(cell.kwargs)
    if cell.kind == "intra":
        return run_intra(cell.app, cell.config, **kwargs)
    if cell.kind == "inter":
        return run_inter(cell.app, cell.config, **kwargs)
    if cell.kind == "litmus":
        return run_litmus(cell.app, cell.config, **kwargs)
    if cell.kind == "gen":
        from repro.workloads.gen import run_gen

        return run_gen(kwargs.pop("spec"), cell.config, **kwargs)
    raise ConfigError(f"unknown sweep kind {cell.kind!r}")


@dataclass
class SweepStats:
    """Counters accumulated across every batch an executor runs."""

    jobs: int = 1
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    retries: int = 0
    pool_fallbacks: int = 0
    wall_seconds: float = 0.0

    def summary(self) -> str:
        """One-line human-readable digest of the accumulated counters."""
        parts = [
            f"{self.cells} cell(s) in {self.wall_seconds:.2f}s",
            f"jobs={self.jobs}",
            f"cache {self.cache_hits} hit(s) / {self.cache_misses} miss(es)",
        ]
        if self.retries:
            parts.append(f"{self.retries} retry(ies)")
        if self.pool_fallbacks:
            parts.append(f"{self.pool_fallbacks} serial fallback(s)")
        return "sweep: " + ", ".join(parts)


class SweepExecutor:
    """Fans sweep cells out over worker processes, backed by a result cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``jobs=1``
        always runs in-process (no pool, no pickling).
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely and
        fresh results are written back.
    timeout:
        Per-cell wall-clock budget in seconds (pool mode only — a serial
        in-process run cannot be interrupted).
    retries:
        How many times a timed-out cell is resubmitted before
        :class:`~repro.common.errors.SweepError` is raised.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1 (got {jobs})")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0 (got {retries})")
        self.jobs = int(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = int(retries)
        self.stats = SweepStats(jobs=self.jobs)

    # -- public API ---------------------------------------------------------

    def run_cells(self, cells: Sequence[SweepCell]) -> list[RunResult]:
        """Run every cell; results come back in input order."""
        t0 = time.perf_counter()
        results: list[RunResult | None] = [None] * len(cells)
        pending: list[int] = []
        for i, cell in enumerate(cells):
            self.stats.cells += 1
            if self.cache is not None:
                hit = self.cache.get(cell)
                if hit is not None:
                    self.stats.cache_hits += 1
                    results[i] = hit
                    continue
                self.stats.cache_misses += 1
            pending.append(i)

        if pending:
            todo = [cells[i] for i in pending]
            if self.jobs > 1 and len(todo) > 1:
                computed = self._run_pool(todo)
            else:
                computed = [_run_cell(c) for c in todo]
            self.stats.simulated += len(todo)
            for i, result in zip(pending, computed):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(cells[i], result)

        self.stats.wall_seconds += time.perf_counter() - t0
        return results  # type: ignore[return-value]

    # -- pool plumbing ------------------------------------------------------

    def _run_pool(self, cells: list[SweepCell]) -> list[RunResult]:
        try:
            pool = futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(cells))
            )
        except (OSError, ValueError, NotImplementedError, PermissionError):
            # No fork / no POSIX semaphores (sandboxes, exotic platforms):
            # degrade to serial in-process execution, bit-identical results.
            self.stats.pool_fallbacks += 1
            return [_run_cell(c) for c in cells]
        try:
            out = self._drain(pool, cells)
        except futures.process.BrokenProcessPool:
            # A worker died (OOM-killed, signalled).  Rerun the whole batch
            # serially: the simulator is deterministic, so this only costs
            # time, never accuracy.
            self.stats.pool_fallbacks += 1
            pool.shutdown(wait=False, cancel_futures=True)
            return [_run_cell(c) for c in cells]
        except BaseException:
            # SweepError (hung worker) or a simulation failure: don't block
            # on shutdown waiting for workers we can no longer trust.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return out

    def _drain(
        self, pool: futures.ProcessPoolExecutor, cells: list[SweepCell]
    ) -> list[RunResult]:
        outstanding = {i: pool.submit(_run_cell, c) for i, c in enumerate(cells)}
        out: list[RunResult | None] = [None] * len(cells)
        for i, cell in enumerate(cells):
            attempts = 0
            while True:
                try:
                    out[i] = outstanding[i].result(timeout=self.timeout)
                    break
                except futures.TimeoutError:
                    attempts += 1
                    if attempts > self.retries:
                        raise SweepError(
                            f"sweep cell ({cell.app}, {cell.config.name}) "
                            f"exceeded {self.timeout}s {attempts} time(s)"
                        ) from None
                    self.stats.retries += 1
                    outstanding[i].cancel()
                    outstanding[i] = pool.submit(_run_cell, cell)
        return out  # type: ignore[return-value]


def sweep_matrix(
    kind: str,
    apps: Sequence[str],
    configs: Sequence[ExperimentConfig],
    executor: SweepExecutor | None = None,
    **kwargs,
) -> dict[str, dict[str, RunResult]]:
    """Run the full (app × config) matrix; returns {app: {config: result}}."""
    executor = executor or SweepExecutor()
    cells = [
        SweepCell.make(kind, app, cfg, **kwargs) for app in apps for cfg in configs
    ]
    flat = iter(executor.run_cells(cells))
    return {app: {cfg.name: next(flat) for cfg in configs} for app in apps}
