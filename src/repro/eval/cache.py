"""Persistent, content-addressed cache of verified sweep results.

Every (application × configuration) cell of a sweep is fully determined by
its inputs — the simulator is deterministic — so a verified
:class:`~repro.eval.runner.RunResult` can be reused across processes and
across sessions.  This module stores one JSON file per cell under a cache
root, keyed by a stable SHA-256 hash of the *complete* cell identity:

* cache schema version and ``repro.__version__``,
* sweep kind (``intra`` / ``inter`` / ``litmus`` / ``gen``), application
  name (for ``gen`` cells, additionally the canonical ScenarioSpec digest),
* every field of the :class:`~repro.core.config.ExperimentConfig`,
* the **resolved** :class:`~repro.common.params.MachineParams` (defaults are
  expanded, so passing ``machine_params=None`` and passing the equivalent
  explicit machine hash identically),
* thread/block geometry (``num_threads`` or ``num_blocks`` ×
  ``cores_per_block``), workload ``scale``, and the ``verify`` flag,
* the digest of the armed fault plan (``None`` for fault-free runs),
* any extra runner keyword arguments (by repr).

Changing any of those fields — or bumping the package version — invalidates
the cached cell.  The root directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-sweeps``.

Entries are written atomically (tmp file + rename), so concurrent sweep
workers racing on the same cell are safe: last writer wins with identical
bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import TYPE_CHECKING

from repro import __version__
from repro.common.params import inter_block_machine, intra_block_machine
from repro.eval.runner import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel → cache)
    from repro.eval.parallel import SweepCell

#: Bump when the on-disk payload layout changes; invalidates old entries.
#: 2: litmus cells, fault_plan digest, MEB/IEB counters in MachineStats.
CACHE_SCHEMA = 2


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path.home() / ".cache" / "repro-sweeps"


def describe_cell(cell: "SweepCell") -> dict:
    """The complete, JSON-safe identity of one sweep cell.

    This is the exact payload the cache key hashes; it is also archived in
    each entry so users can inspect why a cell did (not) hit.
    """
    kwargs = dict(cell.kwargs)
    machine = kwargs.pop("machine_params", None)
    plan = kwargs.pop("faults", None)
    if cell.kind == "intra":
        num_threads = kwargs.pop("num_threads", 16)
        params = machine or intra_block_machine(num_threads)
        geometry: dict = {"num_threads": num_threads}
    elif cell.kind == "inter":
        num_blocks = kwargs.pop("num_blocks", 4)
        cores_per_block = kwargs.pop("cores_per_block", 8)
        params = machine or inter_block_machine(num_blocks, cores_per_block)
        geometry = {"num_blocks": num_blocks, "cores_per_block": cores_per_block}
    elif cell.kind == "litmus":
        from repro.workloads.litmus import LITMUS, machine_params

        kernel = LITMUS[cell.app]
        params = machine or machine_params(kernel)
        geometry = {"model": kernel.model, "num_threads": kernel.threads}
    elif cell.kind == "gen":
        from repro.workloads.gen import gen_machine_params

        spec = kwargs.pop("spec")
        params = machine or gen_machine_params(spec)
        # The canonical spec digest covers every generator parameter, so
        # two cells collide exactly when they run the same scenario.
        geometry = {
            "pattern": spec.pattern,
            "num_threads": spec.threads,
            "scenario": spec.digest(),
        }
    else:
        raise ValueError(f"unknown sweep kind {cell.kind!r}")
    return {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "kind": cell.kind,
        "app": cell.app,
        "config": dataclasses.asdict(cell.config),
        "machine": dataclasses.asdict(params),
        "geometry": geometry,
        "scale": kwargs.pop("scale", 1.0),
        "verify": kwargs.pop("verify", True),
        # The armed fault plan changes every timing statistic, so its digest
        # (which covers the plan seed and every spec) is part of the key.
        "fault_plan": plan.digest() if plan is not None else None,
        "extra": {k: repr(v) for k, v in sorted(kwargs.items())},
    }


def cell_key(cell: "SweepCell") -> str:
    """Stable SHA-256 hex key of a sweep cell's full identity."""
    blob = json.dumps(
        describe_cell(cell), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk result store: ``<root>/<key[:2]>/<key>.json`` per cell."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: "SweepCell") -> RunResult | None:
        """Rehydrated result for *cell*, or None (corrupt entries are misses)."""
        path = self._path(cell_key(cell))
        try:
            payload = json.loads(path.read_text())
            result = RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cell: "SweepCell", result: RunResult) -> pathlib.Path:
        """Persist *result* for *cell* atomically; return the entry path."""
        key = cell_key(cell)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "cell": describe_cell(cell),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> list[pathlib.Path]:
        """Paths of all cached cells under the root."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every cached entry; return how many were removed."""
        n = 0
        for path in self.entries():
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
