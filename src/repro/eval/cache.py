"""Persistent, content-addressed cache of verified sweep results.

Every (application × configuration) cell of a sweep is fully determined by
its inputs — the simulator is deterministic — so a verified
:class:`~repro.eval.runner.RunResult` can be reused across processes and
across sessions.  This module stores one JSON file per cell under a cache
root, keyed by a stable SHA-256 hash of the *complete* cell identity:

* cache schema version and ``repro.__version__``,
* sweep kind (``intra`` / ``inter`` / ``litmus`` / ``gen``), application
  name (for ``gen`` cells, additionally the canonical ScenarioSpec digest),
* every field of the :class:`~repro.core.config.ExperimentConfig`,
* the **resolved** :class:`~repro.common.params.MachineParams` (defaults are
  expanded, so passing ``machine_params=None`` and passing the equivalent
  explicit machine hash identically),
* thread/block geometry (``num_threads`` or ``num_blocks`` ×
  ``cores_per_block``), workload ``scale``, and the ``verify`` flag,
* the digest of the armed fault plan (``None`` for fault-free runs),
* any extra runner keyword arguments (by repr).

Changing any of those fields — or bumping the package version — invalidates
the cached cell.  The root directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-sweeps``.

Entries are written atomically (tmp file + ``fsync`` + rename), so
concurrent sweep workers racing on the same cell are safe — last writer
wins with identical bytes — and a crash (even ``kill -9``) mid-write can
never leave a truncated entry under the final path.

Every entry embeds a SHA-256 checksum of its own payload
(:func:`payload_digest`), verified on every load.  A corrupt entry — a
truncated file, flipped bits, a bad JSON edit — is **never served**: it is
moved to ``<root>/quarantine/`` (forensics, not silent deletion), counted
in :attr:`ResultCache.corrupt_detected`, and reported as a miss, so the
sweep engine recomputes and rewrites a healthy entry on the same key.
``repro cache stats|verify|gc`` exposes the same machinery from the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import TYPE_CHECKING

from repro import __version__
from repro.common.params import inter_block_machine, intra_block_machine
from repro.eval.runner import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel → cache)
    from repro.eval.parallel import SweepCell

#: Bump when the on-disk payload layout changes; invalidates old entries.
#: 2: litmus cells, fault_plan digest, MEB/IEB counters in MachineStats.
#: 3: embedded sha256 payload checksum, verified on every load.
#: 4: memory-model axis (effective model id in the key) and the per-model
#:    degradation counters in MachineStats.
CACHE_SCHEMA = 4


class CacheIntegrityError(ValueError):
    """A cache entry that is present but unusable (truncated, tampered)."""


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path.home() / ".cache" / "repro-sweeps"


def describe_cell(cell: "SweepCell") -> dict:
    """The complete, JSON-safe identity of one sweep cell.

    This is the exact payload the cache key hashes; it is also archived in
    each entry so users can inspect why a cell did (not) hit.
    """
    from repro.models import DEFAULT_MODEL, MODEL_ENV_VAR

    kwargs = dict(cell.kwargs)
    machine = kwargs.pop("machine_params", None)
    plan = kwargs.pop("faults", None)
    # The *effective* memory model, resolved the way Machine resolves it
    # (explicit kwarg, then $REPRO_MODEL, then the default) — unlike the
    # engine, models legitimately produce different statistics, so the key
    # must separate them.  Hardware-coherent configurations always run
    # MESI, so they all key as "hcc" regardless of the requested model.
    model = kwargs.pop("model", None)
    if cell.config.hardware_coherent:
        model = "hcc"
    elif model is None:
        model = os.environ.get(MODEL_ENV_VAR) or DEFAULT_MODEL
    if cell.kind == "intra":
        num_threads = kwargs.pop("num_threads", 16)
        params = machine or intra_block_machine(num_threads)
        geometry: dict = {"num_threads": num_threads}
    elif cell.kind == "inter":
        num_blocks = kwargs.pop("num_blocks", 4)
        cores_per_block = kwargs.pop("cores_per_block", 8)
        params = machine or inter_block_machine(num_blocks, cores_per_block)
        geometry = {"num_blocks": num_blocks, "cores_per_block": cores_per_block}
    elif cell.kind == "litmus":
        from repro.workloads.litmus import LITMUS, machine_params

        kernel = LITMUS[cell.app]
        params = machine or machine_params(kernel)
        geometry = {"model": kernel.model, "num_threads": kernel.threads}
    elif cell.kind == "gen":
        from repro.workloads.gen import gen_machine_params

        spec = kwargs.pop("spec")
        params = machine or gen_machine_params(spec)
        # The canonical spec digest covers every generator parameter, so
        # two cells collide exactly when they run the same scenario.
        geometry = {
            "pattern": spec.pattern,
            "num_threads": spec.threads,
            "scenario": spec.digest(),
        }
    else:
        raise ValueError(f"unknown sweep kind {cell.kind!r}")
    return {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "kind": cell.kind,
        "app": cell.app,
        "config": dataclasses.asdict(cell.config),
        "machine": dataclasses.asdict(params),
        "geometry": geometry,
        "memory_model": model,
        "scale": kwargs.pop("scale", 1.0),
        "verify": kwargs.pop("verify", True),
        # The armed fault plan changes every timing statistic, so its digest
        # (which covers the plan seed and every spec) is part of the key.
        "fault_plan": plan.digest() if plan is not None else None,
        "extra": {k: repr(v) for k, v in sorted(kwargs.items())},
    }


def cell_key(cell: "SweepCell") -> str:
    """Stable SHA-256 hex key of a sweep cell's full identity."""
    blob = json.dumps(
        describe_cell(cell), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_digest(doc: dict) -> str:
    """SHA-256 hex digest of an entry document, excluding its own checksum.

    The digest covers the canonical JSON form of every field except
    ``sha256`` itself, so an entry can carry its checksum inline and still
    be verified by recomputing over what remains.
    """
    body = {k: v for k, v in doc.items() if k != "sha256"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk result store: ``<root>/<key[:2]>/<key>.json`` per cell.

    Integrity discipline: every entry is written atomically (tmp +
    ``fsync`` + ``os.replace``) with an embedded payload checksum, and
    every load re-verifies that checksum.  Entries that fail — truncated,
    bit-flipped, hand-mangled — are quarantined and reported as misses, so
    the caller recomputes and the next :meth:`put` heals the slot.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt_detected = 0
        self.quarantined = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        """Where corrupt entries are moved (``<root>/quarantine``)."""
        return self.root / "quarantine"

    def _load_verified(self, path: pathlib.Path) -> dict:
        """Parse *path* and verify its embedded checksum.

        Raises :class:`OSError` when the file is absent/unreadable and
        :class:`CacheIntegrityError` when it is present but unusable.
        """
        raw = path.read_text()
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise CacheIntegrityError(f"unparseable JSON: {exc}") from None
        if not isinstance(doc, dict) or "result" not in doc:
            raise CacheIntegrityError("entry is not a result document")
        stored = doc.get("sha256")
        if stored is None:
            raise CacheIntegrityError("entry carries no checksum")
        if stored != payload_digest(doc):
            raise CacheIntegrityError("payload checksum mismatch")
        return doc

    def quarantine(self, path: pathlib.Path, reason: str = "") -> pathlib.Path:
        """Move a corrupt entry aside (never serve it, never hide it).

        The file lands in :attr:`quarantine_dir` with a ``.corrupt``
        suffix (plus a counter when the name collides), so operators can
        inspect what went wrong; ``repro cache gc`` reclaims the space.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / f"{path.name}.corrupt"
        n = 0
        while dest.exists():
            n += 1
            dest = self.quarantine_dir / f"{path.name}.corrupt.{n}"
        try:
            os.replace(path, dest)
        except OSError:
            # Cross-device or permission trouble: deletion still guarantees
            # the corrupt bytes are never served again.
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1
        if reason:
            try:
                dest.with_suffix(dest.suffix + ".reason").write_text(
                    reason + "\n"
                )
            except OSError:  # pragma: no cover - forensics are best-effort
                pass
        return dest

    def get(self, cell: "SweepCell") -> RunResult | None:
        """Rehydrated result for *cell*, or None.

        A missing entry is a plain miss.  A *corrupt* entry (truncation,
        checksum mismatch, undecodable result) is quarantined, counted in
        :attr:`corrupt_detected`, and then reported as a miss — the
        self-healing path: the caller recomputes, :meth:`put` rewrites.
        """
        path = self._path(cell_key(cell))
        try:
            doc = self._load_verified(path)
            result = RunResult.from_dict(doc["result"])
        except OSError:
            self.misses += 1
            return None
        except (CacheIntegrityError, ValueError, KeyError, TypeError) as exc:
            self.corrupt_detected += 1
            self.quarantine(path, reason=str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cell: "SweepCell", result: RunResult) -> pathlib.Path:
        """Persist *result* for *cell* atomically; return the entry path.

        The entry is staged in a temp file, flushed and ``fsync``'d, then
        renamed over the final path — a crash at any instant leaves either
        the old entry or the new one, never a torn file.
        """
        key = cell_key(cell)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "cell": describe_cell(cell),
            "result": result.to_dict(),
        }
        payload["sha256"] = payload_digest(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> list[pathlib.Path]:
        """Paths of all cached cells under the root (quarantine excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.glob("*/*.json")
            if p.parent.name != "quarantine"
        )

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every cached entry; return how many were removed."""
        n = 0
        for path in self.entries():
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    # -- maintenance (the `repro cache` subcommand) ---------------------------

    def verify(self, repair: bool = True) -> dict:
        """Integrity-check every entry; optionally quarantine the bad ones.

        Classifies each entry as ``ok`` (checksum verifies and the schema
        is current), ``stale`` (healthy bytes from an older
        :data:`CACHE_SCHEMA` / package version — dead weight, since its
        key can no longer be generated), or ``corrupt`` (truncated, bit
        flipped, checksum missing/mismatched, filename/key disagreement).
        With ``repair=True`` corrupt entries are quarantined on the spot.
        Returns a JSON-safe report.
        """
        ok, stale, corrupt = [], [], []
        for path in self.entries():
            try:
                doc = self._load_verified(path)
                if doc.get("key") != path.stem:
                    raise CacheIntegrityError("entry key != filename")
                cell = doc.get("cell", {})
                if (
                    cell.get("schema") == CACHE_SCHEMA
                    and cell.get("version") == __version__
                ):
                    ok.append(path)
                else:
                    stale.append(path)
            except (CacheIntegrityError, ValueError, KeyError, TypeError) as exc:
                corrupt.append(path)
                self.corrupt_detected += 1
                if repair:
                    self.quarantine(path, reason=str(exc))
        return {
            "checked": len(ok) + len(stale) + len(corrupt),
            "ok": len(ok),
            "stale": len(stale),
            "corrupt": len(corrupt),
            "corrupt_paths": [str(p) for p in corrupt],
            "repaired": len(corrupt) if repair else 0,
        }

    def gc(self) -> dict:
        """Reclaim dead weight: stale-schema entries + the quarantine dir.

        Live current-schema entries are never touched.  Returns the
        removal counts.
        """
        report = self.verify(repair=True)
        stale_removed = 0
        for path in self.entries():
            try:
                doc = self._load_verified(path)
            except (CacheIntegrityError, ValueError, OSError):
                continue  # verify() already quarantined what it could
            cell = doc.get("cell", {})
            if (
                cell.get("schema") != CACHE_SCHEMA
                or cell.get("version") != __version__
            ):
                try:
                    path.unlink()
                    stale_removed += 1
                except OSError:
                    pass
        quarantine_removed = 0
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                try:
                    path.unlink()
                    quarantine_removed += 1
                except OSError:
                    pass
        return {
            "stale_removed": stale_removed,
            "quarantine_removed": quarantine_removed,
            "corrupt_quarantined": report["corrupt"],
            "kept": len(self.entries()),
        }

    def stats(self) -> dict:
        """JSON-safe summary of the store: entry counts, bytes, schemas."""
        entries = self.entries()
        by_schema: dict[str, int] = {}
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
                doc = json.loads(path.read_text())
                tag = str(doc.get("cell", {}).get("schema", "?"))
            except (OSError, ValueError):
                tag = "unreadable"
            by_schema[tag] = by_schema.get(tag, 0) + 1
        quarantine = (
            sorted(self.quarantine_dir.iterdir())
            if self.quarantine_dir.is_dir()
            else []
        )
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "entries": len(entries),
            "bytes": total_bytes,
            "by_schema": dict(sorted(by_schema.items())),
            "quarantined_files": len(
                [p for p in quarantine if not p.name.endswith(".reason")]
            ),
        }

    def counters(self) -> dict:
        """The in-memory session counters (hit/miss/corrupt/quarantine)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_detected": self.corrupt_detected,
            "quarantined": self.quarantined,
        }
