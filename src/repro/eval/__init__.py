"""Evaluation harness: runners, storage model, and figure/table renderers."""

from repro.eval.runner import (
    RunResult,
    normalized_exec,
    run_inter,
    run_intra,
    stall_fractions,
    sweep_inter,
    sweep_intra,
)
from repro.eval.storage import StorageReport, storage_report

__all__ = [
    "RunResult",
    "StorageReport",
    "normalized_exec",
    "run_inter",
    "run_intra",
    "stall_fractions",
    "storage_report",
    "sweep_inter",
    "sweep_intra",
]
