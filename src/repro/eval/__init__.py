"""Evaluation harness: runners, storage model, and figure/table renderers."""

from repro.eval.cache import ResultCache, cell_key, default_cache_dir
from repro.eval.parallel import SweepCell, SweepExecutor, SweepStats, sweep_matrix
from repro.eval.runner import (
    RunResult,
    normalized_exec,
    run_inter,
    run_intra,
    stall_fractions,
    sweep_inter,
    sweep_intra,
)
from repro.eval.storage import StorageReport, storage_report

__all__ = [
    "ResultCache",
    "RunResult",
    "StorageReport",
    "SweepCell",
    "SweepExecutor",
    "SweepStats",
    "cell_key",
    "default_cache_dir",
    "normalized_exec",
    "run_inter",
    "run_intra",
    "stall_fractions",
    "storage_report",
    "sweep_inter",
    "sweep_intra",
    "sweep_matrix",
]
