"""2D mesh interconnect model (Table III: 4 cycles/hop, 128-bit links).

Tiles are laid out row-major on the smallest square that fits all cores; each
tile hosts one core and one L2 bank.  L3 banks and the off-chip memory
controllers sit at the four chip corners.  Latency between tiles is Manhattan
distance times the per-hop cost; traffic is counted in 128-bit flits with the
header riding the first flit.

Contention is not modeled — the paper's evaluation attributes differences to
event counts and hierarchy levels, not link occupancy (DESIGN.md §2).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.params import MachineParams, MeshParams


class Mesh:
    """Topology and latency calculator for one chip."""

    def __init__(self, machine: MachineParams) -> None:
        self.machine = machine
        self.params: MeshParams = machine.mesh
        self.dim = machine.mesh_dim
        if self.dim < 1:
            raise ConfigError("mesh must have at least one tile")
        corners = [
            (0, 0),
            (0, self.dim - 1),
            (self.dim - 1, 0),
            (self.dim - 1, self.dim - 1),
        ]
        self._corner_tiles = corners
        self._l3_tiles = [
            corners[i % len(corners)] for i in range(machine.num_l3_banks)
        ]
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None
        # Geometry is static, so all tile coordinates and fault-free
        # latencies are precomputed.  The tables hold exactly what the
        # formula-based helpers below produce with no injector armed; the
        # helpers consult them only in that case, so armed runs still take
        # the hooked path (NoC jitter applies per message, not per table).
        self._tiles = [divmod(c, self.dim) for c in range(machine.num_cores)]
        cph = self.params.cycles_per_hop
        self._core_l2_lat = [
            [self._hops(a, b) * cph for b in self._tiles] for a in self._tiles
        ]
        self._core_l3_lat = [
            [self._hops(a, b) * cph for b in self._l3_tiles]
            for a in self._tiles
        ]
        self._nearest_corner = {
            tile: min(corners, key=lambda t: self._hops(tile, t))
            for tile in set(self._tiles)
        }

    @staticmethod
    def _hops(a: tuple[int, int], b: tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    # -- tile coordinates ---------------------------------------------------

    def core_tile(self, core_id: int) -> tuple[int, int]:
        if not 0 <= core_id < self.machine.num_cores:
            raise ConfigError(f"core {core_id} out of range")
        return self._tiles[core_id]

    def l2_bank_tile(self, bank: int) -> tuple[int, int]:
        """L2 banks are co-located with cores (one bank per core)."""
        return self.core_tile(bank)

    def l3_bank_tile(self, bank: int) -> tuple[int, int]:
        if not 0 <= bank < len(self._l3_tiles):
            raise ConfigError(f"L3 bank {bank} out of range")
        return self._l3_tiles[bank]

    def mem_controller_tile(self, which: int = 0) -> tuple[int, int]:
        """Off-chip memory attaches at each chip corner."""
        return self._corner_tiles[which % 4]

    def nearest_mem_tile(self, from_tile: tuple[int, int]) -> tuple[int, int]:
        corner = self._nearest_corner.get(from_tile)
        if corner is not None:
            return corner
        return min(self._corner_tiles, key=lambda t: self._hops(from_tile, t))

    # -- latency ------------------------------------------------------------

    def hops_between(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def latency(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """One-way network latency in cycles between two tiles."""
        hops = self.hops_between(a, b)
        lat = hops * self.params.cycles_per_hop
        if self.faults is not None and hops:
            # Same-tile messages traverse no link, so only hop-crossing
            # messages are jitter/link-down opportunities.
            lat += self.faults.noc_delay(hops, self.params.cycles_per_hop)
        return lat

    def core_to_l2(self, core_id: int, bank: int) -> int:
        if self.faults is None:
            return self._core_l2_lat[core_id][bank]
        return self.latency(self.core_tile(core_id), self.l2_bank_tile(bank))

    def core_to_l3(self, core_id: int, bank: int) -> int:
        if self.faults is None:
            return self._core_l3_lat[core_id][bank]
        return self.latency(self.core_tile(core_id), self.l3_bank_tile(bank))

    def l2_to_l3(self, l2_bank: int, l3_bank: int) -> int:
        return self.latency(self.l2_bank_tile(l2_bank), self.l3_bank_tile(l3_bank))

    def core_to_core(self, a: int, b: int) -> int:
        return self.latency(self.core_tile(a), self.core_tile(b))

    def avg_hops(self) -> float:
        """Mean hop count between distinct tiles (used by calibration)."""
        tiles = [self.core_tile(c) for c in range(self.machine.num_cores)]
        total = n = 0
        for i, a in enumerate(tiles):
            for b in tiles[i + 1 :]:
                total += self.hops_between(a, b)
                n += 1
        return total / n if n else 0.0

    # -- traffic ------------------------------------------------------------

    def flits(self, payload_bytes: int) -> int:
        return self.params.flits(payload_bytes)

    def control_flits(self) -> int:
        """A control message (request, ack, invalidation) is one flit."""
        return 1

    def data_flits(self, payload_bytes: int) -> int:
        """Data message: header flit plus payload flits."""
        link = self.params.link_bytes
        return 1 + (payload_bytes + link - 1) // link
