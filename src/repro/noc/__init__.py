"""Subpackage of repro."""
