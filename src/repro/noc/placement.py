"""Thread-to-core placement and block membership.

Section V fixes two properties the hardware relies on: one-to-one
thread-to-core mapping, and no migration after spawn.  The runtime fills the
per-L2 ThreadMap from a :class:`Placement`; tests permute placements to show
that level-adaptively annotated programs run correctly under any of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.params import MachineParams


@dataclass(frozen=True)
class Placement:
    """Immutable thread→core assignment for one run."""

    machine: MachineParams
    thread_to_core: tuple[int, ...]

    def __post_init__(self) -> None:
        cores = self.thread_to_core
        if len(set(cores)) != len(cores):
            raise ConfigError("placement must be one-to-one (no core reuse)")
        for c in cores:
            if not 0 <= c < self.machine.num_cores:
                raise ConfigError(f"core {c} out of range")

    @property
    def num_threads(self) -> int:
        return len(self.thread_to_core)

    def core_of(self, tid: int) -> int:
        return self.thread_to_core[tid]

    def thread_of(self, core: int) -> int | None:
        try:
            return self.thread_to_core.index(core)
        except ValueError:
            return None

    def block_of_core(self, core: int) -> int:
        return core // self.machine.cores_per_block

    def block_of_thread(self, tid: int) -> int:
        return self.block_of_core(self.core_of(tid))

    def same_block(self, tid_a: int, tid_b: int) -> bool:
        return self.block_of_thread(tid_a) == self.block_of_thread(tid_b)

    def threads_in_block(self, block: int) -> list[int]:
        return [
            t
            for t, c in enumerate(self.thread_to_core)
            if self.block_of_core(c) == block
        ]


def identity_placement(machine: MachineParams, num_threads: int) -> Placement:
    """Thread *i* on core *i* — the default, block-contiguous mapping."""
    if num_threads > machine.num_cores:
        raise ConfigError(
            f"{num_threads} threads exceed {machine.num_cores} cores"
        )
    return Placement(machine, tuple(range(num_threads)))


def round_robin_placement(machine: MachineParams, num_threads: int) -> Placement:
    """Scatter consecutive threads across blocks (worst case for locality)."""
    if num_threads > machine.num_cores:
        raise ConfigError(
            f"{num_threads} threads exceed {machine.num_cores} cores"
        )
    cpb = machine.cores_per_block
    nb = machine.num_blocks
    cores = []
    for t in range(num_threads):
        block = t % nb
        slot = t // nb
        if slot >= cpb:
            raise ConfigError("round-robin placement overflowed a block")
        cores.append(block * cpb + slot)
    return Placement(machine, tuple(cores))
