"""Subpackage of repro."""
