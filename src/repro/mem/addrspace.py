"""Shared address-space allocator and array views.

Workloads allocate named arrays; every element occupies one word (values are
Python objects — the functional simulator tracks words, not bytes).  The
allocator hands out line-aligned regions by default, and arrays support
optional per-row line padding.  That padding is how the SPLASH-2 "contiguous"
(padded, false-sharing-free) versus "non-contiguous" (packed) variants of LU
and Ocean are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import AddressError
from repro.common.params import WORD_BYTES


@dataclass(frozen=True)
class Allocation:
    """A named, contiguous byte range in the shared address space."""

    name: str
    base: int  # byte address
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def contains(self, byte_addr: int) -> bool:
        return self.base <= byte_addr < self.end


class AddressSpace:
    """Bump allocator over a single flat shared address space."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._next = line_bytes  # keep address 0 unmapped to catch bugs
        self._allocs: dict[str, Allocation] = {}

    def alloc(self, name: str, nwords: int, *, align_line: bool = True) -> Allocation:
        """Reserve *nwords* words under *name*; line-aligned by default."""
        if name in self._allocs:
            raise AddressError(f"allocation {name!r} already exists")
        if nwords <= 0:
            raise AddressError(f"allocation {name!r} must have >= 1 word")
        if align_line:
            rem = self._next % self.line_bytes
            if rem:
                self._next += self.line_bytes - rem
        base = self._next
        nbytes = nwords * WORD_BYTES
        self._next += nbytes
        alloc = Allocation(name, base, nbytes)
        self._allocs[name] = alloc
        return alloc

    def lookup(self, name: str) -> Allocation:
        try:
            return self._allocs[name]
        except KeyError:
            raise AddressError(f"no allocation named {name!r}") from None

    def owner_of(self, byte_addr: int) -> Allocation | None:
        for alloc in self._allocs.values():
            if alloc.contains(byte_addr):
                return alloc
        return None

    @property
    def used_bytes(self) -> int:
        return self._next


class SharedArray:
    """A 1-D or 2-D word-granular array view over an allocation.

    2-D arrays may pad each row to a line boundary (``pad_rows=True``), which
    removes inter-row false sharing — the "contiguous" SPLASH-2 layout.
    """

    def __init__(
        self,
        space: AddressSpace,
        name: str,
        shape: int | tuple[int, int],
        *,
        pad_rows: bool = False,
    ) -> None:
        if isinstance(shape, int):
            shape = (shape,)
        if len(shape) not in (1, 2) or any(s <= 0 for s in shape):
            raise AddressError(f"unsupported array shape {shape!r}")
        self.name = name
        self.shape = shape
        words_per_line = space.line_bytes // WORD_BYTES
        if len(shape) == 2 and pad_rows:
            row_words = -(-shape[1] // words_per_line) * words_per_line
        else:
            row_words = shape[1] if len(shape) == 2 else 0
        self._row_words = row_words
        total = shape[0] * row_words if len(shape) == 2 else shape[0]
        self.alloc = space.alloc(name, total)
        self._base = self.alloc.base

    def __len__(self) -> int:
        return self.shape[0]

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def addr(self, i: int, j: int | None = None) -> int:
        """Byte address of element (i) or (i, j)."""
        shape = self.shape
        if j is None:
            if len(shape) != 1:
                raise AddressError(f"{self.name} is 2-D; need two indices")
            if 0 <= i < shape[0]:
                return self._base + i * WORD_BYTES
            raise AddressError(f"{self.name}[{i}] out of range {shape}")
        if len(shape) == 1:
            raise AddressError(f"{self.name} is 1-D")
        if 0 <= i < shape[0] and 0 <= j < shape[1]:
            return self._base + (i * self._row_words + j) * WORD_BYTES
        raise AddressError(f"{self.name}[{i},{j}] out of range {shape}")

    def row_range(self, i: int) -> tuple[int, int]:
        """(byte address, byte length) of logical row *i* (2-D only)."""
        if len(self.shape) != 2:
            raise AddressError(f"{self.name} is 1-D")
        return self.addr(i, 0), self.shape[1] * WORD_BYTES

    def range(self, i: int = 0, n: int | None = None) -> tuple[int, int]:
        """(byte address, byte length) covering elements [i, i+n) (1-D)."""
        if len(self.shape) != 1:
            raise AddressError(f"{self.name} is 2-D; use row_range")
        if n is None:
            n = self.shape[0] - i
        if n < 0 or i < 0 or i + n > self.shape[0]:
            raise AddressError(f"{self.name} range [{i}, {i}+{n}) out of bounds")
        return self.alloc.base + i * WORD_BYTES, n * WORD_BYTES

    def element_addrs(self) -> Iterator[int]:
        if len(self.shape) == 1:
            for i in range(self.shape[0]):
                yield self.addr(i)
        else:
            for i in range(self.shape[0]):
                for j in range(self.shape[1]):
                    yield self.addr(i, j)
