"""Set-associative cache array with true-LRU replacement.

This models the tag/data arrays shared by every cache in the hierarchy (L1,
L2 banks, L3 banks).  It is purely structural: coherence policy (what happens
on a miss, when to write back) lives in :mod:`repro.coherence`.

LRU is realized with Python dict insertion order: a hit on a non-MRU line
pops and reinserts it (a hit on the line that is already MRU is left in
place), eviction removes the oldest entry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.common.params import CacheParams
from repro.mem.line import CacheLine


class Cache:
    """One cache (or one bank of a banked cache)."""

    __slots__ = ("params", "name", "_sets", "_set_mask", "_ways")

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(params.num_sets)
        ]
        # CacheParams guarantees num_sets is a power of two, so set indexing
        # is a mask rather than a modulo (hot path: every lookup/insert).
        self._set_mask = params.num_sets - 1
        # Physical way of each resident line.  A line keeps its way from
        # insertion to eviction — LRU touches reorder the recency dict, not
        # the tag array — so line IDs are stable, as in hardware.
        self._ways: dict[int, int] = {}

    # -- geometry -----------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def line_id(self, line_addr: int) -> int:
        """Position of a resident line in the tag array: set*assoc + way.

        Sized by the MEB, whose entries are line IDs (9 bits for a 32 KB /
        64 B-line cache) rather than full addresses.  The ID is stable for
        the whole residency of the line: LRU touches do not move it.
        """
        try:
            way = self._ways[line_addr]
        except KeyError:
            raise KeyError(
                f"line {line_addr:#x} not resident in {self.name}"
            ) from None
        return self.set_index(line_addr) * self.params.assoc + way

    # -- lookup / insert ----------------------------------------------------

    def lookup(self, line_addr: int, *, touch: bool = True) -> CacheLine | None:
        """Return the resident line or None.  ``touch`` updates LRU order."""
        s = self._sets[line_addr & self._set_mask]
        line = s.get(line_addr)
        if line is not None and touch and next(reversed(s)) != line_addr:
            del s[line_addr]
            s[line_addr] = line
        return line

    def insert(self, line: CacheLine) -> CacheLine | None:
        """Insert *line* as MRU; return the evicted victim, if any.

        The caller owns victim handling (dirty victims must be written back
        by the coherence policy before their state is dropped).
        """
        s = self._sets[line.line_addr & self._set_mask]
        victim: CacheLine | None = None
        if line.line_addr in s:
            del s[line.line_addr]  # replace in place: the way is unchanged
        elif len(s) >= self.params.assoc:
            oldest = next(iter(s))
            victim = s.pop(oldest)
            self._ways[line.line_addr] = self._ways.pop(oldest)
        else:
            used = {self._ways[la] for la in s}
            self._ways[line.line_addr] = next(
                w for w in range(self.params.assoc) if w not in used
            )
        s[line.line_addr] = line
        return victim

    def remove(self, line_addr: int) -> CacheLine | None:
        """Invalidate (drop) a line; return it if it was resident."""
        s = self._sets[line_addr & self._set_mask]
        line = s.pop(line_addr, None)
        if line is not None:
            del self._ways[line_addr]
        return line

    # -- traversal ----------------------------------------------------------

    def lines(self) -> Iterator[CacheLine]:
        """All resident lines (tag-array walk order)."""
        for s in self._sets:
            yield from s.values()

    def resident_line_addrs(self) -> list[int]:
        return [ln.line_addr for ln in self.lines()]

    def dirty_lines(self) -> list[CacheLine]:
        return [ln for ln in self.lines() if ln.dirty]

    def clear(self, *, on_evict: Callable[[CacheLine], Any] | None = None) -> int:
        """Drop every resident line, optionally visiting each; return count."""
        n = 0
        for s in self._sets:
            if on_evict is not None:
                for line in s.values():
                    on_evict(line)
            n += len(s)
            s.clear()
        self._ways.clear()
        return n

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
