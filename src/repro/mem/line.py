"""Cache-line state.

Section III-B: lines carry a single Valid bit plus *per-word* Dirty bits so a
WB transfers only dirty words and two cores updating different words of the
same line never clobber each other.  The same class carries a MESI state
field for the hardware-coherent baseline; incoherent caches leave it at
``MESIState.NA``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class MESIState(str, Enum):
    """Stable states of the directory MESI baseline, plus NA for incoherent."""

    M = "M"
    E = "E"
    S = "S"
    I = "I"  # noqa: E741 - canonical protocol-state name
    NA = "NA"


@dataclass(slots=True)
class CacheLine:
    """One resident cache line.

    ``data`` holds one Python value per word (functional simulation: caches
    carry real values, so stale reads genuinely return stale data).
    ``dirty_mask`` has bit *i* set when word *i* has been written locally and
    not yet written back.

    Slotted: simulations allocate one of these per fill, so the per-instance
    dict is measurable overhead at sweep scale.
    """

    line_addr: int  # address of the line in units of lines (addr // line_bytes)
    data: list[Any]
    dirty_mask: int = 0
    state: MESIState = MESIState.NA

    def word_count(self) -> int:
        return len(self.data)

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    def dirty_words(self) -> list[int]:
        """Indices of dirty words within the line."""
        mask = self.dirty_mask
        out: list[int] = []
        i = 0
        while mask:
            if mask & 1:
                out.append(i)
            mask >>= 1
            i += 1
        return out

    def num_dirty_words(self) -> int:
        return self.dirty_mask.bit_count()

    def mark_dirty(self, word: int) -> None:
        if not 0 <= word < len(self.data):
            raise IndexError(f"word {word} outside line of {len(self.data)} words")
        self.dirty_mask |= 1 << word

    def is_word_dirty(self, word: int) -> bool:
        return bool(self.dirty_mask >> word & 1)

    def clean(self) -> None:
        """Clear all dirty bits (the line stays valid — post-WB state)."""
        self.dirty_mask = 0
