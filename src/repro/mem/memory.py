"""Backing main memory: the functional word store.

Memory holds one Python value per word address.  Unwritten words read as 0,
matching zero-initialized allocations.  The store is sparse (dict-backed) so
a large address space costs nothing until touched.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.common.params import WORD_BYTES


class MainMemory:
    """Sparse word-addressed value store."""

    def __init__(self) -> None:
        self._words: dict[int, Any] = {}
        # Optional fault injector (repro.faults); None = no hook overhead.
        self.faults = None

    def read_word(self, word_addr: int) -> Any:
        return self._words.get(word_addr, 0)

    def write_word(self, word_addr: int, value: Any) -> None:
        self._words[word_addr] = value

    def read_line(self, line_addr: int, words_per_line: int) -> list[Any]:
        base = line_addr * words_per_line
        get = self._words.get
        return [get(base + i, 0) for i in range(words_per_line)]

    def write_line_words(
        self, line_addr: int, words_per_line: int, data: list[Any], mask: int
    ) -> None:
        """Merge the words of *data* selected by *mask* into memory."""
        if self.faults is not None:
            self.faults.mem_writeback()
        base = line_addr * words_per_line
        w = self._words
        i = 0
        while mask:
            if mask & 1:
                w[base + i] = data[i]
            mask >>= 1
            i += 1

    def image(self) -> dict[int, Any]:
        """Normalized final-memory image for value-equality comparison.

        Words whose value equals 0 are dropped (an unwritten word reads as
        0, so presence of an explicit zero is not observable), and numpy
        scalars are unwrapped to plain Python values — two runs that read
        back identical values produce identical images, regardless of
        which protocol or timing produced them.
        """
        out: dict[int, Any] = {}
        for addr, value in self._words.items():
            v = value.item() if hasattr(value, "item") else value
            if v != 0:
                out[addr] = v
        return out

    @staticmethod
    def word_addr(byte_addr: int) -> int:
        return byte_addr // WORD_BYTES

    @property
    def touched_words(self) -> int:
        return len(self._words)


def image_digest(image: dict[int, Any]) -> str:
    """Stable SHA-256 hex digest of a normalized memory image.

    The chaos runner's value invariant: a faulted run and the fault-free
    HCC reference must produce the same digest (faults change timing,
    never values).  ``repr`` round-trips ints and floats exactly, so equal
    digests mean word-for-word equal values.
    """
    blob = json.dumps(
        {str(addr): repr(value) for addr, value in sorted(image.items())},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()
