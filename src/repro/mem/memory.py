"""Backing main memory: the functional word store.

Memory holds one Python value per word address.  Unwritten words read as 0,
matching zero-initialized allocations.  The store is sparse (dict-backed) so
a large address space costs nothing until touched.
"""

from __future__ import annotations

from typing import Any

from repro.common.params import WORD_BYTES


class MainMemory:
    """Sparse word-addressed value store."""

    def __init__(self) -> None:
        self._words: dict[int, Any] = {}

    def read_word(self, word_addr: int) -> Any:
        return self._words.get(word_addr, 0)

    def write_word(self, word_addr: int, value: Any) -> None:
        self._words[word_addr] = value

    def read_line(self, line_addr: int, words_per_line: int) -> list[Any]:
        base = line_addr * words_per_line
        get = self._words.get
        return [get(base + i, 0) for i in range(words_per_line)]

    def write_line_words(
        self, line_addr: int, words_per_line: int, data: list[Any], mask: int
    ) -> None:
        """Merge the words of *data* selected by *mask* into memory."""
        base = line_addr * words_per_line
        w = self._words
        i = 0
        while mask:
            if mask & 1:
                w[base + i] = data[i]
            mask >>= 1
            i += 1

    @staticmethod
    def word_addr(byte_addr: int) -> int:
        return byte_addr // WORD_BYTES

    @property
    def touched_words(self) -> int:
        return len(self._words)
