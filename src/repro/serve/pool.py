"""Bounded async worker pool executing job units over the sweep engine.

The pool is the server's execution backend: ``workers`` asyncio worker
tasks pull :class:`WorkItem` entries off one FIFO queue and run each
unit on a shared thread pool.  Cell units go through a fresh single-cell
:class:`~repro.eval.parallel.SweepExecutor` (``jobs=1``, so the executor
is confined to its thread) that fronts the server-wide shared
:class:`~repro.eval.cache.ResultCache` — identical cells from any number
of clients simulate once and rehydrate everywhere else, and per-unit
hit/miss counters flow back to the job so every response can say how much
work the cache absorbed.

Resilience mirrors the sweep engine's per-cell timeout/retry discipline:
a unit that raises (or exceeds ``timeout`` seconds) is retried up to
``retries`` times before its failure is reported; the simulator is
deterministic, so a retry can only cost time, never change a result.  A
seeded :class:`WorkerFaultPlan` can inject worker crashes or stalls in
front of real units — the serve-layer analogue of :mod:`repro.faults` —
which is how the tests prove that retry keeps served results bit-identical
under a flaky worker pool.

Thread-interruption caveat: Python threads cannot be killed, so a timed-out
unit's thread keeps running to completion in the background; the pool
simply stops waiting for it, charges the retry, and re-submits.  This
bounds *observed* latency, not worst-case CPU.
"""

from __future__ import annotations

import asyncio
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, make_rng
from repro.eval.cache import ResultCache
from repro.eval.parallel import SweepExecutor
from repro.serve.jobs import Unit

#: Queue sentinel that tells one worker task to exit.
_STOP = object()


class WorkerCrash(RuntimeError):
    """Injected worker failure (see :class:`WorkerFaultPlan`)."""


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Seeded serve-layer fault injection: crash or stall worker attempts.

    ``rate`` is the per-attempt firing probability drawn from one
    deterministic stream (:func:`repro.common.rng.make_rng` keyed by
    ``seed``), so a given (plan, submission order) reproduces exactly.
    ``kind`` selects the failure mode: ``crash`` raises
    :class:`WorkerCrash` before the unit runs; ``stall`` sleeps
    ``stall_s`` seconds first (long enough to trip a configured unit
    timeout in tests).
    """

    rate: float = 0.0
    seed: int = DEFAULT_SEED
    kind: str = "crash"
    stall_s: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1] (got {self.rate})")
        if self.kind not in ("crash", "stall"):
            raise ConfigError(f"fault kind must be crash|stall (got {self.kind})")


@dataclass
class UnitOutcome:
    """Everything the pool learned from running (or skipping) one unit."""

    result: Any = None
    error: str | None = None
    skipped: bool = False
    reason: str | None = None
    attempts: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0

    @property
    def ok(self) -> bool:
        """True when the unit produced a result."""
        return not self.skipped and self.error is None


@dataclass(frozen=True)
class WorkItem:
    """One queued unit plus the callbacks that wire it back to its job.

    ``should_run`` is consulted at dequeue time — a cancelled or failing
    job's pending units are skipped in O(1), immediately freeing the
    worker slot for other jobs.  ``on_start`` fires when a worker begins
    the unit and ``on_done`` with the final :class:`UnitOutcome`; both run
    on the event-loop thread, so they may touch job state without locks.
    """

    unit: Unit
    should_run: Callable[[], bool]
    on_start: Callable[[], None]
    on_done: Callable[[UnitOutcome], None]


class WorkerPool:
    """``workers`` asyncio pullers over one shared thread pool + cache."""

    def __init__(
        self,
        *,
        workers: int = 4,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        retries: int = 1,
        faults: WorkerFaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1 (got {workers})")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0 (got {retries})")
        self.workers = int(workers)
        self.cache = cache
        self.timeout = timeout
        self.retries = int(retries)
        self.faults = faults
        self._rng = (
            make_rng("serve-worker-faults", faults.seed)
            if faults is not None and faults.rate > 0
            else None
        )
        self._queue: asyncio.Queue = asyncio.Queue()
        self._threads = futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._tasks: list[asyncio.Task] = []
        self.in_flight = 0
        self.units_run = 0
        self.units_failed = 0
        self.retries_used = 0

    # -- queue interface -----------------------------------------------------

    def depth(self) -> int:
        """Units queued but not yet picked up by a worker."""
        return self._queue.qsize()

    def load(self) -> int:
        """Queued plus in-flight units (the backpressure measure)."""
        return self.depth() + self.in_flight

    def put(self, item: WorkItem) -> None:
        """Enqueue one unit (admission control happens before this)."""
        self._queue.put_nowait(item)

    def run_in_thread(self, fn: Callable, *args):
        """Run *fn* on the pool's thread executor; returns an awaitable."""
        return asyncio.get_running_loop().run_in_executor(
            self._threads, fn, *args
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if not self._tasks:
            self._tasks = [
                asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
                for i in range(self.workers)
            ]

    async def stop(self) -> int:
        """Graceful shutdown: skip queued units, drain in-flight ones.

        Queued-but-unstarted units are reported to their jobs as skipped
        (reason ``shutdown``); units already on a worker run to completion
        first (their results are delivered normally).  Returns the number
        of units dropped.
        """
        dropped = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                continue
            dropped += 1
            item.on_done(UnitOutcome(skipped=True, reason="shutdown"))
        for _ in self._tasks:
            self._queue.put_nowait(_STOP)
        if self._tasks:
            await asyncio.gather(*self._tasks)
            self._tasks = []
        self._threads.shutdown(wait=True)
        return dropped

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            if not item.should_run():
                item.on_done(UnitOutcome(skipped=True, reason="cancelled"))
                continue
            self.in_flight += 1
            try:
                item.on_start()
                outcome = await self._run_unit(item.unit)
            finally:
                self.in_flight -= 1
            self.units_run += 1
            if outcome.error is not None:
                self.units_failed += 1
            item.on_done(outcome)

    def _draw_fault(self) -> str | None:
        """Decide (on the loop thread, deterministically) to inject a fault."""
        if self._rng is None or self.faults is None:
            return None
        return self.faults.kind if self._rng.random() < self.faults.rate else None

    async def _run_unit(self, unit: Unit) -> UnitOutcome:
        t0 = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            fault = self._draw_fault()
            try:
                result, hits, misses, simulated = await asyncio.wait_for(
                    self.run_in_thread(self._execute, unit, fault),
                    self.timeout,
                )
                return UnitOutcome(
                    result=result,
                    attempts=attempts,
                    seconds=time.perf_counter() - t0,
                    cache_hits=hits,
                    cache_misses=misses,
                    simulated=simulated,
                )
            except (Exception, asyncio.TimeoutError) as exc:
                if attempts > self.retries:
                    return UnitOutcome(
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts,
                        seconds=time.perf_counter() - t0,
                    )
                self.retries_used += 1

    def _execute(self, unit: Unit, fault: str | None):
        """One attempt, on a worker thread.  Returns (result, hit, miss, sim)."""
        if fault == "crash":
            raise WorkerCrash("injected worker crash")
        if fault == "stall" and self.faults is not None:
            time.sleep(self.faults.stall_s)
        if unit.cell is not None:
            # A fresh jobs=1 executor per unit: in-process (no pickling),
            # confined to this thread (its counters race with nobody), and
            # fronted by the shared on-disk cache (atomic writes make
            # concurrent puts of the same cell safe — last writer wins
            # with identical bytes).
            ex = SweepExecutor(jobs=1, cache=self.cache)
            result = ex.run_cells([unit.cell])[0]
            return (
                result,
                ex.stats.cache_hits,
                ex.stats.cache_misses,
                ex.stats.simulated,
            )
        assert unit.fn is not None
        return unit.fn(), 0, 0, 1
