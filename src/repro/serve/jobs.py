"""Versioned job schema: validate requests and compile them into work units.

A job request is one JSON document::

    {"schema": 1, "kind": "sweep", "client": "alice", "spec": {...}}

``schema`` is the job-schema version (:data:`JOB_SCHEMA`; requests naming a
different version are rejected so clients never silently run under changed
semantics), ``kind`` one of :data:`JOB_KINDS`, ``client`` an optional quota
identity (the ``X-Repro-Client`` header wins when both are present), and
``spec`` the kind-specific parameters documented in ``docs/SERVICE.md``.

:func:`compile_job` validates the document and lowers it to a
:class:`CompiledJob`: an ordered list of :class:`Unit` work items — almost
always :class:`~repro.eval.parallel.SweepCell` cells, exactly the objects
the direct CLI sweeps run, so served results are bit-identical to local
runs by construction — plus a ``finalize`` callable that folds the unit
results into the kind's JSON-safe result document.  Validation failures
raise :class:`JobError` with an HTTP-ish status (400); admission-control
failures (quota, backpressure) are the server's 429s, not this module's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.config import (
    INTER_ADDR_L,
    INTRA_BMI,
    inter_config,
    intra_config,
)
from repro.common.errors import ConfigError
from repro.eval.parallel import SweepCell
from repro.workloads import MODEL_ONE, MODEL_TWO

#: Version of the request document this server understands.  Bump on any
#: incompatible change to the payload layout or the per-kind spec fields;
#: requests carrying another version are rejected with a 400.
JOB_SCHEMA = 1

#: Job kinds the server accepts (each maps to one ``_compile_*`` lowerer).
JOB_KINDS = ("sweep", "gen", "litmus", "chaos", "lint", "fleet")

#: Job lifecycle states (see docs/SERVICE.md).  ``cancelling`` is the
#: transient window between a cancel request and the last in-flight unit
#: draining; the other five are the stable states.
JOB_STATES = (
    "queued", "running", "cancelling", "done", "failed", "cancelled",
)

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Hard per-job unit ceiling — admission control guards the queue, this
#: guards a single request from monopolizing it.
MAX_UNITS = 1024

_SENTINEL = object()


class JobError(ValueError):
    """A job request that fails validation (HTTP 400)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class Unit:
    """One schedulable work item of a job.

    Either a sweep ``cell`` (run through a cached
    :class:`~repro.eval.parallel.SweepExecutor`, the common case) or a
    plain ``fn`` returning a JSON-safe dict (static analysis, which has no
    sweep-cell form).  Exactly one of the two is set.
    """

    label: str
    cell: SweepCell | None = None
    fn: Callable[[], dict] | None = None


@dataclass
class CompiledJob:
    """A validated job lowered to work units plus its result assembler.

    ``finalize`` receives the per-unit results in unit order (RunResult
    for cells, dicts for ``fn`` units) and returns the JSON-safe result
    document; it runs on a worker thread, so CPU-bound assembly (e.g. the
    fleet's lint pass) never blocks the event loop.
    """

    kind: str
    spec: dict
    units: list[Unit]
    finalize: Callable[[list], dict]
    description: str = ""


def _expect(cond: bool, message: str) -> None:
    """Raise a 400 :class:`JobError` unless *cond* holds."""
    if not cond:
        raise JobError(message)


def _get(spec: dict, name: str, default=_SENTINEL, *, types=None):
    """Fetch ``spec[name]`` with a default and an optional type check."""
    value = spec.get(name, default)
    if value is _SENTINEL:
        raise JobError(f"spec.{name} is required")
    if value is not default and types is not None:
        allows_bool = types is bool or (
            isinstance(types, tuple) and bool in types
        )
        if not isinstance(value, types) or (
            isinstance(value, bool) and not allows_bool
        ):
            want = (
                types.__name__
                if isinstance(types, type)
                else "/".join(t.__name__ for t in types)
            )
            raise JobError(
                f"spec.{name} must be {want} (got {type(value).__name__})"
            )
    return value


def _int_in(spec: dict, name: str, default: int, lo: int, hi: int) -> int:
    """An int field clamped-checked to ``[lo, hi]``."""
    value = _get(spec, name, default, types=int)
    _expect(lo <= value <= hi, f"spec.{name} must be in [{lo}, {hi}]")
    return value


def _scale(spec: dict, default: float = 1.0) -> float:
    value = _get(spec, "scale", default, types=(int, float))
    _expect(0.0 < float(value) <= 4.0, "spec.scale must be in (0, 4]")
    return float(value)


def _engine(spec: dict) -> str | None:
    engine = _get(spec, "engine", None, types=str)
    if engine is not None:
        _expect(engine in ("ref", "fast"), "spec.engine must be ref|fast")
    return engine


def _model(spec: dict) -> str | None:
    model = _get(spec, "model", None, types=str)
    if model is not None:
        from repro.models import available_models

        _expect(
            model in available_models(),
            f"spec.model must be one of {'|'.join(available_models())}",
        )
    return model


def _name_list(spec: dict, name: str, *, default=None) -> list[str]:
    values = _get(spec, name, default, types=list)
    if values is None:
        return []
    _expect(
        bool(values) and all(isinstance(v, str) for v in values),
        f"spec.{name} must be a non-empty list of names",
    )
    return list(values)


def _configs(names: Sequence[str], model: str) -> list:
    """Resolve Table II config names; ConfigError becomes a 400."""
    out = []
    for name in names:
        try:
            out.append(
                intra_config(name) if model == "intra" else inter_config(name)
            )
        except ConfigError as exc:
            raise JobError(str(exc)) from None
    return out


# -- per-kind lowerers -------------------------------------------------------


def _compile_sweep(spec: dict) -> CompiledJob:
    """``sweep``: an (apps × configs) matrix, the paper's figure shape."""
    model = _get(spec, "model", "intra", types=str)
    _expect(model in ("intra", "inter"), "spec.model must be intra|inter")
    registry = MODEL_ONE if model == "intra" else MODEL_TWO
    apps = _name_list(spec, "apps")
    for app in apps:
        _expect(app in registry, f"unknown {model} workload {app!r}")
    configs = _configs(_name_list(spec, "configs"), model)
    scale = _scale(spec)
    engine = _engine(spec)
    memory_digest = _get(spec, "memory_digest", False, types=bool)
    kwargs: dict[str, Any] = {"scale": scale}
    if model == "intra":
        kwargs["num_threads"] = _int_in(spec, "num_threads", 16, 1, 64)
    else:
        kwargs["num_blocks"] = _int_in(spec, "num_blocks", 4, 1, 16)
        kwargs["cores_per_block"] = _int_in(spec, "cores_per_block", 8, 1, 16)
    if engine is not None:
        kwargs["engine"] = engine
    if memory_digest:
        kwargs["memory_digest"] = True
    units = [
        Unit(
            f"{model}:{app}/{cfg.name}",
            cell=SweepCell.make(model, app, cfg, **kwargs),
        )
        for app in apps
        for cfg in configs
    ]

    def finalize(results: list) -> dict:
        flat = iter(results)
        return {
            "kind": "sweep",
            "model": model,
            "matrix": {
                app: {cfg.name: next(flat).to_dict() for cfg in configs}
                for app in apps
            },
        }

    return CompiledJob(
        "sweep", spec, units, finalize,
        f"{model} sweep: {len(apps)} app(s) x {len(configs)} config(s)",
    )


def _compile_gen(spec: dict) -> CompiledJob:
    """``gen``: one seeded scenario under one or more intra configs."""
    from repro.common.rng import DEFAULT_SEED
    from repro.workloads.gen import PATTERNS, ScenarioSpec

    pattern = _get(spec, "pattern", types=str)
    _expect(pattern in PATTERNS, f"spec.pattern must be one of {PATTERNS}")
    sspec = ScenarioSpec(
        pattern=pattern,
        seed=_get(spec, "seed", DEFAULT_SEED, types=int),
        threads=_int_in(spec, "threads", 4, 2, 32),
        footprint_lines=_int_in(spec, "footprint_lines", 4, 1, 64),
        rounds=_int_in(spec, "rounds", 2, 1, 16),
        skew=float(_get(spec, "skew", 1.2, types=(int, float))),
    )
    configs = _configs(_name_list(spec, "configs", default=["B+M+I"]), "intra")
    engine = _engine(spec)
    kwargs: dict[str, Any] = {"spec": sspec, "memory_digest": True}
    if engine is not None:
        kwargs["engine"] = engine
    units = [
        Unit(
            f"{sspec.name}/{cfg.name}",
            cell=SweepCell.make("gen", sspec.name, cfg, **kwargs),
        )
        for cfg in configs
    ]

    def finalize(results: list) -> dict:
        digests = {r.memory_digest for r in results}
        return {
            "kind": "gen",
            "scenario": sspec.to_dict(),
            "digest": results[0].memory_digest,
            # Every config must land on the same image: generated programs
            # are coherent by construction (each cell also self-verified
            # against the analytic oracle while running).
            "coherent": len(digests) == 1,
            "cells": {
                cfg.name: r.to_dict() for cfg, r in zip(configs, results)
            },
        }

    return CompiledJob(
        "gen", spec, units, finalize,
        f"scenario {sspec.name} x {len(configs)} config(s)",
    )


def _compile_litmus(spec: dict) -> CompiledJob:
    """``litmus``: registry kernels under their default chaos configs.

    With ``spec.matrix: true``, instead compile the memory-model
    conformance grid (``repro litmus --matrix``): every selected
    (model × kernel × engine) cell plus the hardware-coherent oracle
    cells, folded into the verdict-grid document of
    :mod:`repro.models.matrix`.
    """
    from repro.workloads.litmus import LITMUS

    if _get(spec, "matrix", False, types=bool):
        return _compile_litmus_matrix(spec)
    if _get(spec, "all", False, types=bool):
        kernels = list(LITMUS)
    else:
        kernels = _name_list(spec, "kernels")
    for name in kernels:
        _expect(name in LITMUS, f"unknown litmus kernel {name!r}")
    engine = _engine(spec)
    model = _model(spec)
    units = []
    for name in kernels:
        config = INTER_ADDR_L if LITMUS[name].model == "inter" else INTRA_BMI
        kwargs: dict[str, Any] = {"memory_digest": True}
        if engine is not None:
            kwargs["engine"] = engine
        if model is not None:
            kwargs["model"] = model
        units.append(
            Unit(
                f"litmus:{name}/{config.name}",
                cell=SweepCell.make("litmus", name, config, **kwargs),
            )
        )

    def finalize(results: list) -> dict:
        return {
            "kind": "litmus",
            "kernels": {
                name: r.to_dict() for name, r in zip(kernels, results)
            },
        }

    return CompiledJob(
        "litmus", spec, units, finalize, f"{len(kernels)} litmus kernel(s)"
    )


def _compile_litmus_matrix(spec: dict) -> CompiledJob:
    """``litmus`` + ``matrix: true``: the memory-model verdict grid."""
    from repro.models.matrix import (
        DEFAULT_ENGINES,
        DEFAULT_MODELS,
        assemble_matrix,
        matrix_cells,
    )
    from repro.workloads.litmus import LITMUS

    models = _name_list(spec, "models", default=None) or list(DEFAULT_MODELS)
    engines = _name_list(spec, "engines", default=None) or list(
        DEFAULT_ENGINES
    )
    kernels = _name_list(spec, "kernels", default=None) or list(LITMUS)
    from repro.models import available_models

    for m in models:
        _expect(m in available_models(), f"unknown memory model {m!r}")
    for e in engines:
        _expect(e in ("ref", "fast"), "spec.engines must be ref|fast")
    for k in kernels:
        _expect(k in LITMUS, f"unknown litmus kernel {k!r}")
    cells, oracle_idx, grid_idx = matrix_cells(models, kernels, engines)
    units = [
        Unit(
            f"matrix:{cell.app}/{cell.config.name}"
            f"/{dict(cell.kwargs).get('model')}"
            f"/{dict(cell.kwargs).get('engine')}",
            cell=cell,
        )
        for cell in cells
    ]

    def finalize(results: list) -> dict:
        doc = assemble_matrix(
            models, kernels, engines, oracle_idx, grid_idx, results
        ).to_dict()
        doc["kind"] = "litmus"
        return doc

    return CompiledJob(
        "litmus", spec, units, finalize,
        f"model matrix: {len(models)} model(s) x {len(kernels)} "
        f"kernel(s) x {len(engines)} engine(s)",
    )


def _compile_chaos(spec: dict) -> CompiledJob:
    """``chaos``: seeded fault plans over the degraded-verification matrix."""
    from repro.common.rng import DEFAULT_SEED
    from repro.faults.chaos import assemble_chaos, chaos_cells, default_targets
    from repro.faults.model import FaultKind, random_plans
    from repro.faults.report import summarize

    num_plans = _int_in(spec, "plans", 3, 1, 100)
    seed = _get(spec, "seed", DEFAULT_SEED, types=int)
    kinds = None
    fault_names = _name_list(spec, "faults", default=None)
    if fault_names:
        try:
            kinds = [FaultKind(k) for k in fault_names]
        except ValueError as exc:
            raise JobError(str(exc)) from None
    workloads = _name_list(spec, "workloads", default=None) or None
    scale = _scale(spec, 0.5)
    try:
        targets = default_targets(workloads, scale=scale)
        plans = random_plans(num_plans, seed=seed, kinds=kinds)
    except ConfigError as exc:
        raise JobError(str(exc)) from None
    cells = chaos_cells(targets, plans)
    units = [
        Unit(f"chaos:{cell.kind}:{cell.app}/{cell.config.name}", cell=cell)
        for cell in cells
    ]

    def finalize(results: list) -> dict:
        summary = summarize(assemble_chaos(targets, plans, results))
        summary["kind"] = "chaos"
        return summary

    return CompiledJob(
        "chaos", spec, units, finalize,
        f"{len(targets)} target(s) x {num_plans} plan(s)",
    )


def _lint_one(kind: str, name: str, config, scale: float) -> dict:
    """Lint one workload/kernel on a worker thread; return the report dict."""
    from repro.analysis import lint_machine
    from repro.common.params import inter_block_machine, intra_block_machine
    from repro.core.machine import Machine
    from repro.workloads.litmus import LITMUS, machine_params, spawn_litmus

    if kind == "litmus":
        kernel = LITMUS[name]
        machine = Machine(
            machine_params(kernel), config, num_threads=kernel.threads
        )
        spawn_litmus(kernel, machine)
    elif kind == "m1":
        machine = Machine(intra_block_machine(4), config, num_threads=4)
        MODEL_ONE[name](scale=scale).prepare(machine)
    else:
        machine = Machine(inter_block_machine(2, 2), config, num_threads=4)
        cls = MODEL_TWO[name]
        try:
            workload = cls(scale=scale, num_blocks=2)
        except TypeError:  # most Model-2 workloads are block-agnostic
            workload = cls(scale=scale)
        workload.prepare(machine)
    report = lint_machine(machine, name=name, config=config.name)
    doc = report.to_dict()
    doc["clean"] = report.clean
    return doc


def _compile_lint(spec: dict) -> CompiledJob:
    """``lint``: the Section IV-A static analyzer over named targets."""
    from functools import partial

    from repro.workloads.litmus import LITMUS

    targets: list[tuple[str, str]] = []
    if _get(spec, "all_workloads", False, types=bool):
        targets += [("m1", n) for n in sorted(MODEL_ONE)]
        targets += [("m2", n) for n in sorted(MODEL_TWO)]
    for name in _name_list(spec, "workloads", default=None):
        if name in MODEL_ONE:
            targets.append(("m1", name))
        elif name in MODEL_TWO:
            targets.append(("m2", name))
        elif name in LITMUS:
            targets.append(("litmus", name))
        else:
            raise JobError(f"unknown workload or litmus kernel {name!r}")
    _expect(bool(targets), "spec.workloads or spec.all_workloads required")
    config_name = _get(spec, "config", None, types=str)
    scale = _scale(spec, 0.5)
    units = []
    for kind, name in targets:
        model = (
            LITMUS[name].model if kind == "litmus"
            else ("intra" if kind == "m1" else "inter")
        )
        chosen = config_name or ("Base" if model == "intra" else "Addr")
        configs = _configs([chosen], model)
        _expect(
            not configs[0].hardware_coherent,
            "HCC disables annotations; nothing to lint",
        )
        units.append(
            Unit(
                f"lint:{name}/{configs[0].name}",
                fn=partial(_lint_one, kind, name, configs[0], scale),
            )
        )

    def finalize(results: list) -> dict:
        return {
            "kind": "lint",
            "clean": all(doc["clean"] for doc in results),
            "reports": {
                name: doc for (_, name), doc in zip(targets, results)
            },
        }

    return CompiledJob(
        "lint", spec, units, finalize, f"{len(targets)} lint target(s)"
    )


def _compile_fleet(spec: dict) -> CompiledJob:
    """``fleet``: N sampled scenarios × configs × engines, verdict-gated."""
    from repro.common.rng import DEFAULT_SEED
    from repro.eval.fleet import fleet_cells, fleet_verdict
    from repro.workloads.gen import sample_specs

    num = _int_in(spec, "scenarios", 8, 1, 256)
    seed = _get(spec, "seed", DEFAULT_SEED, types=int)
    configs = _configs(
        _name_list(spec, "configs", default=["Base", "B+M+I"]), "intra"
    )
    engines = _name_list(spec, "engines", default=["ref"])
    for engine in engines:
        _expect(engine in ("ref", "fast"), "spec.engines must be ref|fast")
    lint = _get(spec, "lint", True, types=bool)
    specs = sample_specs(num, seed=seed)
    try:
        cells = fleet_cells(specs, configs=configs, engines=engines)
    except ConfigError as exc:
        raise JobError(str(exc)) from None
    units = [
        Unit(f"fleet:{cell.app}/{cell.config.name}", cell=cell)
        for cell in cells
    ]

    def finalize(results: list) -> dict:
        verdict = fleet_verdict(
            specs, results, configs=configs, engines=engines, lint=lint
        )
        verdict["kind"] = "fleet"
        return verdict

    return CompiledJob(
        "fleet", spec, units, finalize,
        f"{num} scenario(s) x {len(configs)} config(s) x "
        f"{len(engines)} engine(s)",
    )


_COMPILERS: dict[str, Callable[[dict], CompiledJob]] = {
    "sweep": _compile_sweep,
    "gen": _compile_gen,
    "litmus": _compile_litmus,
    "chaos": _compile_chaos,
    "lint": _compile_lint,
    "fleet": _compile_fleet,
}


def compile_job(payload: Any) -> CompiledJob:
    """Validate one request document and lower it to a :class:`CompiledJob`.

    Raises :class:`JobError` (status 400) on any validation failure:
    malformed document, unknown/mismatched schema version, unknown kind,
    bad spec fields, or a unit count over :data:`MAX_UNITS`.
    """
    _expect(isinstance(payload, dict), "request body must be a JSON object")
    schema = payload.get("schema", JOB_SCHEMA)
    _expect(
        schema == JOB_SCHEMA,
        f"unsupported job schema {schema!r} (server speaks {JOB_SCHEMA})",
    )
    kind = payload.get("kind")
    _expect(kind in JOB_KINDS, f"kind must be one of {JOB_KINDS}")
    spec = payload.get("spec", {})
    _expect(isinstance(spec, dict), "spec must be a JSON object")
    job = _COMPILERS[kind](spec)
    _expect(bool(job.units), "job compiled to zero work units")
    _expect(
        len(job.units) <= MAX_UNITS,
        f"job compiles to {len(job.units)} units (max {MAX_UNITS})",
    )
    return job
