"""Asyncio HTTP/JSON job server over the sweep engine (``repro serve``).

Simulation-as-a-service: many concurrent clients submit sweep / gen /
litmus / chaos / lint / fleet jobs to one process, which validates each
request against the versioned job schema (:mod:`repro.serve.jobs`),
shards its work units across a bounded worker pool
(:mod:`repro.serve.pool`), and fronts everything with the persistent
content-addressed result cache — so identical requests, from any number
of clients, simulate exactly once.

The API (full reference with curl examples in ``docs/SERVICE.md``)::

    GET  /healthz                 liveness + drain state
    GET  /v1/schema               job-schema version, kinds, states
    GET  /v1/metrics              queue depth, jobs in flight, latency
                                  histograms (repro.obs.Metrics snapshot)
    GET  /v1/jobs[?client=NAME]   job summaries, newest first
    POST /v1/jobs                 submit one job document
    GET  /v1/jobs/ID              full status (+ result when terminal)
    POST /v1/jobs/ID/cancel       request cancellation
    GET  /v1/jobs/ID/events       chunked JSONL progress stream
    POST /v1/shutdown             graceful drain + exit

Lifecycle: ``queued -> running -> done | failed | cancelled`` (with a
transient ``cancelling`` while in-flight units drain).  Admission control
is two-layered: a per-client active-job quota and a global
queued+in-flight unit ceiling (backpressure); both reject with HTTP 429
so a well-behaved client backs off instead of queueing unboundedly.
Progress streams are JSON lines in the same one-object-per-line
discipline as the :mod:`repro.obs` trace schema, and server metrics live
in a :class:`repro.obs.metrics.Metrics` registry (power-of-two latency
histograms included) snapshotted at ``/v1/metrics``.

The HTTP layer is deliberately minimal stdlib asyncio — request/response
with ``Content-Length`` bodies, chunked transfer for event streams,
connection-per-request — because the repo bakes in no server framework
and the job API needs nothing more.

Durability (``--journal DIR``): every lifecycle transition is appended
to a fsync'd write-ahead journal (:mod:`repro.serve.journal`) *before*
the client sees the matching response, and ``--resume`` replays it at
startup — interrupted jobs are requeued under their original ids (their
finished units come back as cache hits) and identical resubmissions are
deduped onto the live job by canonical digest, so ``kill -9`` loses no
acknowledged work.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import ConfigError
from repro.eval.cache import ResultCache
from repro.obs.metrics import Metrics
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    JOB_STATES,
    TERMINAL_STATES,
    CompiledJob,
    JobError,
    compile_job,
)
from repro.serve.journal import Journal, RecoveredJob, job_digest
from repro.serve.pool import UnitOutcome, WorkerFaultPlan, WorkerPool, WorkItem

#: Largest request body the server will read (a job document is tiny).
MAX_BODY_BYTES = 1 << 20

#: Client identity used when neither header nor body names one.
ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` is configured by (CLI flags mirror this)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is JobServer.port
    workers: int = 4
    quota: int = 8  # active (queued/running) jobs per client
    queue_limit: int = 512  # global queued+in-flight unit ceiling
    timeout: float | None = None  # per-unit wall-clock budget (seconds)
    retries: int = 1
    cache: bool = True
    cache_dir: str | None = None  # None = $REPRO_CACHE_DIR / default
    faults: WorkerFaultPlan | None = None  # serve-layer fault injection
    journal_dir: str | None = None  # None = no write-ahead journal
    resume: bool = False  # replay the journal and requeue open jobs


class Job:
    """One submitted job: units, lifecycle state, counters, event log."""

    def __init__(
        self,
        job_id: str,
        client: str,
        compiled: CompiledJob,
        digest: str = "",
    ) -> None:
        self.id = job_id
        self.client = client
        self.digest = digest
        self.recovered = False
        self.kind = compiled.kind
        self.spec = compiled.spec
        self.description = compiled.description
        self.units = compiled.units
        self.finalize = compiled.finalize
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.outcomes: list[UnitOutcome | None] = [None] * len(self.units)
        self.done_units = 0
        self.failed_units = 0
        self.skipped_units = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulated = 0
        self.retries = 0
        self.cancel_requested = False
        self.error: str | None = None
        self.result: dict | None = None
        self.events: list[dict] = []
        self._event_signal = asyncio.Event()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def terminal(self) -> bool:
        """True once the job reached done/failed/cancelled."""
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        """True while the job holds quota (anything non-terminal)."""
        return not self.terminal

    @property
    def settled_units(self) -> int:
        """Units that finished, failed, or were skipped."""
        return self.done_units + self.failed_units + self.skipped_units

    def emit(self, event: dict) -> None:
        """Append one progress event and wake every streamer."""
        event.setdefault("job", self.id)
        event["seq"] = len(self.events)
        event["ts"] = round(time.time(), 6)
        self.events.append(event)
        self._event_signal.set()

    async def next_events(self, cursor: int) -> int:
        """Block until there are events past *cursor*; return the new length."""
        while cursor >= len(self.events):
            if self.terminal:
                break
            self._event_signal.clear()
            if cursor < len(self.events):
                break
            await self._event_signal.wait()
        return len(self.events)

    # -- JSON views ----------------------------------------------------------

    def summary(self) -> dict:
        """The list-endpoint view: identity, state, progress, counters."""
        return {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "state": self.state,
            "description": self.description,
            "units": len(self.units),
            "done_units": self.done_units,
            "failed_units": self.failed_units,
            "skipped_units": self.skipped_units,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "retries": self.retries,
            "created": round(self.created, 6),
            "started": round(self.started, 6) if self.started else None,
            "finished": round(self.finished, 6) if self.finished else None,
            "error": self.error,
        }

    def detail(self) -> dict:
        """The per-job view: summary + spec + result document when done."""
        doc = self.summary()
        doc["spec"] = self.spec
        doc["digest"] = self.digest
        doc["recovered"] = self.recovered
        doc["events"] = len(self.events)
        if self.result is not None:
            doc["result"] = self.result
        return doc


class JobServer:
    """The asyncio job server: job table + worker pool + HTTP front end."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        cache = (
            ResultCache(self.config.cache_dir) if self.config.cache else None
        )
        self.pool = WorkerPool(
            workers=self.config.workers,
            cache=cache,
            timeout=self.config.timeout,
            retries=self.config.retries,
            faults=self.config.faults,
        )
        self.jobs: dict[str, Job] = {}
        self.metrics = Metrics()
        self.started_at = time.time()
        self.port: int | None = None
        self.journal = (
            Journal(self.config.journal_dir)
            if self.config.journal_dir
            else None
        )
        self.recovered_jobs = 0
        self.deduped_jobs = 0
        self.recovery: dict = {}
        self._seq = itertools.count(1)
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._completions: set[asyncio.Task] = set()
        self._active_streams = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and spawn the worker pool.

        With a journal configured, recovery runs first — before the
        listener binds — so resubmissions arriving the instant the port
        opens already dedupe against the requeued jobs.
        """
        await self.pool.start()
        if self.journal is not None:
            self._recover()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` completes."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, cancel queued.

        Completion tasks are gathered and in-flight event streams given a
        bounded window to deliver their final chunk, so a streaming
        client sees a clean terminator rather than a reset mid-chunk.
        Jobs interrupted by the drain are *not* journaled as finalized —
        the next ``--resume`` requeues them.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.stop()
        # Any job not yet terminal had pending units dropped by pool.stop()
        # (reason "shutdown"); _unit_done settled them into "cancelled" via
        # _complete tasks that may not have run yet — finish them now so
        # every job is terminal and every streamer can reach its end.
        while self._completions:
            await asyncio.gather(
                *list(self._completions), return_exceptions=True
            )
        try:
            await asyncio.wait_for(self._streams_idle(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - stuck client
            pass
        if self.journal is not None:
            self.journal.close()
        self._stopped.set()

    async def _streams_idle(self) -> None:
        """Resolve once no chunked event stream is still being written."""
        while self._active_streams:
            await asyncio.sleep(0.01)

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.config.host}:{self.port}"

    # -- recovery --------------------------------------------------------

    def _recover(self) -> None:
        """Replay (or rotate) the journal before the listener binds.

        ``--resume``: fold the journal, continue the job-id sequence past
        everything ever issued, compact finished history away, and
        requeue every non-finalized job under its original id.  Without
        ``--resume`` any existing journal is rotated aside so a fresh
        run never splices onto unrecovered history.
        """
        assert self.journal is not None
        if not self.config.resume:
            self.journal.rotate_stale()
            self.journal.open()
            return
        state = self.journal.replay()
        self.recovery = state.counters()
        self._seq = itertools.count(state.max_seq + 1)
        self.journal.compact(state)
        self.journal.open()
        for rjob in state.open_jobs.values():
            self._requeue(rjob)

    def _requeue(self, rjob: RecoveredJob) -> None:
        """Re-admit one journaled job under its original id."""
        assert self.journal is not None
        try:
            compiled = compile_job(rjob.payload)
        except Exception as exc:  # noqa: BLE001 - journaled, not re-raised
            # The payload compiled when first admitted; failing now means
            # the schema moved underneath the journal.  Finalize it as
            # failed rather than looping on it forever.
            self.metrics.inc("serve.jobs.recovery_failed")
            self.journal.append({
                "rec": "finalized", "id": rjob.id, "state": "failed",
                "error": f"recovery: {type(exc).__name__}: {exc}",
            })
            return
        job = Job(rjob.id, rjob.client, compiled, digest=rjob.digest)
        job.recovered = True
        if rjob.cancel_requested:
            job.cancel_requested = True
            job.state = "cancelling"
        self.jobs[job.id] = job
        self.recovered_jobs += 1
        self.metrics.inc("serve.jobs.recovered")
        job.emit({"event": "state", "state": job.state, "kind": job.kind,
                  "units": len(job.units), "recovered": True})
        self._enqueue(job)

    # -- job orchestration ---------------------------------------------------

    def _submit(self, payload: Any, client: str) -> tuple[Job, bool]:
        """Validate, admit, register, and enqueue one job.

        Returns ``(job, deduped)`` — ``deduped`` is True when the payload
        hashed onto an already-active job (idempotent resubmission, e.g.
        a client retrying after a connection reset), in which case the
        existing job is returned and nothing new is enqueued.
        """
        if self._draining:
            raise JobError("server is draining", status=503)
        compiled = compile_job(payload)
        digest = job_digest(compiled.kind, compiled.spec, client)
        for j in self.jobs.values():
            if j.active and j.digest == digest:
                self.deduped_jobs += 1
                self.metrics.inc("serve.jobs.deduped")
                return j, True
        active = sum(
            1 for j in self.jobs.values()
            if j.client == client and j.active
        )
        if active >= self.config.quota:
            self.metrics.inc("serve.jobs.rejected")
            raise JobError(
                f"client {client!r} has {active} active job(s) "
                f"(quota {self.config.quota})",
                status=429,
            )
        if self.pool.load() + len(compiled.units) > self.config.queue_limit:
            self.metrics.inc("serve.jobs.rejected")
            raise JobError(
                f"queue full: {self.pool.load()} unit(s) pending, "
                f"job needs {len(compiled.units)} "
                f"(limit {self.config.queue_limit})",
                status=429,
            )
        job = Job(f"j{next(self._seq):05d}", client, compiled, digest=digest)
        self.jobs[job.id] = job
        if self.journal is not None:
            # Fsync'd before the 200 goes out: an acknowledged submission
            # is always recoverable.
            self.journal.append({
                "rec": "submitted", "id": job.id, "digest": digest,
                "client": client, "payload": payload,
                "units": len(job.units),
            })
        self.metrics.inc("serve.jobs.submitted")
        job.emit({"event": "state", "state": "queued",
                  "kind": job.kind, "units": len(job.units)})
        self._enqueue(job)
        return job, False

    def _enqueue(self, job: Job) -> None:
        """Put every unit of *job* on the worker pool."""
        for idx, unit in enumerate(job.units):
            self.pool.put(
                WorkItem(
                    unit,
                    should_run=lambda j=job: self._runnable(j),
                    on_start=lambda j=job: self._unit_started(j),
                    on_done=lambda outcome, j=job, i=idx: self._unit_done(
                        j, i, outcome
                    ),
                )
            )

    def _runnable(self, job: Job) -> bool:
        return not (
            job.cancel_requested or job.failed_units or self._draining
        )

    def _unit_started(self, job: Job) -> None:
        if job.state == "queued":
            job.state = "running"
            job.started = time.time()
            job.emit({"event": "state", "state": "running"})

    def _unit_done(self, job: Job, idx: int, outcome: UnitOutcome) -> None:
        job.outcomes[idx] = outcome
        label = job.units[idx].label
        if outcome.skipped:
            job.skipped_units += 1
            job.emit({"event": "unit", "unit": idx, "label": label,
                      "skipped": True, "reason": outcome.reason,
                      "done": job.settled_units, "total": len(job.units)})
        elif outcome.error is not None:
            job.failed_units += 1
            self.metrics.inc("serve.units.failed")
            job.emit({"event": "unit", "unit": idx, "label": label,
                      "error": outcome.error, "attempts": outcome.attempts,
                      "done": job.settled_units, "total": len(job.units)})
        else:
            job.done_units += 1
            job.cache_hits += outcome.cache_hits
            job.cache_misses += outcome.cache_misses
            job.simulated += outcome.simulated
            job.retries += outcome.attempts - 1
            if self.journal is not None:
                self.journal.append({"rec": "unit", "id": job.id,
                                     "unit": idx})
            self.metrics.inc("serve.units.done")
            self.metrics.inc("serve.units.cache_hits", outcome.cache_hits)
            self.metrics.inc("serve.units.cache_misses", outcome.cache_misses)
            self.metrics.observe(
                "serve.lat.unit_ms", int(outcome.seconds * 1000)
            )
            job.emit({
                "event": "unit", "unit": idx, "label": label,
                "cache": "hit" if outcome.cache_hits else "miss",
                "seconds": round(outcome.seconds, 6),
                "attempts": outcome.attempts,
                "done": job.settled_units, "total": len(job.units),
            })
        if job.settled_units == len(job.units) and not job.terminal:
            self._spawn_completion(job)

    def _spawn_completion(self, job: Job) -> None:
        """Schedule :meth:`_complete` and track it for shutdown to gather."""
        task = asyncio.get_running_loop().create_task(self._complete(job))
        self._completions.add(task)
        task.add_done_callback(self._completions.discard)

    async def _complete(self, job: Job) -> None:
        """Settle a job whose units have all drained."""
        if job.failed_units:
            job.state = "failed"
            bad = [
                f"{job.units[i].label}: {o.error}"
                for i, o in enumerate(job.outcomes)
                if o is not None and o.error is not None
            ]
            job.error = "; ".join(bad)
            self.metrics.inc("serve.jobs.failed")
        elif job.skipped_units:
            job.state = "cancelled"
            reasons = {
                o.reason for o in job.outcomes
                if o is not None and o.skipped
            }
            job.error = f"cancelled ({', '.join(sorted(r or '?' for r in reasons))})"
            self.metrics.inc("serve.jobs.cancelled")
        else:
            try:
                results = [o.result for o in job.outcomes]
                if self._draining:
                    # The pool's thread executor may already be shut down;
                    # finalize is cheap aggregation, run it inline.
                    job.result = job.finalize(results)
                else:
                    job.result = await self.pool.run_in_thread(
                        job.finalize, results
                    )
                job.state = "done"
                self.metrics.inc("serve.jobs.done")
            except Exception as exc:  # noqa: BLE001 - surfaced to the client
                job.state = "failed"
                job.error = f"finalize: {type(exc).__name__}: {exc}"
                self.metrics.inc("serve.jobs.failed")
        if self.journal is not None and not self._interrupted(job):
            self.journal.append({
                "rec": "finalized", "id": job.id,
                "state": job.state, "error": job.error,
            })
        job.finished = time.time()
        self.metrics.observe(
            "serve.lat.job_ms", int((job.finished - job.created) * 1000)
        )
        job.emit({
            "event": "state", "state": job.state,
            "seconds": round(job.finished - job.created, 6),
            "cache_hits": job.cache_hits,
            "cache_misses": job.cache_misses,
            "simulated": job.simulated,
            "error": job.error,
        })

    def _interrupted(self, job: Job) -> bool:
        """True when *job* was cancelled by the drain, not by a client.

        Interrupted jobs are deliberately not journaled as finalized:
        the next ``--resume`` requeues them, which is the whole point of
        the journal.  An explicit client cancel still finalizes.
        """
        return (
            self._draining
            and job.state == "cancelled"
            and not job.cancel_requested
        )

    def _cancel(self, job: Job) -> dict:
        """Request cancellation; pending units skip, in-flight ones drain."""
        if job.terminal:
            return {"ok": False, "state": job.state,
                    "error": "job already settled"}
        if not job.cancel_requested:
            job.cancel_requested = True
            job.state = "cancelling"
            if self.journal is not None:
                self.journal.append({"rec": "cancel", "id": job.id})
            job.emit({"event": "state", "state": "cancelling"})
            if job.settled_units == len(job.units):
                # Nothing queued or in flight (e.g. cancel raced the last
                # unit): settle immediately.
                self._spawn_completion(job)
        return {"ok": True, "state": job.state}

    # -- HTTP front end ------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> dict | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > MAX_BODY_BYTES:
                return {"method": method, "target": target,
                        "headers": headers, "body": None, "too_large": True}
            body = await reader.readexactly(length)
        return {"method": method, "target": target,
                "headers": headers, "body": body, "too_large": False}

    @staticmethod
    def _head(status: int, extra: str = "") -> bytes:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  503: "Service Unavailable"}.get(status, "OK")
        return (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Server: repro-serve\r\n"
            "Connection: close\r\n"
            f"{extra}"
        ).encode("latin-1")

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        writer.write(
            self._head(
                status,
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n",
            )
            + body
        )
        await writer.drain()

    async def _route(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        if request["too_large"]:
            await self._send_json(writer, 413, {"error": "body too large"})
            return
        method = request["method"]
        url = urlsplit(request["target"])
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if method == "GET" and url.path in ("/", "/healthz"):
            await self._send_json(writer, 200, {
                "ok": True,
                "service": "repro-serve",
                "schema": JOB_SCHEMA,
                "draining": self._draining,
                "uptime_s": round(time.time() - self.started_at, 3),
            })
            return
        if parts[:1] != ["v1"]:
            await self._send_json(writer, 404, {"error": "not found"})
            return
        rest = parts[1:]

        if method == "GET" and rest == ["schema"]:
            await self._send_json(writer, 200, {
                "schema": JOB_SCHEMA,
                "kinds": list(JOB_KINDS),
                "states": list(JOB_STATES),
                "quota": self.config.quota,
                "queue_limit": self.config.queue_limit,
            })
        elif method == "GET" and rest == ["metrics"]:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            cache = self.pool.cache
            if cache is not None:
                # Mirror cache counters into the registry so the snapshot
                # carries cache.corrupt_detected & co alongside serve.*.
                for name, value in cache.counters().items():
                    self.metrics.set(f"cache.{name}", value)
            await self._send_json(writer, 200, {
                "queue_depth": self.pool.depth(),
                "in_flight": self.pool.in_flight,
                "workers": self.pool.workers,
                "jobs": states,
                "units_run": self.pool.units_run,
                "retries_used": self.pool.retries_used,
                "uptime_s": round(time.time() - self.started_at, 3),
                "durability": {
                    "journal": self.journal is not None,
                    "resumed": bool(self.config.resume),
                    "recovered_jobs": self.recovered_jobs,
                    "deduped_jobs": self.deduped_jobs,
                    "recovery": self.recovery,
                },
                "cache": cache.counters() if cache is not None else None,
                "metrics": self.metrics.snapshot(),
            })
        elif rest == ["jobs"]:
            await self._route_jobs(method, request, query, writer)
        elif len(rest) >= 2 and rest[0] == "jobs":
            await self._route_job(method, rest[1], rest[2:], writer)
        elif method == "POST" and rest == ["shutdown"]:
            await self._send_json(writer, 200, {
                "ok": True, "draining": True,
                "in_flight": self.pool.in_flight,
                "dropped": self.pool.depth(),
            })
            asyncio.get_running_loop().create_task(self.shutdown())
        else:
            await self._send_json(writer, 404, {"error": "not found"})

    async def _route_jobs(
        self, method: str, request: dict, query: dict,
        writer: asyncio.StreamWriter,
    ) -> None:
        if method == "GET":
            jobs = [
                j.summary() for j in self.jobs.values()
                if "client" not in query or j.client == query["client"]
            ]
            jobs.sort(key=lambda d: d["id"], reverse=True)
            await self._send_json(writer, 200, {"jobs": jobs})
            return
        if method != "POST":
            await self._send_json(writer, 405, {"error": "POST or GET"})
            return
        try:
            payload = json.loads(request["body"] or b"{}")
        except ValueError:
            await self._send_json(writer, 400, {"error": "bad JSON body"})
            return
        client = request["headers"].get("x-repro-client") or (
            payload.get("client") if isinstance(payload, dict) else None
        ) or ANONYMOUS
        try:
            job, deduped = self._submit(payload, str(client))
        except JobError as exc:
            await self._send_json(
                writer, exc.status, {"error": str(exc)}
            )
            return
        await self._send_json(writer, 200, {
            "ok": True,
            "id": job.id,
            "state": job.state,
            "deduped": deduped,
            "units": len(job.units),
            "links": {
                "status": f"/v1/jobs/{job.id}",
                "events": f"/v1/jobs/{job.id}/events",
                "cancel": f"/v1/jobs/{job.id}/cancel",
            },
        })

    async def _route_job(
        self, method: str, job_id: str, tail: list[str],
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, {"error": f"no such job {job_id!r}"}
            )
            return
        if not tail and method == "GET":
            await self._send_json(writer, 200, job.detail())
        elif tail == ["cancel"] and method == "POST":
            ack = self._cancel(job)
            await self._send_json(writer, 200 if ack["ok"] else 409, ack)
        elif tail == ["events"] and method == "GET":
            await self._stream_events(job, writer)
        else:
            await self._send_json(writer, 404, {"error": "not found"})

    async def _stream_events(
        self, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        """Chunked JSONL: replay the event log, then tail until terminal.

        Streams are counted so a graceful drain can wait for the final
        chunk (and the ``0\\r\\n\\r\\n`` terminator) to reach the client
        instead of resetting the connection mid-stream.
        """
        self._active_streams += 1
        try:
            writer.write(self._head(
                200,
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n\r\n",
            ))
            await writer.drain()
            cursor = 0
            while True:
                limit = await job.next_events(cursor)
                while cursor < limit:
                    data = (
                        json.dumps(job.events[cursor], sort_keys=True) + "\n"
                    ).encode()
                    writer.write(
                        f"{len(data):x}\r\n".encode() + data + b"\r\n"
                    )
                    cursor += 1
                await writer.drain()
                if job.terminal and cursor >= len(job.events):
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            self._active_streams -= 1


async def _serve(config: ServerConfig) -> int:
    """Start a server and run it until SIGINT/SIGTERM (the CLI body)."""
    import signal
    import sys

    server = JobServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                sig, lambda: loop.create_task(server.shutdown())
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX event loop; Ctrl-C still raises KeyboardInterrupt
    journal = (
        f", journal={config.journal_dir}"
        f"{' (resumed ' + str(server.recovered_jobs) + ' job(s))' if config.resume else ''}"
        if config.journal_dir
        else ""
    )
    print(
        f"repro serve: listening on {server.url} "
        f"(workers={config.workers}, quota={config.quota}, "
        f"queue_limit={config.queue_limit}, "
        f"cache={'on' if config.cache else 'off'}{journal})",
        file=sys.stderr,
    )
    await server.serve_forever()
    print("repro serve: drained, bye", file=sys.stderr)
    return 0


def run(config: ServerConfig | None = None) -> int:
    """Blocking entry point used by ``repro serve``."""
    try:
        return asyncio.run(_serve(config or ServerConfig()))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
