"""Service-level chaos drill: SIGKILL + cache corruption, zero loss.

``repro serve --bench --chaos-kill`` boots a **real** ``repro serve``
subprocess (journal on, resume on), drives a full bench job set at it
from concurrent :class:`~repro.serve.loadgen.ResilientClient` threads,
and — while those clients are mid-flight — repeatedly:

1. ``SIGKILL``\\ s the server (no drain, no goodbye),
2. corrupts random result-cache files on disk (truncation, garbage,
   single-character bitflips, cycling deterministically from one seeded
   stream), and
3. restarts the server with ``--journal DIR --resume``.

The drill then runs a final verification pass that resubmits **every**
payload, forcing a cache read of every cell so no corrupted entry can
hide unread, and proves the durability contract end to end:

- every job completes (clients resubmit idempotently; the journal
  requeues whatever was acknowledged but unfinished),
- every served result is bit-identical to a direct
  :class:`~repro.eval.parallel.SweepExecutor` run, and
- every corrupted cache file was *detected* — quarantined and then
  recomputed (healed on disk) — never silently served.

The report is archived to ``BENCH_chaos_drill.json``.  Acceptance bar
(ISSUE 9): >= 100 jobs across >= 3 kill/restart cycles, 100 % complete,
0 divergences, 0 undetected corruptions.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.common.rng import DEFAULT_SEED, make_rng
from repro.eval.bench import git_rev, write_bench_json
from repro.eval.cache import payload_digest
from repro.serve.loadgen import (
    EXHAUSTED,
    ResilientClient,
    RetryPolicy,
    bench_payloads,
    _direct_results,
)

#: Corruption modes the drill cycles through (all must be detectable).
CORRUPTION_MODES = ("truncate", "garbage", "bitflip")


def _src_root() -> str:
    """Directory that must be on PYTHONPATH for ``python -m repro``."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for an ephemeral port, then release it."""
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ServerProc:
    """A ``repro serve`` subprocess the drill can kill and resurrect."""

    def __init__(
        self,
        *,
        host: str,
        port: int,
        workers: int,
        cache_dir: str,
        journal_dir: str,
        log_path: str,
        quota: int = 64,
        queue_limit: int = 4096,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.journal_dir = journal_dir
        self.log_path = log_path
        self.quota = quota
        self.queue_limit = queue_limit
        self.proc: subprocess.Popen | None = None
        self.incarnations = 0

    def start(self) -> None:
        """Launch (or relaunch) the server with ``--journal --resume``."""
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", str(self.port),
            "--workers", str(self.workers),
            "--quota", str(self.quota),
            "--queue-limit", str(self.queue_limit),
            "--cache-dir", self.cache_dir,
            "--journal", self.journal_dir, "--resume",
        ]
        env = os.environ.copy()
        env["PYTHONPATH"] = _src_root() + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        with open(self.log_path, "a", encoding="utf-8") as log:
            log.write(f"--- incarnation {self.incarnations + 1} ---\n")
            log.flush()
            self.proc = subprocess.Popen(
                cmd, stdout=log, stderr=log, env=env
            )
        self.incarnations += 1

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until ``/healthz`` answers 200 (raises on timeout)."""
        import http.client

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=2.0)
            try:
                conn.request("GET", "/healthz")
                if conn.getresponse().status == 200:
                    return
            except OSError:
                pass
            finally:
                conn.close()
            if self.proc is not None and self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited with {self.proc.returncode} before "
                    f"becoming ready (see {self.log_path})"
                )
            time.sleep(0.1)
        raise TimeoutError(f"server not ready within {timeout}s")

    def kill(self) -> None:
        """SIGKILL — the whole point: no drain, no flush, no warning."""
        assert self.proc is not None
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self, client: ResilientClient) -> None:
        """Graceful drain via ``POST /v1/shutdown``; SIGTERM fallback."""
        if self.proc is None or self.proc.poll() is not None:
            return
        client.request("POST", "/v1/shutdown", timeout=10.0)
        try:
            self.proc.wait(timeout=15.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck drain
            self.proc.terminate()
            self.proc.wait(timeout=10.0)


def corrupt_cache_files(cache_dir: str, count: int, rng) -> list[Path]:
    """Corrupt up to *count* random cache entries; return their paths.

    Modes cycle through :data:`CORRUPTION_MODES` so one drill exercises
    torn writes (truncate), total garbage, and the nastiest case — a
    parseable file whose payload no longer matches its checksum
    (bitflip).  Quarantined files are never re-corrupted.
    """
    files = sorted(
        p for p in Path(cache_dir).rglob("*.json")
        if p.parent.name != "quarantine"
    )
    if not files:
        return []
    picks = rng.choice(
        len(files), size=min(count, len(files)), replace=False
    )
    chosen = [files[int(i)] for i in picks]
    for i, path in enumerate(chosen):
        mode = CORRUPTION_MODES[i % len(CORRUPTION_MODES)]
        raw = path.read_text(encoding="utf-8")
        if mode == "truncate":
            path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        elif mode == "garbage":
            path.write_text("\x00garbage\x00" * 4, encoding="utf-8")
        else:  # bitflip: stays parseable-ish, checksum must catch it
            pos = int(rng.integers(len(raw)))
            flip = "X" if raw[pos] != "X" else "Y"
            path.write_text(raw[:pos] + flip + raw[pos + 1:],
                            encoding="utf-8")
    return chosen


def _classify_corrupted(paths: set[Path]) -> dict:
    """Post-drill verdict per corrupted file: healed, quarantined, or bad."""
    healed = quarantined = undetected = 0
    for path in sorted(paths):
        if not path.exists():
            quarantined += 1  # moved to quarantine/ (or re-put pending)
            continue
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            ok = (
                isinstance(doc, dict)
                and doc.get("sha256") == payload_digest(doc)
            )
        except ValueError:
            ok = False
        if ok:
            healed += 1  # detected, quarantined, recomputed, re-put
        else:
            undetected += 1  # still corrupt in place: was never read back
    return {"healed": healed, "quarantined": quarantined,
            "undetected": undetected}


def chaos_drill(
    *,
    jobs: int = 120,
    kills: int = 3,
    corrupt: int = 6,
    concurrency: int = 16,
    workers: int = 8,
    scale: float = 0.3,
    seed: int = DEFAULT_SEED,
    out: str | None = "BENCH_chaos_drill.json",
    work_dir: str | None = None,
    job_timeout: float = 600.0,
) -> dict:
    """Run the kill/corrupt/resume drill; return (and archive) the report.

    ``work_dir`` pins the scratch directory (CI uses this to upload the
    journal as an artifact); by default everything lives in a temp dir.
    ``corrupt`` counts cache files corrupted *per kill cycle*.
    """
    if work_dir is not None:
        Path(work_dir).mkdir(parents=True, exist_ok=True)
        return _drill(jobs, kills, corrupt, concurrency, workers, scale,
                      seed, out, work_dir, job_timeout)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return _drill(jobs, kills, corrupt, concurrency, workers, scale,
                      seed, out, tmp, job_timeout)


def _drill(
    jobs: int, kills: int, corrupt: int, concurrency: int, workers: int,
    scale: float, seed: int, out: str | None, tmp: str, job_timeout: float,
) -> dict:
    rng = make_rng("chaos-drill", seed)
    payloads = bench_payloads(jobs, scale=scale)
    truth = _direct_results(payloads, f"{tmp}/truth-cache")
    cache_dir = f"{tmp}/serve-cache"
    journal_dir = f"{tmp}/journal"
    host, port = "127.0.0.1", _free_port()
    server = ServerProc(
        host=host, port=port, workers=workers,
        cache_dir=cache_dir, journal_dir=journal_dir,
        log_path=f"{tmp}/server.log",
    )
    policy = RetryPolicy(attempts=12, cap_s=1.0, seed=seed)

    t0 = time.perf_counter()
    server.start()
    server.wait_ready()

    lock = threading.Lock()
    work: list[tuple[int, dict]] = list(enumerate(payloads))
    outcomes: dict[int, dict | None] = {}
    settled = 0
    resubmissions = 0
    retries = 0

    def run_one(client: ResilientClient, payload: dict) -> dict | None:
        """Drive one payload to a terminal result, resubmitting as needed.

        Resubmission is the recovery protocol: a 404 poll (job finished
        + compacted before we saw it), a drain-cancelled job, or an
        exhausted retry budget (server down longer than one backoff
        budget) all loop back to an idempotent resubmit.
        """
        nonlocal resubmissions
        deadline = time.monotonic() + job_timeout
        first = True
        while time.monotonic() < deadline:
            if not first:
                with lock:
                    resubmissions += 1
            first = False
            status, doc = client.request(
                "POST", "/v1/jobs", payload, client=payload["client"]
            )
            if status in (429, 503, EXHAUSTED):
                continue  # budget exhausted mid-outage: keep trying
            if status != 200:
                return {"state": "failed",
                        "error": f"submit HTTP {status}: {doc}"}
            try:
                final = client.wait(doc["id"], timeout=120.0)
            except TimeoutError:
                continue  # stuck job: resubmit dedupes onto it
            if final is None or final["state"] == "cancelled":
                continue  # vanished across a crash, or drain-cancelled
            return final
        return None  # pragma: no cover - drill-level hang guard

    def drain(idx: int) -> None:
        nonlocal settled, retries
        client = ResilientClient(host, port, policy=policy,
                                 stream=f"chaos-{idx}")
        while True:
            with lock:
                if not work:
                    break
                i, payload = work.pop()
            final = run_one(client, payload)
            with lock:
                outcomes[i] = final
                settled += 1
        with lock:
            retries += client.retries

    threads = [
        threading.Thread(target=drain, args=(i,), name=f"chaos-client-{i}")
        for i in range(concurrency)
    ]
    for th in threads:
        th.start()

    # -- the chaos controller: kill, corrupt, resume -----------------------
    corrupted: set[Path] = set()
    kills_done = 0
    recovered_total = 0
    deduped_observed = 0
    metrics_client = ResilientClient(host, port, policy=policy,
                                     stream="chaos-metrics")
    for k in range(kills):
        target = (k + 1) * jobs // (kills + 1)
        pace_deadline = time.monotonic() + 120.0
        while time.monotonic() < pace_deadline:
            with lock:
                progressed, left = settled, len(work)
            if progressed >= target or (left == 0 and progressed >= jobs):
                break
            time.sleep(0.05)
        server.kill()
        kills_done += 1
        corrupted.update(corrupt_cache_files(cache_dir, corrupt, rng))
        server.start()
        server.wait_ready()
        status, met = metrics_client.request("GET", "/v1/metrics")
        if status == 200:
            recovered_total += met["durability"]["recovered_jobs"]

    for th in threads:
        th.join()

    # -- final verification pass: every cell re-read through the cache -----
    verify_failures = 0
    divergences = 0
    verify_client = ResilientClient(host, port, policy=policy,
                                    stream="chaos-verify")
    for i, payload in enumerate(payloads):
        final = outcomes.get(i)
        spec = payload["spec"]
        app, cfg = spec["apps"][0], spec["configs"][0]
        key = f"{app}/{cfg}/t{spec['num_threads']}"
        if final is None or final["state"] != "done":
            verify_failures += 1
        elif final["result"]["matrix"][app][cfg] != truth[key]:
            divergences += 1
        # Hot resubmit: forces a cache read of this cell, so a corrupt
        # entry is detected (quarantined + recomputed) rather than
        # lurking unread — and the served result is re-verified.
        hot = run_one(verify_client, payload)
        if hot is None or hot["state"] != "done":
            verify_failures += 1
        elif hot["result"]["matrix"][app][cfg] != truth[key]:
            divergences += 1

    status, met = metrics_client.request("GET", "/v1/metrics")
    cache_counters = met.get("cache") if status == 200 else None
    if status == 200:
        # recovered_jobs for this incarnation was already sampled right
        # after its restart; only the deduped count accrues afterwards.
        deduped_observed += met["durability"]["deduped_jobs"]
    server.stop(metrics_client)

    verdict = _classify_corrupted(corrupted)
    completed = sum(
        1 for f in outcomes.values()
        if f is not None and f["state"] == "done"
    )
    seconds = time.perf_counter() - t0
    doc = {
        "name": "chaos_drill",
        "git_rev": git_rev(),
        "jobs": jobs,
        "completed": completed,
        "kills": kills_done,
        "incarnations": server.incarnations,
        "corrupted_files": len(corrupted),
        "corrupt_healed": verdict["healed"],
        "corrupt_quarantined": verdict["quarantined"],
        "corrupt_undetected": verdict["undetected"],
        "failures": verify_failures,
        "divergences": divergences,
        "retries": retries,
        "resubmissions": resubmissions,
        "recovered_jobs_observed": recovered_total,
        "deduped_jobs_observed": deduped_observed,
        "cache_counters": cache_counters,
        "concurrency": concurrency,
        "workers": workers,
        "scale": scale,
        "seed": seed,
        "seconds": round(seconds, 3),
        "journal_dir": journal_dir,
        "ok": (
            completed == jobs
            and verify_failures == 0
            and divergences == 0
            and verdict["undetected"] == 0
            and kills_done >= kills
        ),
    }
    if out:
        write_bench_json(doc, None if out == "BENCH_chaos_drill.json" else out)
    return doc
