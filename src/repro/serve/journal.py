"""Write-ahead journal for the job server (``repro serve --journal``).

The server keeps all job state in memory; a ``kill -9`` would silently
lose every queued and running job.  This module makes job *intake*
durable: an append-only JSONL journal, fsync'd per record, that logs
every lifecycle transition **before** the client sees the matching HTTP
response.  On restart with ``--resume`` the journal is replayed and any
job that was submitted but never finalized is requeued under its
original id — clients that were polling keep polling and never notice
the crash.  Completed work is not lost either: unit results live in the
content-addressed :class:`repro.eval.cache.ResultCache`, so replayed
units re-resolve as cache hits instead of re-simulating.

Record grammar (one JSON object per line, ``rec`` discriminates)::

    {"rec": "open",      "schema": 1, "ts": ...}            # server boot
    {"rec": "submitted", "id": "j00001", "digest": "...",
     "client": "...", "payload": {...}, "units": N, "ts": ...}
    {"rec": "unit",      "id": "j00001", "unit": 3, "ts": ...}
    {"rec": "cancel",    "id": "j00001", "ts": ...}
    {"rec": "finalized", "id": "j00001", "state": "done",
     "error": null, "ts": ...}

Replay is crash-tolerant: a torn trailing line (the append the crash
interrupted) is skipped and counted, as is any line that fails to parse.
Because appends are fsync'd *before* the 200 reply, an acknowledged
submission is always recoverable; an unacknowledged one may or may not
be — either way the client's retry is deduped by :func:`job_digest`.

On resume the journal is *compacted*: a fresh file containing only the
still-open jobs' ``submitted`` records replaces the old one atomically
(tmp + ``os.replace``), so the journal stays bounded across any number
of crash/restart cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

#: Journal record-format version, stamped into every ``open`` record.
JOURNAL_SCHEMA = 1

#: File name of the journal inside ``--journal DIR``.
JOURNAL_NAME = "serve.journal.jsonl"

#: Stale journals are rotated aside under this suffix when a server
#: starts *without* ``--resume`` (never silently deleted).
STALE_SUFFIX = ".stale"


def job_digest(kind: str, spec: dict, client: str) -> str:
    """Canonical digest identifying one job submission.

    Two submissions with the same kind, spec, and client are the same
    job: resubmitting (e.g. a client retrying after a connection reset)
    is idempotent and maps onto the already-admitted job instead of
    double-running it.  The digest is a sha256 over canonical JSON, the
    same discipline as :func:`repro.eval.cache.cell_key`.
    """
    blob = json.dumps(
        {"kind": kind, "spec": spec, "client": client},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class RecoveredJob:
    """One non-finalized job reconstructed from the journal."""

    id: str
    digest: str
    client: str
    payload: Any
    units: int
    units_done: set[int] = field(default_factory=set)
    cancel_requested: bool = False


@dataclass
class JournalState:
    """Everything :func:`Journal.replay` learns from the journal file."""

    open_jobs: dict[str, RecoveredJob] = field(default_factory=dict)
    finalized: dict[str, str] = field(default_factory=dict)  # id -> state
    max_seq: int = 0  # highest numeric job-id suffix ever issued
    records: int = 0  # well-formed records seen
    skipped: int = 0  # torn/corrupt lines tolerated
    incarnations: int = 0  # "open" records = server boots journaled

    def counters(self) -> dict:
        """Flat summary for logs and the ``/v1/metrics`` endpoint."""
        return {
            "open_jobs": len(self.open_jobs),
            "finalized_jobs": len(self.finalized),
            "records": self.records,
            "skipped_lines": self.skipped,
            "incarnations": self.incarnations,
            "max_seq": self.max_seq,
        }


class Journal:
    """Append-only, fsync'd JSONL write-ahead journal.

    Single-writer by construction: the server owns the file for its
    lifetime and appends from the event loop.  Each :meth:`append` is
    flushed and ``fsync``'d before returning, so a record the caller has
    seen succeed survives ``kill -9`` and (modulo disk lies) power loss.
    """

    def __init__(self, directory: str | Path) -> None:
        self.dir = Path(directory)
        self.path = self.dir / JOURNAL_NAME
        self._fh: IO[str] | None = None
        self.appended = 0

    # -- writing ---------------------------------------------------------

    def open(self) -> None:
        """Create the directory, open for append, journal an ``open``."""
        self.dir.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self.append({"rec": "open", "schema": JOURNAL_SCHEMA})

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        assert self._fh is not None, "journal not open"
        record.setdefault("ts", round(time.time(), 6))
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def close(self) -> None:
        """Close the journal file (safe to call twice)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery ----------------------------------------------------------

    def replay(self) -> JournalState:
        """Fold the journal into a :class:`JournalState`.

        Tolerates a torn trailing line (crash mid-append) and skips any
        unparseable or unrecognized line, counting them in ``skipped``
        rather than refusing to recover.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    kind = rec["rec"]
                except (ValueError, KeyError, TypeError):
                    state.skipped += 1
                    continue
                state.records += 1
                if kind == "open":
                    state.incarnations += 1
                elif kind == "submitted":
                    jid = rec["id"]
                    state.open_jobs[jid] = RecoveredJob(
                        id=jid,
                        digest=rec.get("digest", ""),
                        client=rec.get("client", "anonymous"),
                        payload=rec.get("payload"),
                        units=int(rec.get("units", 0)),
                    )
                    state.max_seq = max(state.max_seq, _seq_of(jid))
                elif kind == "unit":
                    job = state.open_jobs.get(rec.get("id", ""))
                    if job is not None:
                        job.units_done.add(int(rec.get("unit", -1)))
                elif kind == "cancel":
                    job = state.open_jobs.get(rec.get("id", ""))
                    if job is not None:
                        job.cancel_requested = True
                elif kind == "finalized":
                    jid = rec.get("id", "")
                    state.open_jobs.pop(jid, None)
                    state.finalized[jid] = rec.get("state", "done")
                    state.max_seq = max(state.max_seq, _seq_of(jid))
                else:
                    state.skipped += 1
                    state.records -= 1
        return state

    def compact(self, state: JournalState) -> None:
        """Atomically rewrite the journal down to the open jobs.

        Keeps the journal bounded across crash/restart cycles: finished
        history is dropped, each still-open job keeps exactly one
        ``submitted`` record (its completed units will replay as cache
        hits, so ``unit`` records need not survive compaction).  Must be
        called before :meth:`open`.
        """
        assert self._fh is None, "compact before open()"
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for job in state.open_jobs.values():
                rec = {
                    "rec": "submitted",
                    "id": job.id,
                    "digest": job.digest,
                    "client": job.client,
                    "payload": job.payload,
                    "units": job.units,
                    "ts": round(time.time(), 6),
                }
                fh.write(
                    json.dumps(rec, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                if job.cancel_requested:
                    fh.write(
                        json.dumps(
                            {"rec": "cancel", "id": job.id,
                             "ts": round(time.time(), 6)},
                            sort_keys=True, separators=(",", ":"),
                        )
                        + "\n"
                    )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def rotate_stale(self) -> Path | None:
        """Move an existing journal aside (fresh start without --resume).

        Starting without ``--resume`` must not splice new records onto a
        journal whose open jobs will never be recovered, and must not
        destroy evidence either — the old file is renamed with a
        ``.stale`` suffix (numbered on collision) and its path returned.
        """
        if not self.path.exists():
            return None
        dest = self.path.with_name(self.path.name + STALE_SUFFIX)
        n = 0
        while dest.exists():
            n += 1
            dest = self.path.with_name(f"{self.path.name}{STALE_SUFFIX}.{n}")
        os.replace(self.path, dest)
        return dest


def _seq_of(job_id: str) -> int:
    """Numeric suffix of a ``jNNNNN`` job id (0 if unparseable)."""
    digits = "".join(ch for ch in job_id if ch.isdigit())
    try:
        return int(digits)
    except ValueError:
        return 0
