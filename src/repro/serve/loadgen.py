"""Load generator for the job server (``repro serve --bench``).

Drives an in-process :class:`~repro.serve.server.JobServer` (running on a
background thread, so the client side is plain blocking ``http.client``
like any external consumer) with hundreds of concurrent job submissions,
polls every job to completion, and verifies **zero result divergence**:
each served sweep result must be bit-identical to running the same cells
directly through a local :class:`~repro.eval.parallel.SweepExecutor`.

Two passes are measured: a **cold** pass against an empty result cache
(every cell simulates) and a **hot** pass resubmitting the identical job
set (every cell should be a cache hit).  Per-job wall-clock latencies are
summarised as p50/p99 (:func:`repro.eval.bench.percentile`) and written
with the cache-hit ratio to ``BENCH_serve.json`` — the serving-layer
companion to ``BENCH_fast_engine.json`` and ``BENCH_sweep_cache.json``.

Client resilience (:class:`ResilientClient`): quota/backpressure 429s,
drain 503s, and connection resets are retried with capped exponential
backoff and seeded jitter instead of treated as fatal.  Retrying a
submission is safe because the server dedupes resubmissions by canonical
job digest (:func:`repro.serve.journal.job_digest`); retries burned are
counted into the bench report.  The chaos drill
(:mod:`repro.serve.drill`) builds on this client to survive servers
that are being SIGKILLed underneath it.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.common.rng import DEFAULT_SEED, make_rng
from repro.core.config import intra_config
from repro.eval.bench import git_rev, percentile, write_bench_json
from repro.eval.cache import ResultCache
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.serve.server import JobServer, ServerConfig

#: Small/fast Model-1 workloads the bench cycles through (distinct
#: (app, config, num_threads) triples so the cold pass really simulates).
BENCH_APPS = ("fft", "lu_cont", "volrend", "water_nsq")
BENCH_CONFIGS = ("Base", "B+M", "B+M+I")

#: HTTP statuses that mean "back off and try again", not "give up":
#: 429 = quota/backpressure, 503 = draining.
RETRYABLE_STATUS = (429, 503)

#: Synthetic status returned when every retry was exhausted on a
#: transport-level failure (connection refused/reset, torn response).
EXHAUSTED = 599


class LocalServer:
    """A JobServer running its own event loop on a daemon thread.

    The canonical harness for tests and the load generator: start it,
    speak real HTTP to ``host:port`` from any number of client threads,
    then :meth:`close` to drain and join.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.server: JobServer | None = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    def _run(self) -> None:
        import asyncio

        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self.server = JobServer(self.config)
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(body())

    def __enter__(self) -> "LocalServer":
        self._thread.start()
        if not self._ready.wait(timeout=10):  # pragma: no cover - startup bug
            raise RuntimeError("job server failed to start within 10s")
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def port(self) -> int:
        """The ephemeral port the server bound (valid once started)."""
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def request(
        self, method: str, path: str, body: dict | None = None,
        *, client: str | None = None, timeout: float = 60.0,
    ) -> tuple[int, dict]:
        """One blocking HTTP round-trip; returns (status, parsed JSON)."""
        conn = http.client.HTTPConnection(
            self.config.host, self.port, timeout=timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            if client is not None:
                headers["X-Repro-Client"] = client
            conn.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
                headers=headers,
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read().decode())
        finally:
            conn.close()

    def stream_events(self, job_id: str, *, timeout: float = 60.0) -> list[dict]:
        """Consume a job's chunked JSONL event stream to the end."""
        conn = http.client.HTTPConnection(
            self.config.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            resp = conn.getresponse()  # http.client un-chunks for us
            events = []
            while True:
                line = resp.readline()
                if not line:
                    break
                events.append(json.loads(line.decode()))
            return events
        finally:
            conn.close()

    def wait(self, job_id: str, *, timeout: float = 120.0) -> dict:
        """Poll a job until it settles; returns the terminal detail doc."""
        deadline = time.monotonic() + timeout
        while True:
            status, doc = self.request("GET", f"/v1/jobs/{job_id}")
            if status != 200:
                raise RuntimeError(f"poll {job_id}: HTTP {status}: {doc}")
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise TimeoutError(f"job {job_id} still {doc['state']}")
            time.sleep(0.02)

    def close(self) -> None:
        """Drain the server and join its loop thread."""
        if self._ready.is_set() and self._thread.is_alive():
            try:
                self.request("POST", "/v1/shutdown", timeout=30.0)
            except OSError:  # pragma: no cover - already gone
                pass
        self._thread.join(timeout=30)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    ``attempts`` counts retries *after* the first try; the n-th retry
    sleeps ``min(base_s * 2**n, cap_s)`` scaled by a jitter factor drawn
    uniformly from [0.5, 1.5) out of one deterministic stream
    (:func:`repro.common.rng.make_rng`), so a retry storm from many
    clients decorrelates without sacrificing reproducibility.
    """

    attempts: int = 8
    base_s: float = 0.05
    cap_s: float = 2.0
    seed: int = DEFAULT_SEED

    @property
    def worst_case_s(self) -> float:
        """Upper bound on total sleep across a full retry budget."""
        return sum(
            min(self.base_s * 2**n, self.cap_s) * 1.5
            for n in range(self.attempts)
        )


class ResilientClient:
    """Blocking HTTP client that rides out 429/503/connection failures.

    Safe by construction: the server dedupes resubmissions by canonical
    job digest, so replaying a ``POST /v1/jobs`` whose response was lost
    lands on the already-admitted job instead of double-running it.
    ``retries`` counts every backoff taken (surfaced in bench reports).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RetryPolicy | None = None,
        stream: str = "loadgen",
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self._rng = make_rng(f"retry-{stream}", self.policy.seed)
        self.retries = 0
        self.give_ups = 0

    def _once(
        self, method: str, path: str, body: dict | None,
        client: str | None, timeout: float,
    ) -> tuple[int, dict]:
        """One raw round-trip; transport failures come back as status 0."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            headers = {"Content-Type": "application/json"}
            if client is not None:
                headers["X-Repro-Client"] = client
            conn.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
                headers=headers,
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read().decode())
        except (OSError, http.client.HTTPException, ValueError) as exc:
            # Connection refused (server restarting), reset mid-exchange
            # (server SIGKILLed), or a torn JSON body: all retryable.
            return 0, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            conn.close()

    def request(
        self, method: str, path: str, body: dict | None = None,
        *, client: str | None = None, timeout: float = 60.0,
    ) -> tuple[int, dict]:
        """Round-trip with backoff; returns the first conclusive reply.

        Conclusive means any status outside :data:`RETRYABLE_STATUS`
        (transport failures are retryable too).  When the budget runs
        out the last retryable status is returned as-is, or
        :data:`EXHAUSTED` for a transport failure.
        """
        delay = self.policy.base_s
        attempt = 0
        while True:
            status, doc = self._once(method, path, body, client, timeout)
            if status != 0 and status not in RETRYABLE_STATUS:
                return status, doc
            if attempt >= self.policy.attempts:
                self.give_ups += 1
                return status or EXHAUSTED, doc
            attempt += 1
            self.retries += 1
            time.sleep(min(delay, self.policy.cap_s)
                       * (0.5 + self._rng.random()))
            delay *= 2

    def wait(self, job_id: str, *, timeout: float = 120.0) -> dict | None:
        """Poll a job until terminal.

        Returns the terminal detail document, or ``None`` when the job
        vanished (404) or polling gave up — after a crash/restart cycle
        a *finished* job is compacted out of the journal, so its id no
        longer resolves; the caller resubmits the payload, which is
        idempotent and cache-served.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, doc = self.request("GET", f"/v1/jobs/{job_id}")
            if status != 200:
                return None
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise TimeoutError(f"job {job_id} still {doc['state']}")
            time.sleep(0.02)


def bench_payloads(jobs: int, *, scale: float) -> list[dict]:
    """*jobs* single-cell sweep payloads cycling app × config × threads."""
    payloads = []
    for i in range(jobs):
        app = BENCH_APPS[i % len(BENCH_APPS)]
        cfg = BENCH_CONFIGS[(i // len(BENCH_APPS)) % len(BENCH_CONFIGS)]
        # powers of two only: fft needs threads to divide its problem size
        threads = 2 ** (
            1 + (i // (len(BENCH_APPS) * len(BENCH_CONFIGS))) % 3
        )
        payloads.append({
            "schema": 1,
            "kind": "sweep",
            "client": f"bench-{i % 16}",
            "spec": {
                "model": "intra",
                "apps": [app],
                "configs": [cfg],
                "scale": scale,
                "num_threads": threads,
            },
        })
    return payloads


def _direct_results(payloads: list[dict], cache_dir: str) -> dict[str, dict]:
    """Ground truth: run every distinct bench cell directly, no server."""
    seen: dict[str, SweepCell] = {}
    for p in payloads:
        spec = p["spec"]
        app, cfg = spec["apps"][0], spec["configs"][0]
        cell = SweepCell.make(
            "intra", app, intra_config(cfg),
            scale=spec["scale"], num_threads=spec["num_threads"],
        )
        seen.setdefault(f"{app}/{cfg}/t{spec['num_threads']}", cell)
    keys = sorted(seen)
    ex = SweepExecutor(jobs=1, cache=ResultCache(cache_dir))
    results = ex.run_cells([seen[k] for k in keys])
    return {k: r.to_dict() for k, r in zip(keys, results)}


@dataclass
class _PassStats:
    """One measured pass: per-job latencies plus aggregate cache counters."""

    latencies: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0
    divergences: int = 0
    retries: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        lat = sorted(self.latencies)
        total = self.cache_hits + self.cache_misses
        return {
            "jobs": len(self.latencies),
            "seconds": round(self.seconds, 3),
            "jobs_per_s": round(len(self.latencies) / self.seconds, 1)
            if self.seconds else None,
            "p50_ms": round(percentile(lat, 50) * 1000, 2) if lat else None,
            "p99_ms": round(percentile(lat, 99) * 1000, 2) if lat else None,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_ratio": round(self.cache_hits / total, 4) if total else None,
            "failures": self.failures,
            "divergences": self.divergences,
            "retries": self.retries,
        }


def _run_pass(
    srv: LocalServer, payloads: list[dict], truth: dict[str, dict],
    *, concurrency: int,
) -> _PassStats:
    """Submit every payload from *concurrency* client threads; verify all.

    Each thread drives its own :class:`ResilientClient`: 429s (quota,
    backpressure) and 503s back off with seeded jitter instead of
    spin-resubmitting, and the retries burned are rolled up into the
    pass report.
    """
    stats = _PassStats()
    lock = threading.Lock()
    work = list(payloads)
    t0 = time.perf_counter()

    def one(client: ResilientClient, payload: dict) -> None:
        t = time.perf_counter()
        status, doc = client.request(
            "POST", "/v1/jobs", payload, client=payload["client"]
        )
        if status != 200:
            with lock:
                stats.failures += 1
            return
        final = client.wait(doc["id"])
        latency = time.perf_counter() - t
        spec = payload["spec"]
        app, cfg = spec["apps"][0], spec["configs"][0]
        key = f"{app}/{cfg}/t{spec['num_threads']}"
        served = (
            (final or {}).get("result", {}).get("matrix", {})
            .get(app, {}).get(cfg)
        )
        with lock:
            stats.latencies.append(latency)
            if final is None or final["state"] != "done":
                stats.failures += 1
            elif served != truth[key]:
                stats.divergences += 1
            if final is not None:
                stats.cache_hits += final["cache_hits"]
                stats.cache_misses += final["cache_misses"]

    def drain(idx: int) -> None:
        client = ResilientClient(
            srv.config.host, srv.port,
            policy=RetryPolicy(attempts=12), stream=f"pass-{idx}",
        )
        while True:
            with lock:
                if not work:
                    break
                payload = work.pop()
            one(client, payload)
        with lock:
            stats.retries += client.retries

    threads = [
        threading.Thread(target=drain, args=(i,), name=f"bench-client-{i}")
        for i in range(concurrency)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    stats.seconds = time.perf_counter() - t0
    return stats


def bench_serve(
    *,
    jobs: int = 120,
    concurrency: int = 24,
    workers: int = 8,
    scale: float = 0.3,
    out: str | None = "BENCH_serve.json",
) -> dict:
    """Run the cold+hot serving benchmark; optionally write ``out``.

    Returns the benchmark document.  ``jobs`` counts submissions per pass
    (ISSUE 8's acceptance bar is >= 100), ``concurrency`` the client
    threads driving them, ``workers`` the server pool width.
    """
    payloads = bench_payloads(jobs, scale=scale)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        truth = _direct_results(payloads, f"{tmp}/truth-cache")
        config = ServerConfig(
            workers=workers,
            quota=64,
            queue_limit=4096,
            cache_dir=f"{tmp}/serve-cache",
        )
        with LocalServer(config) as srv:
            cold = _run_pass(srv, payloads, truth, concurrency=concurrency)
            hot = _run_pass(srv, payloads, truth, concurrency=concurrency)
            status, metrics = srv.request("GET", "/v1/metrics")
    doc = {
        "name": "serve",
        "git_rev": git_rev(),
        "jobs_per_pass": jobs,
        "concurrency": concurrency,
        "workers": workers,
        "scale": scale,
        "distinct_cells": len(truth),
        "cold": cold.to_dict(),
        "hot": hot.to_dict(),
        "server_units_run": metrics.get("units_run") if status == 200 else None,
        "speedup_hot_vs_cold": round(cold.seconds / hot.seconds, 2)
        if hot.seconds else None,
    }
    if out:
        write_bench_json(doc, None if out == "BENCH_serve.json" else out)
    return doc
