"""Simulation-as-a-service: the ``repro serve`` job server.

One process multiplexes many concurrent clients over the sweep engine:
:mod:`repro.serve.jobs` validates requests against the versioned job
schema and lowers them to sweep-cell work units, :mod:`repro.serve.pool`
runs those units on a bounded worker pool fronted by the shared result
cache, :mod:`repro.serve.server` is the asyncio HTTP/JSON front end
(lifecycle, streaming, quotas, graceful drain), and
:mod:`repro.serve.loadgen` is the benchmark client behind
``repro serve --bench``.  :mod:`repro.serve.journal` adds durability —
a fsync'd write-ahead journal so ``--resume`` recovers interrupted jobs
after a crash.  API reference: ``docs/SERVICE.md``; durability story:
``docs/RESILIENCE.md``.
"""

from repro.serve.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    JOB_STATES,
    MAX_UNITS,
    TERMINAL_STATES,
    CompiledJob,
    JobError,
    Unit,
    compile_job,
)
from repro.serve.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalState,
    RecoveredJob,
    job_digest,
)
from repro.serve.loadgen import LocalServer, bench_serve
from repro.serve.pool import (
    UnitOutcome,
    WorkerCrash,
    WorkerFaultPlan,
    WorkerPool,
    WorkItem,
)
from repro.serve.server import Job, JobServer, ServerConfig, run

__all__ = [
    "JOB_KINDS",
    "JOB_SCHEMA",
    "JOB_STATES",
    "MAX_UNITS",
    "TERMINAL_STATES",
    "JOURNAL_SCHEMA",
    "CompiledJob",
    "Job",
    "JobError",
    "JobServer",
    "Journal",
    "JournalState",
    "LocalServer",
    "RecoveredJob",
    "ServerConfig",
    "Unit",
    "UnitOutcome",
    "WorkItem",
    "WorkerCrash",
    "WorkerFaultPlan",
    "WorkerPool",
    "bench_serve",
    "compile_job",
    "job_digest",
    "run",
]
