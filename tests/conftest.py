"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    Machine,
    inter_block_machine,
    intra_block_machine,
)
from repro.core.config import (
    INTER_CONFIGS,
    INTRA_CONFIGS,
    ExperimentConfig,
)


@pytest.fixture
def small_intra():
    """A 4-core single-block machine (fast tests)."""
    return intra_block_machine(4)


@pytest.fixture
def small_inter():
    """A 2-block × 2-core machine with L3 (fast tests)."""
    return inter_block_machine(2, 2)


@pytest.fixture
def paper_intra():
    """The paper's 16-core intra-block machine."""
    return intra_block_machine(16)


@pytest.fixture
def paper_inter():
    """The paper's 4-block × 8-core machine."""
    return inter_block_machine(4, 8)


def run_program(machine_params, config: ExperimentConfig, program, *,
                num_threads: int, arrays: dict[str, int] | None = None):
    """Build a machine, allocate arrays, run one SPMD program.

    Returns (machine, stats).  ``program(ctx, arrs)`` receives the dict of
    allocated SharedArrays.
    """
    m = Machine(machine_params, config, num_threads=num_threads)
    arrs = {
        name: m.array(name, size) for name, size in (arrays or {}).items()
    }
    m.spawn_all(lambda ctx: program(ctx, arrs))
    stats = m.run()
    return m, stats


INTRA_BY_NAME = {cfg.name: cfg for cfg in INTRA_CONFIGS}
INTER_BY_NAME = {cfg.name: cfg for cfg in INTER_CONFIGS}
