"""Tests for the hardware-incoherent protocol semantics (Sections III-B, IV-B, V-B).

These drive the protocol object directly (no event engine) and check the
paper-defined state semantics: staleness without WB/INV, dirty-word-only
writeback, merge without clobber, INV-writes-back-dirty-first, MEB/IEB
behavior, and level-adaptive resolution through the ThreadMap.
"""

import pytest

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.threadmap import ThreadMapTable
from repro.common.errors import ConfigError
from repro.common.params import inter_block_machine, intra_block_machine
from repro.noc.placement import identity_placement
from repro.sim.stats import MachineStats, TrafficCat


def make_intra(**kw):
    machine = intra_block_machine(4)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    return IncoherentProtocol(hier, **kw), hier, stats


def make_inter(**kw):
    machine = inter_block_machine(2, 2)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    tmap = ThreadMapTable(identity_placement(machine, machine.num_cores))
    return IncoherentProtocol(hier, threadmap=tmap, **kw), hier, stats


ADDR = 0x1000  # an arbitrary line-aligned address


class TestBasicSemantics:
    def test_read_after_write_same_core(self):
        proto, _, _ = make_intra()
        proto.write(0, ADDR, 42)
        _, value = proto.read(0, ADDR)
        assert value == 42

    def test_staleness_without_wb(self):
        """A peer never sees an un-written-back update (no snooping)."""
        proto, _, _ = make_intra()
        proto.read(1, ADDR)  # core 1 caches the (zero) line
        proto.write(0, ADDR, 99)
        _, value = proto.read(1, ADDR)
        assert value == 0  # stale, by design

    def test_staleness_without_inv(self):
        """WB alone is insufficient: the consumer must self-invalidate."""
        proto, _, _ = make_intra()
        proto.read(1, ADDR)
        proto.write(0, ADDR, 99)
        proto.wb_range(0, ADDR, 4)
        _, value = proto.read(1, ADDR)
        assert value == 0  # consumer kept its stale copy

    def test_wb_plus_inv_communicates(self):
        proto, _, _ = make_intra()
        proto.read(1, ADDR)
        proto.write(0, ADDR, 99)
        proto.wb_range(0, ADDR, 4)
        proto.inv_range(1, ADDR, 4)
        _, value = proto.read(1, ADDR)
        assert value == 99

    def test_cold_read_sees_memory(self):
        proto, hier, _ = make_intra()
        hier.memory.write_word(ADDR // 4, 7.5)
        _, value = proto.read(2, ADDR)
        assert value == 7.5


class TestDirtyWordWriteback:
    def test_wb_leaves_line_clean_valid(self):
        proto, hier, _ = make_intra()
        proto.write(0, ADDR, 5)
        proto.wb_range(0, ADDR, 4)
        line = hier.l1s[0].lookup(hier.line_of(ADDR))
        assert line is not None and not line.dirty
        _, value = proto.read(0, ADDR)  # still a hit with the right value
        assert value == 5

    def test_wb_writes_only_dirty_words(self):
        """Two cores dirty different words of one line; neither clobbers."""
        proto, _, _ = make_intra()
        word0, word1 = ADDR, ADDR + 4
        proto.read(0, word0)
        proto.read(1, word1)  # both cache the full line
        proto.write(0, word0, "a")
        proto.write(1, word1, "b")
        proto.wb_range(0, word0, 4)
        proto.wb_range(1, word1, 4)
        proto.inv_range(2, word0, 8)
        _, v0 = proto.read(2, word0)
        _, v1 = proto.read(2, word1)
        assert (v0, v1) == ("a", "b")

    def test_wb_noop_when_clean(self):
        proto, _, stats = make_intra()
        proto.read(0, ADDR)
        before = stats.traffic[TrafficCat.WRITEBACK]
        proto.wb_range(0, ADDR, 4)
        assert stats.traffic[TrafficCat.WRITEBACK] == before

    def test_wb_expands_to_line_boundaries(self):
        """WB of one word writes back all dirty words of the line."""
        proto, _, _ = make_intra()
        proto.write(0, ADDR, 1)
        proto.write(0, ADDR + 8, 2)  # same line, different word
        proto.wb_range(0, ADDR, 4)
        proto.inv_range(1, ADDR + 8, 4)
        _, value = proto.read(1, ADDR + 8)
        assert value == 2

    def test_wb_range_covers_multiple_lines(self):
        proto, _, _ = make_intra()
        proto.write(0, ADDR, "x")
        proto.write(0, ADDR + 64, "y")
        proto.wb_range(0, ADDR, 128)
        proto.inv_range(1, ADDR, 128)
        _, v0 = proto.read(1, ADDR)
        _, v1 = proto.read(1, ADDR + 64)
        assert (v0, v1) == ("x", "y")


class TestInvalidation:
    def test_inv_drops_whole_line(self):
        proto, hier, _ = make_intra()
        proto.read(0, ADDR)
        proto.inv_range(0, ADDR, 4)
        assert hier.l1s[0].lookup(hier.line_of(ADDR)) is None

    def test_inv_writes_back_dirty_first(self):
        """INV must not lose co-located updates (Section III-B)."""
        proto, _, _ = make_intra()
        proto.write(0, ADDR, 123)
        proto.inv_range(0, ADDR, 4)
        _, value = proto.read(0, ADDR)  # refetch from L2
        assert value == 123

    def test_inv_all_empties_cache(self):
        proto, hier, _ = make_intra()
        for k in range(8):
            proto.read(0, ADDR + 64 * k)
        proto.inv_all(0)
        assert hier.l1s[0].occupancy == 0

    def test_wb_all_writes_all_dirty_lines(self):
        proto, hier, _ = make_intra()
        for k in range(4):
            proto.write(0, ADDR + 64 * k, k)
        proto.wb_all(0)
        assert not any(l.dirty for l in hier.l1s[0].lines())
        for k in range(4):
            proto.inv_range(1, ADDR + 64 * k, 4)
            _, v = proto.read(1, ADDR + 64 * k)
            assert v == k


class TestMEBIntegration:
    def test_wb_all_via_meb_writes_epoch_lines(self):
        proto, hier, _ = make_intra(use_meb=True)
        proto.write(0, ADDR, "pre")  # dirtied before the epoch
        proto.epoch_begin(0, record_meb=True, ieb_mode=False)
        proto.write(0, ADDR + 64, "cs")
        lat_meb = proto.wb_all(0, via_meb=True)
        # Only the epoch line was written back; the pre-epoch line stays dirty.
        assert hier.l1s[0].lookup(hier.line_of(ADDR)).dirty
        assert not hier.l1s[0].lookup(hier.line_of(ADDR + 64)).dirty
        # And the MEB path skips the tag walk, so it must be cheaper than
        # a full WB ALL on a dirty cache.
        proto2, _, _ = make_intra(use_meb=True)
        for k in range(16):
            proto2.write(0, ADDR + 64 * k, k)
        lat_full = proto2.wb_all(0, via_meb=False)
        assert lat_meb < lat_full

    def test_meb_overflow_falls_back_to_full_wb(self):
        proto, hier, _ = make_intra(use_meb=True)
        cap = proto.machine.buffers.meb_entries
        proto.epoch_begin(0, record_meb=True, ieb_mode=False)
        for k in range(cap + 4):
            proto.write(0, ADDR + 64 * k, k)
        proto.wb_all(0, via_meb=True)
        # Overflow: everything must still be written back (correctness).
        assert not any(l.dirty for l in hier.l1s[0].lines())

    def test_meb_disabled_config_ignores_epochs(self):
        proto, hier, _ = make_intra(use_meb=False)
        proto.epoch_begin(0, record_meb=True, ieb_mode=False)
        proto.write(0, ADDR, 1)
        proto.wb_all(0, via_meb=True)  # via_meb ignored: full WB happens
        assert not hier.l1s[0].lookup(hier.line_of(ADDR)).dirty


class TestIEBIntegration:
    def test_armed_read_refreshes_stale_line(self):
        proto, _, _ = make_intra(use_ieb=True)
        proto.read(1, ADDR)  # stale copy
        proto.write(0, ADDR, 77)
        proto.wb_range(0, ADDR, 4)
        proto.epoch_begin(1, record_meb=False, ieb_mode=True)
        _, value = proto.read(1, ADDR)  # no INV ALL needed
        assert value == 77

    def test_second_read_is_cheap(self):
        proto, _, _ = make_intra(use_ieb=True)
        proto.write(0, ADDR, 1)
        proto.wb_range(0, ADDR, 4)
        proto.read(1, ADDR)
        proto.epoch_begin(1, record_meb=False, ieb_mode=True)
        lat_first, _ = proto.read(1, ADDR)  # refresh (miss)
        lat_second, _ = proto.read(1, ADDR)  # IEB hit: normal L1 hit
        assert lat_second < lat_first

    def test_own_dirty_word_not_refreshed(self):
        proto, _, stats = make_intra(use_ieb=True)
        proto.epoch_begin(0, record_meb=False, ieb_mode=True)
        proto.write(0, ADDR, 5)
        misses_before = stats.per_core[0].l1_misses
        _, value = proto.read(0, ADDR)
        assert value == 5
        assert stats.per_core[0].l1_misses == misses_before

    def test_ieb_overflow_causes_redundant_refresh_but_stays_correct(self):
        proto, _, _ = make_intra(use_ieb=True)
        cap = proto.machine.buffers.ieb_entries
        proto.epoch_begin(1, record_meb=False, ieb_mode=True)
        addrs = [ADDR + 64 * k for k in range(cap + 2)]
        for a in addrs:
            proto.read(1, a)
        # Re-reading the first (evicted from IEB) address invalidates again.
        inv_before = proto.hier.stats.per_core[1].lines_invalidated
        proto.read(1, addrs[0])
        assert proto.hier.stats.per_core[1].lines_invalidated > inv_before

    def test_epoch_end_disarms(self):
        proto, _, _ = make_intra(use_ieb=True)
        proto.epoch_begin(0, record_meb=False, ieb_mode=True)
        proto.epoch_end(0)
        assert not proto.iebs[0].armed


class TestLevelAdaptive:
    def test_wb_cons_local_stays_in_block(self):
        proto, _, stats = make_inter()
        proto.write(0, ADDR, 1)  # cores 0,1 share block 0
        proto.wb_cons(0, ADDR, 4, cons_tid=1)
        assert stats.local_wb_lines == 1
        assert stats.global_wb_lines == 0

    def test_wb_cons_remote_reaches_l3(self):
        proto, hier, stats = make_inter()
        proto.write(0, ADDR, 9)
        proto.wb_cons(0, ADDR, 4, cons_tid=2)  # thread 2 is in block 1
        assert stats.global_wb_lines == 1
        l3_line = hier.l3_bank_of(hier.line_of(ADDR)).lookup(hier.line_of(ADDR))
        assert l3_line is not None and l3_line.data[0] == 9

    def test_inv_prod_local_keeps_l2(self):
        proto, hier, stats = make_inter()
        proto.read(0, ADDR)  # fills L1 and block-0 L2
        proto.inv_prod(0, ADDR, 4, prod_tid=1)
        assert stats.local_inv_lines == 1
        assert hier.l2_lookup(0, hier.line_of(ADDR)) is not None
        assert hier.l1s[0].lookup(hier.line_of(ADDR)) is None

    def test_inv_prod_remote_drops_l2_too(self):
        proto, hier, stats = make_inter()
        proto.read(0, ADDR)
        proto.inv_prod(0, ADDR, 4, prod_tid=3)
        assert stats.global_inv_lines == 1
        assert hier.l2_lookup(0, hier.line_of(ADDR)) is None

    def test_cross_block_communication_end_to_end(self):
        """Producer in block 0, consumer in block 1, via WB_CONS/INV_PROD."""
        proto, _, _ = make_inter()
        proto.read(2, ADDR)  # consumer has a stale copy (L1 + its L2)
        proto.write(0, ADDR, "fresh")
        proto.wb_cons(0, ADDR, 4, cons_tid=2)
        proto.inv_prod(2, ADDR, 4, prod_tid=0)
        _, value = proto.read(2, ADDR)
        assert value == "fresh"

    def test_same_block_stale_after_remote_wb(self):
        """WB_CONS leaves other same-block L1s stale (Section V-B caveat)."""
        proto, _, _ = make_inter()
        proto.read(1, ADDR)
        proto.write(0, ADDR, 5)
        proto.wb_cons(0, ADDR, 4, cons_tid=2)
        _, value = proto.read(1, ADDR)
        assert value == 0  # stale: no INV was performed by core 1

    def test_wb_l3_always_global(self):
        proto, _, stats = make_inter()
        proto.write(0, ADDR, 1)
        proto.wb_l3(0, ADDR, 4)
        assert stats.global_wb_lines == 1

    def test_inv_all_l2_clears_whole_block_l2(self):
        proto, hier, _ = make_inter()
        for k in range(4):
            proto.read(0, ADDR + 64 * k)
        proto.inv_all_l2(0)
        assert all(bank.occupancy == 0 for bank in hier.l2_banks[0])
        assert hier.l1s[0].occupancy == 0

    def test_wb_all_l3_pushes_block_dirt(self):
        proto, hier, _ = make_inter()
        proto.write(0, ADDR, 3)
        proto.wb_all_l3(0)
        la = hier.line_of(ADDR)
        assert hier.l3_bank_of(la).lookup(la).data[0] == 3

    def test_level_adaptive_requires_threadmap(self):
        proto, _, _ = make_intra()
        with pytest.raises(ConfigError):
            proto.wb_cons(0, ADDR, 4, cons_tid=1)

    def test_wb_cons_all_respects_locality(self):
        proto, hier, _ = make_inter()
        proto.write(0, ADDR, 4)
        proto.wb_cons_all(0, cons_tid=1)  # local: the L3 keeps stale data
        la = hier.line_of(ADDR)
        l3_line = hier.l3_bank_of(la).lookup(la)
        assert l3_line is None or l3_line.data[0] != 4
        proto.write(0, ADDR, 5)
        proto.wb_cons_all(0, cons_tid=2)  # remote: reaches L3
        assert hier.l3_bank_of(la).lookup(la).data[0] == 5


class TestFinalize:
    def test_finalize_flushes_all_levels_to_memory(self):
        proto, hier, _ = make_inter()
        proto.write(0, ADDR, 11)
        proto.write(3, ADDR + 64, 22)
        proto.finalize()
        assert hier.memory.read_word(ADDR // 4) == 11
        assert hier.memory.read_word((ADDR + 64) // 4) == 22
