"""StaleRead diagnostics: deterministic, named, and greppable messages."""

from __future__ import annotations

from repro.coherence.incoherent import StaleRead
from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BASE
from repro.core.machine import Machine
from repro.isa import ops as isa


def test_repr_names_core_addr_and_values():
    event = StaleRead(3, 0x1040, got=7, latest=9)
    r = repr(event)
    assert r == "StaleRead(core=3, addr=0x1040, got=7, latest=9)"
    # repr is deterministic (no object ids) and eval-roundtrip-shaped.
    assert r == repr(StaleRead(3, 0x1040, got=7, latest=9))


def test_str_is_a_readable_sentence():
    s = str(StaleRead(1, 0x80, got="old", latest="new"))
    assert s == (
        "core 1 read stale value 'old' at address 0x80 "
        "(latest value is 'new')"
    )


def test_detector_logs_the_actual_stale_read():
    """An unannotated handoff produces a StaleRead naming the right cell."""
    machine = Machine(
        intra_block_machine(2), INTRA_BASE, num_threads=2,
        detect_staleness=True,
    )
    data = machine.array("data", 1)
    addr = data.addr(0)

    def producer(ctx):
        _ = yield from ctx.load(addr)
        yield isa.Write(addr, "fresh")
        yield isa.FlagSet(1, 1)  # deliberately no WB

    def consumer(ctx):
        _ = yield from ctx.load(addr)  # warm a soon-stale copy
        yield isa.FlagWait(1, 1)  # deliberately no INV
        _ = yield from ctx.load(addr)

    machine.spawn(producer)
    machine.spawn(consumer)
    machine.run()
    assert machine.stale_reads, "detector missed the stale read"
    event = machine.stale_reads[0]
    assert event.core == 1
    assert event.byte_addr == addr
    assert event.latest == "fresh"
    assert f"{addr:#x}" in repr(event)
    assert "stale" in str(event)
