"""Tests for the per-L2 ThreadMap table (Section V-B)."""

import pytest

from repro.coherence.threadmap import ThreadMap, ThreadMapTable
from repro.common.errors import ConfigError
from repro.common.params import inter_block_machine
from repro.noc.placement import Placement, identity_placement, round_robin_placement


def test_threadmap_membership():
    tm = ThreadMap(0, {0, 1, 2})
    assert tm.is_local(1)
    assert not tm.is_local(5)
    assert len(tm) == 3


def test_table_from_identity_placement():
    machine = inter_block_machine(4, 8)
    table = ThreadMapTable(identity_placement(machine, 32))
    assert table.for_block(0).thread_ids == frozenset(range(8))
    assert table.for_block(3).thread_ids == frozenset(range(24, 32))


def test_peer_is_local_resolution():
    machine = inter_block_machine(4, 8)
    table = ThreadMapTable(identity_placement(machine, 32))
    # Core 0 is in block 0; thread 7 also runs there, thread 8 does not.
    assert table.peer_is_local(my_core=0, peer_tid=7)
    assert not table.peer_is_local(my_core=0, peer_tid=8)


def test_round_robin_changes_locality():
    machine = inter_block_machine(4, 8)
    table = ThreadMapTable(round_robin_placement(machine, 8))
    # Consecutive threads land in different blocks.
    assert not table.peer_is_local(my_core=0, peer_tid=1)
    # Thread 4 wraps back to block 0.
    assert table.peer_is_local(my_core=0, peer_tid=4)


def test_custom_permutation_resolution():
    machine = inter_block_machine(2, 2)
    table = ThreadMapTable(Placement(machine, (3, 0, 1, 2)))
    # Thread 0 runs on core 3 (block 1); thread 3 on core 2 (block 1).
    assert table.peer_is_local(my_core=3, peer_tid=3)
    assert not table.peer_is_local(my_core=3, peer_tid=1)


def test_block_bounds_checked():
    machine = inter_block_machine(2, 2)
    table = ThreadMapTable(identity_placement(machine, 4))
    with pytest.raises(ConfigError):
        table.for_block(2)
