"""Edge cases for the incoherent protocol and epoch machinery."""

import pytest

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.common.params import intra_block_machine
from repro.sim.stats import MachineStats

ADDR = 0x3000


def make(**kw):
    machine = intra_block_machine(4)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    return IncoherentProtocol(hier, **kw), hier, stats


def test_wb_of_unmapped_address_is_cheap_noop():
    proto, _, _ = make()
    lat = proto.wb_range(0, ADDR, 64)
    assert lat <= proto.hier.l1_latency() + 1


def test_inv_of_nonresident_lines_is_cheap():
    proto, _, _ = make()
    lat = proto.inv_range(0, ADDR, 256)
    assert lat <= proto.hier.l1_latency() + 4


def test_zero_length_range_touches_nothing():
    proto, hier, _ = make()
    proto.write(0, ADDR, 9)
    proto.wb_range(0, ADDR, 0)
    line = hier.l1s[0].lookup(hier.line_of(ADDR))
    assert line.dirty  # nothing was written back


def test_epoch_end_without_begin_is_safe():
    proto, _, _ = make(use_meb=True, use_ieb=True)
    proto.epoch_end(0)  # must not raise
    assert not proto.mebs[0].recording
    assert not proto.iebs[0].armed


def test_nested_epoch_begin_restarts_buffers():
    proto, _, _ = make(use_meb=True)
    proto.epoch_begin(0, record_meb=True, ieb_mode=False)
    proto.write(0, ADDR, 1)
    assert len(proto.mebs[0]) == 1
    proto.epoch_begin(0, record_meb=True, ieb_mode=False)
    assert len(proto.mebs[0]) == 0  # fresh epoch


def test_wb_all_latency_grows_with_dirty_lines():
    proto, _, _ = make()
    proto.write(0, ADDR, 1)
    lat_one = proto.wb_all(0)
    proto2, _, _ = make()
    for k in range(32):
        proto2.write(0, ADDR + 64 * k, k)
    lat_many = proto2.wb_all(0)
    assert lat_many > lat_one


def test_inv_all_latency_includes_tag_walk_even_when_empty():
    proto, hier, _ = make()
    lat = proto.inv_all(0)
    assert lat >= hier.tag_walk_latency(hier.l1s[0])


def test_per_core_buffers_are_independent():
    proto, _, _ = make(use_meb=True, use_ieb=True)
    proto.epoch_begin(0, record_meb=True, ieb_mode=True)
    proto.write(0, ADDR, 1)
    assert len(proto.mebs[0]) == 1
    assert len(proto.mebs[1]) == 0
    assert not proto.iebs[1].armed


def test_meb_not_polluted_by_rewrites_of_dirty_word():
    """Only clean→dirty transitions insert into the MEB (Section IV-B.1)."""
    proto, _, _ = make(use_meb=True)
    proto.epoch_begin(0, record_meb=True, ieb_mode=False)
    for _ in range(5):
        proto.write(0, ADDR, 1)  # same word: one transition
    assert proto.mebs[0].insertions == 1


def test_write_after_wb_redirties_and_reinserts():
    proto, _, _ = make(use_meb=True)
    proto.epoch_begin(0, record_meb=True, ieb_mode=False)
    proto.write(0, ADDR, 1)
    proto.wb_all(0, via_meb=True)  # line now clean; MEB entry may be stale
    proto.write(0, ADDR, 2)  # clean→dirty again
    proto.wb_all(0, via_meb=True)
    proto.inv_range(1, ADDR, 4)
    _, v = proto.read(1, ADDR)
    assert v == 2


def test_inv_l2_on_intra_machine_preserves_dirty_data():
    """Regression: explicit-level INV_L2 without an L3 must spill to memory."""
    proto, hier, _ = make()
    proto.write(0, ADDR, 77)
    proto.wb_range(0, ADDR, 4)  # dirty words now parked in the L2
    proto.inv_l2(0, ADDR, 4)  # no L3 below: must not drop them
    _, value = proto.read(0, ADDR)
    assert value == 77


def test_wb_l3_on_intra_machine_reaches_memory():
    proto, hier, _ = make()
    proto.write(0, ADDR, 55)
    proto.wb_l3(0, ADDR, 4)
    assert hier.memory.read_word(ADDR // 4) == 55
