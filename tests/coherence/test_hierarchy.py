"""Tests for the shared physical hierarchy helpers."""

import pytest

from repro.coherence.hierarchy import Hierarchy
from repro.common.errors import AddressError
from repro.common.params import inter_block_machine, intra_block_machine
from repro.mem.line import CacheLine
from repro.sim.stats import MachineStats, TrafficCat


@pytest.fixture
def intra():
    machine = intra_block_machine(16)
    return Hierarchy(machine, MachineStats.for_cores(16))


@pytest.fixture
def inter():
    machine = inter_block_machine(4, 8)
    return Hierarchy(machine, MachineStats.for_cores(32))


class TestAddressArithmetic:
    def test_line_and_word_of(self, intra):
        assert intra.line_of(0) == 0
        assert intra.line_of(63) == 0
        assert intra.line_of(64) == 1
        assert intra.word_of(0) == 0
        assert intra.word_of(4) == 1
        assert intra.word_of(68) == 1

    def test_negative_address_rejected(self, intra):
        with pytest.raises(AddressError):
            intra.line_of(-4)

    def test_lines_overlapping(self, intra):
        assert list(intra.lines_overlapping(0, 64)) == [0]
        assert list(intra.lines_overlapping(60, 8)) == [0, 1]
        assert list(intra.lines_overlapping(64, 128)) == [1, 2]
        assert list(intra.lines_overlapping(0, 0)) == []
        assert list(intra.lines_overlapping(100, 1)) == [1]


class TestBankMapping:
    def test_l2_bank_interleaves_by_line(self, inter):
        machine = inter.machine
        for la in range(32):
            bank = inter.l2_bank_of(0, la)
            assert bank is inter.l2_banks[0][la % machine.cores_per_block]

    def test_l2_banks_are_per_block(self, inter):
        assert inter.l2_bank_of(0, 5) is not inter.l2_bank_of(1, 5)

    def test_l3_bank_interleaves(self, inter):
        for la in range(8):
            assert inter.l3_bank_of(la) is inter.l3_banks[la % 4]

    def test_intra_has_no_l3(self, intra):
        assert not intra.has_l3
        assert intra.l3_banks == []


class TestLatencies:
    def test_l1_latency_from_table3(self, intra):
        assert intra.l1_latency() == 2

    def test_l2_local_vs_remote_bank(self, intra):
        # Line mapping to the core's own bank: just the bank round trip.
        core = 0
        local_line = 0  # bank 0 co-located with core 0
        assert intra.l2_latency(core, local_line) == 11
        # A far bank adds mesh hops.
        assert intra.l2_latency(core, 15) > 11

    def test_l3_latency_includes_mesh(self, inter):
        lat = inter.l3_latency(0, 0)
        assert lat >= 20

    def test_mem_latency_at_least_150(self, intra):
        assert intra.mem_latency(5) >= 150

    def test_tag_walk_scales_with_sets(self, intra):
        l1_walk = intra.tag_walk_latency(intra.l1s[0])
        l2_walk = intra.tag_walk_latency(intra.l2_banks[0][0])
        assert l1_walk == 32  # 128 sets / 4 per cycle
        assert l2_walk > l1_walk


class TestTrafficHelpers:
    def test_line_transfer_flits(self, intra):
        intra.count_line_transfer(TrafficCat.LINEFILL)
        assert intra.stats.traffic[TrafficCat.LINEFILL] == 5  # header + 4

    def test_partial_transfer_scales_with_words(self, intra):
        intra.count_partial_transfer(TrafficCat.WRITEBACK, 1)
        one_word = intra.stats.traffic[TrafficCat.WRITEBACK]
        intra.count_partial_transfer(TrafficCat.WRITEBACK, 16)
        assert intra.stats.traffic[TrafficCat.WRITEBACK] - one_word > one_word

    def test_mem_write_back_respects_mask(self, intra):
        line = CacheLine(3, ["a"] * 16)
        line.mark_dirty(2)
        intra.mem_write_back(line)
        base = 3 * 16
        assert intra.memory.read_word(base + 2) == "a"
        assert intra.memory.read_word(base + 1) == 0

    def test_mem_write_full_line(self, intra):
        line = CacheLine(4, list(range(16)))
        intra.mem_write_full_line(line)
        assert intra.mem_read_line(4) == list(range(16))
