"""Tests for the MEB and IEB entry buffers (Section IV-B)."""

from repro.coherence.ieb import IEB
from repro.coherence.meb import MEB


class TestMEB:
    def test_records_only_while_armed(self):
        meb = MEB(4)
        meb.record_write(1)
        assert len(meb) == 0
        meb.begin_epoch()
        meb.record_write(1)
        assert meb.line_ids() == {1}
        meb.end_epoch()
        meb.record_write(2)
        assert meb.line_ids() == {1}  # disarmed: unchanged

    def test_duplicate_lines_stored_once(self):
        meb = MEB(4)
        meb.begin_epoch()
        for _ in range(3):
            meb.record_write(9)
        assert len(meb) == 1
        assert meb.insertions == 1

    def test_overflow_disables_buffer(self):
        meb = MEB(2)
        meb.begin_epoch()
        for lid in range(3):
            meb.record_write(lid)
        assert meb.overflowed
        assert not meb.usable  # WB ALL must fall back to a full walk
        assert meb.overflow_events == 1

    def test_epoch_restart_clears_overflow(self):
        meb = MEB(1)
        meb.begin_epoch()
        meb.record_write(0)
        meb.record_write(1)
        assert meb.overflowed
        meb.begin_epoch()
        assert not meb.overflowed and len(meb) == 0
        assert meb.usable

    def test_usable_requires_recording(self):
        meb = MEB(4)
        assert not meb.usable
        meb.begin_epoch()
        assert meb.usable

    def test_zero_capacity_always_overflows(self):
        meb = MEB(0)
        meb.begin_epoch()
        meb.record_write(0)
        assert meb.overflowed


class TestIEB:
    def test_starts_epoch_empty(self):
        ieb = IEB(4)
        ieb.begin_epoch()
        assert len(ieb) == 0 and ieb.armed

    def test_insert_and_contains(self):
        ieb = IEB(4)
        ieb.begin_epoch()
        ieb.insert(10)
        assert ieb.contains(10)
        assert not ieb.contains(11)

    def test_fifo_eviction_on_overflow(self):
        ieb = IEB(2)
        ieb.begin_epoch()
        ieb.insert(1)
        ieb.insert(2)
        ieb.insert(3)  # evicts 1
        assert not ieb.contains(1)
        assert ieb.contains(2) and ieb.contains(3)
        assert ieb.evictions == 1

    def test_duplicate_insert_does_not_evict(self):
        ieb = IEB(2)
        ieb.begin_epoch()
        ieb.insert(1)
        ieb.insert(2)
        ieb.insert(1)  # already present
        assert ieb.contains(1) and ieb.contains(2)
        assert ieb.evictions == 0

    def test_end_epoch_disarms_and_clears(self):
        ieb = IEB(4)
        ieb.begin_epoch()
        ieb.insert(5)
        ieb.end_epoch()
        assert not ieb.armed and len(ieb) == 0

    def test_zero_capacity_stores_nothing(self):
        ieb = IEB(0)
        ieb.begin_epoch()
        ieb.insert(1)
        assert not ieb.contains(1)
