"""Tests for the directory MESI baseline (HCC)."""

import pytest

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.mesi import MESIProtocol
from repro.common.params import (
    CacheParams,
    MachineParams,
    CoreParams,
    MeshParams,
    BufferParams,
    inter_block_machine,
    intra_block_machine,
)
from repro.mem.line import MESIState
from repro.sim.stats import MachineStats, TrafficCat


def make(machine=None):
    machine = machine or intra_block_machine(4)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    return MESIProtocol(hier), hier, stats


ADDR = 0x2000


class TestBasicCoherence:
    def test_write_then_remote_read(self):
        proto, _, _ = make()
        proto.write(0, ADDR, 42)
        _, value = proto.read(1, ADDR)
        assert value == 42  # forwarded from the dirty owner

    def test_remote_write_invalidates_reader(self):
        proto, _, stats = make()
        proto.read(1, ADDR)
        proto.write(0, ADDR, 9)
        _, value = proto.read(1, ADDR)
        assert value == 9
        assert stats.dir_invalidations >= 1

    def test_write_write_ping_pong(self):
        proto, _, _ = make()
        for rnd in range(4):
            core = rnd % 2
            proto.write(core, ADDR, rnd)
        _, value = proto.read(3, ADDR)
        assert value == 3

    def test_e_state_on_sole_reader(self):
        proto, hier, _ = make()
        proto.read(0, ADDR)
        line = hier.l1s[0].lookup(hier.line_of(ADDR))
        assert line.state == MESIState.E

    def test_s_state_on_second_reader(self):
        proto, hier, _ = make()
        proto.read(0, ADDR)
        proto.read(1, ADDR)
        assert hier.l1s[1].lookup(hier.line_of(ADDR)).state == MESIState.S

    def test_e_demoted_when_peer_reads(self):
        """Regression: silent E→M with a stale S copy elsewhere."""
        proto, hier, _ = make()
        proto.read(0, ADDR)  # E
        proto.read(1, ADDR)  # demotes core 0 to S
        assert hier.l1s[0].lookup(hier.line_of(ADDR)).state == MESIState.S
        proto.write(0, ADDR, 5)  # must invalidate core 1 (upgrade, not silent)
        _, value = proto.read(1, ADDR)
        assert value == 5

    def test_silent_e_to_m_upgrade_when_truly_alone(self):
        proto, _, stats = make()
        proto.read(0, ADDR)
        inv_before = stats.dir_invalidations
        lat = proto.write(0, ADDR, 1)
        assert stats.dir_invalidations == inv_before
        assert lat <= 2  # overlapped L1 hit, no directory traffic


class TestDirectoryInvariants:
    def _owner_count(self, proto, hier, line_addr):
        owners = 0
        for l1 in hier.l1s:
            line = l1.lookup(line_addr, touch=False)
            if line is not None and line.state == MESIState.M:
                owners += 1
        return owners

    def test_single_writer_invariant(self):
        proto, hier, _ = make()
        la = hier.line_of(ADDR)
        for core in range(4):
            proto.write(core, ADDR, core)
            assert self._owner_count(proto, hier, la) == 1

    def test_no_m_alongside_s(self):
        proto, hier, _ = make()
        la = hier.line_of(ADDR)
        proto.write(0, ADDR, 1)
        proto.read(1, ADDR)
        states = [
            l1.lookup(la, touch=False).state
            for l1 in hier.l1s
            if l1.lookup(la, touch=False) is not None
        ]
        assert MESIState.M not in states  # owner downgraded to S

    def test_directory_presence_matches_caches(self):
        proto, hier, _ = make()
        la = hier.line_of(ADDR)
        for core in range(3):
            proto.read(core, ADDR)
        entry = proto._dir2(0, la)
        resident = sum(
            1 << c
            for c in range(4)
            if hier.l1s[c].lookup(la, touch=False) is not None
        )
        assert entry.sharers == resident


class TestEvictionsAndInclusion:
    def test_capacity_eviction_preserves_data(self):
        # A tiny direct-mapped L1 forces evictions quickly.
        machine = MachineParams(
            num_blocks=1,
            cores_per_block=2,
            core=CoreParams(),
            l1=CacheParams(size_bytes=256, assoc=1, line_bytes=64, round_trip=2),
            l2_bank=CacheParams(
                size_bytes=4096, assoc=2, line_bytes=64, round_trip=11
            ),
            l3_bank=None,
            num_l3_banks=0,
            mesh=MeshParams(),
            buffers=BufferParams(),
        )
        proto, _, _ = make(machine)
        # Write more lines than L1 holds; all values must survive eviction.
        for k in range(8):
            proto.write(0, ADDR + 64 * k, k)
        for k in range(8):
            _, v = proto.read(1, ADDR + 64 * k)
            assert v == k

    def test_wbinv_ops_are_counted_noops(self):
        proto, _, _ = make()
        proto.wb_all(0)
        proto.inv_all(0)
        proto.wb_range(0, ADDR, 4)
        assert proto.ignored_wbinv_ops == 3


class TestHierarchical:
    def test_cross_block_communication(self):
        proto, _, _ = make(inter_block_machine(2, 2))
        proto.write(0, ADDR, "x")  # block 0
        _, value = proto.read(2, ADDR)  # block 1
        assert value == "x"

    def test_cross_block_write_invalidates_remote_blocks(self):
        proto, _, _ = make(inter_block_machine(2, 2))
        proto.read(2, ADDR)
        proto.write(0, ADDR, 7)
        _, value = proto.read(3, ADDR)
        assert value == 7

    def test_cross_block_e_grant_blocked_by_remote_copy(self):
        proto, hier, _ = make(inter_block_machine(2, 2))
        proto.read(0, ADDR)  # block 0 holds it
        proto.read(2, ADDR)  # block 1 reader must get S, not E
        assert hier.l1s[2].lookup(hier.line_of(ADDR)).state == MESIState.S
        proto.write(2, ADDR, 3)
        _, v = proto.read(0, ADDR)
        assert v == 3

    def test_repeated_migration_across_blocks(self):
        proto, _, _ = make(inter_block_machine(2, 2))
        for rnd in range(6):
            writer = (rnd % 4)
            proto.write(writer, ADDR, rnd)
            reader = (writer + 2) % 4  # other block
            _, v = proto.read(reader, ADDR)
            assert v == rnd

    def test_finalize_flushes_to_memory(self):
        proto, hier, _ = make(inter_block_machine(2, 2))
        proto.write(1, ADDR, 55)
        proto.finalize()
        assert hier.memory.read_word(ADDR // 4) == 55


class TestTrafficAccounting:
    def test_linefill_counted_on_miss(self):
        proto, _, stats = make()
        proto.read(0, ADDR)
        assert stats.traffic[TrafficCat.LINEFILL] > 0
        assert stats.traffic[TrafficCat.MEMORY] > 0

    def test_invalidation_traffic_on_upgrade(self):
        proto, _, stats = make()
        proto.read(0, ADDR)
        proto.read(1, ADDR)
        before = stats.traffic[TrafficCat.INVALIDATION]
        proto.write(0, ADDR, 1)
        assert stats.traffic[TrafficCat.INVALIDATION] > before
