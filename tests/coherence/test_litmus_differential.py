"""Differential litmus tests: incoherent + annotations vs directory MESI.

The kernels themselves live in the :mod:`repro.workloads.litmus` registry
(shared with the static analyzer — see ``tests/analysis`` for the
cross-validation that both harnesses agree on every kernel).

The differential harness runs the same program under every Table II
configuration of its machine model — hardware MESI (`HCC`) and the
software-coherent configurations (`Base`, `B+M`, `B+I`, `B+M+I` intra;
`Base`, `Addr`, `Addr+L` inter) — and asserts that observed loads and
final main memory agree bit-for-bit across all of them.  A divergence
means the incoherent protocol (or the annotation algorithm) lost an
update or served a stale line that hardware coherence would have caught.

Correct kernels (``determinate=True``) must agree everywhere; the
deliberately broken kernels (missing WB/INV annotations) must make the
harness *diverge* — proof the differential methodology actually detects
under-annotation rather than vacuously passing.
"""

from __future__ import annotations

import pytest

from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.core.machine import Machine
from repro.workloads.litmus import (
    LITMUS,
    LitmusKernel,
    machine_params,
    spawn_litmus,
)


def _configs(kernel: LitmusKernel):
    return INTER_CONFIGS if kernel.model == "inter" else INTRA_CONFIGS


def run_litmus(kernel: LitmusKernel, config):
    """Run one litmus kernel under one configuration.

    Returns ``(observations, final memory per array)``.
    """
    machine = Machine(machine_params(kernel), config,
                      num_threads=kernel.threads)
    arrs, obs = spawn_litmus(kernel, machine)
    machine.run()
    mem = {name: machine.read_array(arr) for name, arr in arrs.items()}
    return obs, mem


def differential(kernel: LitmusKernel):
    """Assert observations + memory agree across all of the model's configs."""
    configs = _configs(kernel)
    outcomes = {cfg.name: run_litmus(kernel, cfg) for cfg in configs}
    baseline_name = configs[0].name  # HCC in both models
    base_obs, base_mem = outcomes[baseline_name]
    for name, (obs, mem) in outcomes.items():
        assert obs == base_obs, (
            f"{name} observed values diverge from {baseline_name}: "
            f"{obs} != {base_obs}"
        )
        assert mem == base_mem, (
            f"{name} final memory diverges from {baseline_name}"
        )
    return base_obs, base_mem


_DETERMINATE = sorted(k.name for k in LITMUS.values() if k.determinate)
_BROKEN = sorted(k.name for k in LITMUS.values() if not k.determinate)


@pytest.mark.parametrize("name", _DETERMINATE)
def test_litmus_determinate(name):
    """Correct kernels agree bit-for-bit across every configuration."""
    kernel = LITMUS[name]
    obs, mem = differential(kernel)
    if kernel.check is not None:
        kernel.check(obs, mem)


@pytest.mark.parametrize("name", _BROKEN)
def test_litmus_broken_diverges(name):
    """Under-annotated kernels must make the differential harness object.

    This guards the methodology itself: if dropping the WB/INV from a
    litmus kernel still passed, the whole suite would prove nothing.
    """
    with pytest.raises(AssertionError):
        differential(LITMUS[name])
