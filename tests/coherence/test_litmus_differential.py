"""Differential litmus tests: incoherent + annotations vs directory MESI.

Each litmus program is a small hand-written multithreaded kernel in one of
the paper's synchronization idioms (message passing over a flag, store
buffering across a barrier, producer–consumer chains, lock-protected
updates, Figure-6b annotated data races, false sharing within one line).
Every program is *determinate*: all inter-thread communication is ordered
by synchronization, so its observed values and final memory are unique.

The differential harness runs the same program under every Table II
configuration of its machine model — hardware MESI (`HCC`) and the
software-coherent configurations (`Base`, `B+M`, `B+I`, `B+M+I` intra;
`Base`, `Addr`, `Addr+L` inter) — and asserts that observed loads and
final main memory agree bit-for-bit across all of them.  A divergence
means the incoherent protocol (or the annotation algorithm) lost an
update or served a stale line that hardware coherence would have caught.
"""

from __future__ import annotations

import pytest

from repro.common.params import (
    WORD_BYTES,
    inter_block_machine,
    intra_block_machine,
)
from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS, InterMode
from repro.core.machine import Machine
from repro.isa import ops as isa

#: (config list, machine factory, thread count) per machine model.
INTRA = (INTRA_CONFIGS, lambda: intra_block_machine(4), 4)
INTER = (INTER_CONFIGS, lambda: inter_block_machine(2, 2), 4)


def run_litmus(config, params_factory, programs, arrays):
    """Run one litmus program under one configuration.

    ``programs`` maps one generator function per thread (spawn order =
    tid); each receives ``(ctx, arrs, obs)`` where ``obs`` is a shared
    dict the program records observed values into.  Returns
    ``(observations, final memory per array)``.
    """
    machine = Machine(params_factory(), config, num_threads=len(programs))
    arrs = {name: machine.array(name, size) for name, size in arrays.items()}
    obs: dict = {}
    for program in programs:
        machine.spawn(lambda ctx, p=program: p(ctx, arrs, obs))
    machine.run()
    mem = {name: machine.read_array(arr) for name, arr in arrs.items()}
    return obs, mem


def differential(model, programs, arrays):
    """Assert observations + memory agree across all of *model*'s configs."""
    configs, params_factory, _ = model
    outcomes = {
        cfg.name: run_litmus(cfg, params_factory, programs, arrays)
        for cfg in configs
    }
    baseline_name = configs[0].name  # HCC in both models
    base_obs, base_mem = outcomes[baseline_name]
    for name, (obs, mem) in outcomes.items():
        assert obs == base_obs, (
            f"{name} observed values diverge from {baseline_name}: "
            f"{obs} != {base_obs}"
        )
        assert mem == base_mem, (
            f"{name} final memory diverges from {baseline_name}"
        )
    return base_obs, base_mem


def idle(ctx, arrs, obs):
    """A thread that only meets the global barrier(s) it must attend."""
    yield from ctx.barrier()


# On the inter-block machine, communication must cross the L2s: the Model-2
# compiler lowers producer-side write-backs to WB_ALL_L3 / WB_L3 / WB_CONS
# and consumer-side invalidations to INV_ALL_L2 / INV_L2 / INV_PROD
# depending on the Table II mode (see repro.compiler.executor).  These two
# helpers apply the same lowering to hand-written litmus programs.


def wb_global(ctx, addr, length, cons_tid=None):
    mode = ctx.machine.config.inter_mode
    if mode == InterMode.BASE:
        yield isa.WBAllL3()
    elif mode == InterMode.ADDR or (
        mode == InterMode.ADDR_LEVEL and cons_tid is None
    ):
        yield isa.WBL3(addr, length)
    elif mode == InterMode.ADDR_LEVEL:
        yield isa.WBCons(addr, length, cons_tid)
    # HCC: hardware keeps the hierarchy coherent.


def inv_global(ctx, addr, length, prod_tid=None):
    mode = ctx.machine.config.inter_mode
    if mode == InterMode.BASE:
        yield isa.INVAllL2()
    elif mode == InterMode.ADDR or (
        mode == InterMode.ADDR_LEVEL and prod_tid is None
    ):
        yield isa.INVL2(addr, length)
    elif mode == InterMode.ADDR_LEVEL:
        yield isa.InvProd(addr, length, prod_tid)


# -- message passing ---------------------------------------------------------


def test_mp_flag():
    """MP: producer stores then sets a flag; consumer waits then loads."""

    def producer(ctx, arrs, obs):
        yield from ctx.store(arrs["data"].addr(0), 42)
        yield from ctx.flag_set(1)

    def consumer(ctx, arrs, obs):
        yield from ctx.flag_wait(1)
        obs["got"] = yield from ctx.load(arrs["data"].addr(0))

    obs, mem = differential(INTRA, [producer, consumer], {"data": 1})
    assert obs == {"got": 42}
    assert mem["data"] == [42]


def test_mp_barrier():
    """MP through a barrier; every other thread reads the same value."""

    def program(ctx, arrs, obs):
        if ctx.tid == 0:
            yield from ctx.store(arrs["data"].addr(0), 7)
        yield from ctx.barrier()
        if ctx.tid != 0:
            obs[ctx.tid] = yield from ctx.load(arrs["data"].addr(0))

    obs, mem = differential(INTRA, [program] * 4, {"data": 1})
    assert obs == {1: 7, 2: 7, 3: 7}
    assert mem["data"] == [7]


def test_mp_flag_inter_block():
    """MP across blocks on the inter-block machine (all 4 configs).

    tid 0 lives in block 0 and tid 3 in block 1 (2 cores per block), so the
    handoff must cross the L2s; Addr+L exercises WB_CONS/INV_PROD with a
    known peer.
    """

    def producer(ctx, arrs, obs):
        addr = arrs["data"].addr(0)
        yield from ctx.store(addr, 99)
        yield from wb_global(ctx, addr, WORD_BYTES, cons_tid=3)
        yield isa.FlagSet(1, 1)

    def consumer(ctx, arrs, obs):
        addr = arrs["data"].addr(0)
        yield isa.FlagWait(1, 1)
        yield from inv_global(ctx, addr, WORD_BYTES, prod_tid=0)
        obs[ctx.tid] = yield from ctx.load(addr)

    def passive(ctx, arrs, obs):
        return
        yield  # pragma: no cover - makes this a generator

    obs, mem = differential(
        INTER, [producer, passive, passive, consumer], {"data": 1}
    )
    assert obs == {3: 99}
    assert mem["data"] == [99]


# -- store buffering ----------------------------------------------------------


def test_store_buffering_barrier():
    """SB: with a barrier between stores and loads, r0 = r1 = 1."""

    def t0(ctx, arrs, obs):
        yield from ctx.store(arrs["x"].addr(0), 1)
        yield from ctx.barrier(count=2)
        obs["r0"] = yield from ctx.load(arrs["y"].addr(0))

    def t1(ctx, arrs, obs):
        yield from ctx.store(arrs["y"].addr(0), 1)
        yield from ctx.barrier(count=2)
        obs["r1"] = yield from ctx.load(arrs["x"].addr(0))

    obs, _ = differential(INTRA, [t0, t1], {"x": 1, "y": 1})
    assert obs == {"r0": 1, "r1": 1}


# -- producer/consumer chains ---------------------------------------------------


def test_producer_consumer_chain_barrier():
    """T0 produces a[], T1 maps a->b, T2 reads b — two barrier stages."""
    n = 4

    def t0(ctx, arrs, obs):
        for i in range(n):
            yield from ctx.store(arrs["a"].addr(i), 10 + i)
        yield from ctx.barrier()
        yield from ctx.barrier()

    def t1(ctx, arrs, obs):
        yield from ctx.barrier()
        for i in range(n):
            v = yield from ctx.load(arrs["a"].addr(i))
            yield from ctx.store(arrs["b"].addr(i), v + 1)
        yield from ctx.barrier()

    def t2(ctx, arrs, obs):
        yield from ctx.barrier()
        yield from ctx.barrier()
        obs["b"] = tuple(
            (yield from ctx.load_many([arrs["b"].addr(i) for i in range(n)]))
        )

    def other(ctx, arrs, obs):
        yield from ctx.barrier()
        yield from ctx.barrier()

    obs, mem = differential(INTRA, [t0, t1, t2, other], {"a": n, "b": n})
    assert obs == {"b": (11, 12, 13, 14)}
    assert mem["a"] == [10, 11, 12, 13]
    assert mem["b"] == [11, 12, 13, 14]


def test_flag_ping_pong():
    """Two threads alternately increment a word, ordered by flag values."""
    rounds = 3

    def t0(ctx, arrs, obs):
        addr = arrs["v"].addr(0)
        yield from ctx.store(addr, 0)
        yield from ctx.flag_set(0, 1)
        for r in range(rounds):
            yield from ctx.flag_wait(1, r + 1)
            v = yield from ctx.load(addr)
            yield from ctx.store(addr, v + 1)
            yield from ctx.flag_set(0, r + 2)
        obs["final0"] = yield from ctx.load(addr)

    def t1(ctx, arrs, obs):
        addr = arrs["v"].addr(0)
        for r in range(rounds):
            yield from ctx.flag_wait(0, r + 1)
            v = yield from ctx.load(addr)
            yield from ctx.store(addr, v + 1)
            yield from ctx.flag_set(1, r + 1)

    obs, mem = differential(INTRA, [t0, t1], {"v": 1})
    assert obs == {"final0": 2 * rounds}
    assert mem["v"] == [2 * rounds]


# -- locks ---------------------------------------------------------------------


def test_lock_counter():
    """Classic lock-protected counter: N threads x K increments each."""
    k = 3

    def program(ctx, arrs, obs):
        addr = arrs["counter"].addr(0)
        for _ in range(k):
            yield from ctx.lock_acquire(0)
            v = yield from ctx.load(addr)
            yield from ctx.store(addr, v + 1)
            yield from ctx.lock_release(0)
        yield from ctx.barrier()
        obs[ctx.tid] = yield from ctx.load(addr)

    obs, mem = differential(INTRA, [program] * 4, {"counter": 1})
    assert obs == {tid: 4 * k for tid in range(4)}
    assert mem["counter"] == [4 * k]


def test_lock_handoff_no_occ():
    """CS-only communication with ``occ=False`` (Figure 4d refinement)."""

    def writer(ctx, arrs, obs):
        yield from ctx.lock_acquire(5, occ=False)
        yield from ctx.store(arrs["slot"].addr(0), 123)
        yield from ctx.lock_release(5, occ=False)
        yield from ctx.flag_set(2)

    def reader(ctx, arrs, obs):
        yield from ctx.flag_wait(2)
        yield from ctx.lock_acquire(5, occ=False)
        obs["slot"] = yield from ctx.load(arrs["slot"].addr(0))
        yield from ctx.lock_release(5, occ=False)

    obs, mem = differential(INTRA, [writer, reader], {"slot": 1})
    assert obs == {"slot": 123}
    assert mem["slot"] == [123]


# -- annotated data races (Figure 6b) -------------------------------------------


def test_racy_store_load():
    """Racy store/load helpers, made determinate by an ordering flag."""

    def writer(ctx, arrs, obs):
        yield from ctx.racy_store(arrs["w"].addr(0), 5)
        yield from ctx.flag_set(3, wb=())  # data already posted by the race WB

    def reader(ctx, arrs, obs):
        yield from ctx.flag_wait(3, inv=())  # rely on the racy-load INV alone
        obs["w"] = yield from ctx.racy_load(arrs["w"].addr(0))

    obs, mem = differential(INTRA, [writer, reader], {"w": 1})
    assert obs == {"w": 5}
    assert mem["w"] == [5]


# -- range hints and multi-line handoff ------------------------------------------


def test_multiline_handoff_range_hints():
    """Producer hands a multi-line region over a barrier with wb=/inv= hints."""
    n = 40  # spans 3 lines of 16 words

    def producer(ctx, arrs, obs):
        base = arrs["buf"].addr(0)
        for i in range(n):
            yield from ctx.store(arrs["buf"].addr(i), i * i)
        yield from ctx.barrier(wb=[(base, n * WORD_BYTES)], inv=())

    def consumer(ctx, arrs, obs):
        base = arrs["buf"].addr(0)
        yield from ctx.barrier(wb=(), inv=[(base, n * WORD_BYTES)])
        vals = yield from ctx.load_many([arrs["buf"].addr(i) for i in range(n)])
        obs[ctx.tid] = tuple(vals)

    obs, mem = differential(
        INTRA, [producer, consumer, idle, idle], {"buf": n}
    )
    expect = tuple(i * i for i in range(n))
    assert obs == {1: expect}
    assert mem["buf"] == list(expect)


def test_false_sharing_one_line():
    """Two writers share one cache line but touch disjoint words.

    Per-word dirty bits must merge both updates on write-back; a full-line
    write-back would lose one of them (the paper's Section III-B argument).
    """

    def program(ctx, arrs, obs):
        if ctx.tid < 2:
            yield from ctx.store(arrs["line"].addr(ctx.tid), 100 + ctx.tid)
        yield from ctx.barrier()
        other = 1 - ctx.tid
        if ctx.tid < 2:
            obs[ctx.tid] = yield from ctx.load(arrs["line"].addr(other))

    obs, mem = differential(INTRA, [program] * 4, {"line": 2})
    assert obs == {0: 101, 1: 100}
    assert mem["line"] == [100, 101]


def test_private_reuse_empty_hints():
    """wb=()/inv=() declare no communication: private slots stay correct."""

    def program(ctx, arrs, obs):
        yield from ctx.store(arrs["priv"].addr(ctx.tid), ctx.tid * 11)
        yield from ctx.barrier(wb=(), inv=())
        obs[ctx.tid] = yield from ctx.load(arrs["priv"].addr(ctx.tid))

    obs, mem = differential(INTRA, [program] * 4, {"priv": 4})
    assert obs == {tid: tid * 11 for tid in range(4)}
    assert mem["priv"] == [0, 11, 22, 33]


# -- inter-block barrier reduction ----------------------------------------------


def test_inter_block_barrier_reduction():
    """All-threads sum reduction over two barrier phases, inter-block.

    The gather has no single peer, so Addr+L falls back to the global
    WB_L3/INV_L2 forms — the same fallback the compiler uses for
    reductions and multi-consumer broadcasts.
    """

    def program(ctx, arrs, obs):
        part = arrs["part"].addr(ctx.tid)
        parts = arrs["part"].addr(0)
        total_addr = arrs["sum"].addr(0)
        n = ctx.nthreads
        yield from ctx.store(part, ctx.tid + 1)
        yield from wb_global(ctx, part, WORD_BYTES)
        yield isa.Barrier(0, n)
        if ctx.tid == 0:
            yield from inv_global(ctx, parts, n * WORD_BYTES)
            total = 0
            for i in range(n):
                total += yield from ctx.load(arrs["part"].addr(i))
            yield from ctx.store(total_addr, total)
            yield from wb_global(ctx, total_addr, WORD_BYTES)
        yield isa.Barrier(1, n)
        yield from inv_global(ctx, total_addr, WORD_BYTES)
        obs[ctx.tid] = yield from ctx.load(total_addr)

    obs, mem = differential(INTER, [program] * 4, {"part": 4, "sum": 1})
    assert obs == {tid: 10 for tid in range(4)}
    assert mem["sum"] == [10]


# -- the harness itself ----------------------------------------------------------


def test_differential_catches_missing_annotations():
    """Sanity check: a program with *no* annotations must diverge.

    Under `Base` (annotations on, but the program bypasses the helpers and
    spins raw sync ops with no WB/INV) the consumer reads its stale cached
    line, while MESI returns the fresh value — the harness must notice.
    """
    from repro.isa import ops as isa

    def producer(ctx, arrs, obs):
        addr = arrs["data"].addr(0)
        _ = yield from ctx.load(addr)  # cache the line before writing
        yield isa.Write(addr, 42)
        yield isa.FlagSet(9, 1)  # no WB before the set

    def consumer(ctx, arrs, obs):
        addr = arrs["data"].addr(0)
        _ = yield from ctx.load(addr)  # warm the stale line
        yield isa.FlagWait(9, 1)  # no INV after the wait
        obs["got"] = yield from ctx.load(addr)

    with pytest.raises(AssertionError):
        differential(INTRA, [producer, consumer], {"data": 1})
