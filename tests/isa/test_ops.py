"""Tests for the operation vocabulary."""

from repro.isa import ops as isa


def test_op_families_are_disjoint():
    wb = set(isa.WB_OPS)
    inv = set(isa.INV_OPS)
    sync = set(isa.SYNC_OPS)
    assert not (wb & inv) and not (wb & sync) and not (inv & sync)


def test_wb_flavors_cover_section3_and_5():
    names = {cls.mnemonic for cls in isa.WB_OPS}
    assert names == {"WB", "WB_ALL", "WB_CONS", "WB_CONS_ALL", "WB_L3", "WB_ALL_L3"}


def test_inv_flavors():
    names = {cls.mnemonic for cls in isa.INV_OPS}
    assert names == {
        "INV", "INV_ALL", "INV_PROD", "INV_PROD_ALL", "INV_L2", "INV_ALL_L2"
    }


def test_sync_ops_cover_three_primitives():
    names = {cls.mnemonic for cls in isa.SYNC_OPS}
    assert names == {
        "barrier", "lock_acquire", "lock_release", "flag_set", "flag_wait"
    }


def test_read_write_fields():
    r = isa.Read(0x40)
    w = isa.Write(0x44, 3.5)
    assert r.addr == 0x40
    assert (w.addr, w.value) == (0x44, 3.5)


def test_level_adaptive_carry_peer_ids():
    wb = isa.WBCons(0x100, 64, cons_tid=7)
    inv = isa.InvProd(0x100, 64, prod_tid=3)
    assert wb.cons_tid == 7
    assert inv.prod_tid == 3


def test_epoch_markers_default_disarmed():
    e = isa.EpochBegin()
    assert not e.record_meb and not e.ieb_mode


def test_wb_all_via_meb_flag():
    assert isa.WBAll(via_meb=True).via_meb
    assert not isa.WBAll().via_meb


def test_repr_is_informative():
    assert "addr" in repr(isa.Read(0x40))
