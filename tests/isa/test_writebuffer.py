"""Tests for the Section III-C reordering rules (Figure 3)."""

import pytest

from repro.common.errors import OrderingError
from repro.isa.writebuffer import (
    AccKind,
    Access,
    WriteBuffer,
    check_execution_order,
    may_reorder,
)


def acc(kind, addr=0x40, seq=0):
    return Access(kind, addr, seq)


class TestMayReorder:
    def test_inv_then_load_forbidden(self):
        # Figure 3a: INV(x) -> ld x must not swap.
        assert not may_reorder(acc(AccKind.INV), acc(AccKind.LOAD))

    def test_store_then_wb_forbidden(self):
        # Figure 3b: st x -> WB(x) must not swap.
        assert not may_reorder(acc(AccKind.STORE), acc(AccKind.WB))

    def test_load_wb_always_reorderable(self):
        # Figure 3d: loads move freely around WB to the same address.
        assert may_reorder(acc(AccKind.LOAD), acc(AccKind.WB))
        assert may_reorder(acc(AccKind.WB), acc(AccKind.LOAD))

    def test_different_addresses_unconstrained(self):
        a = Access(AccKind.INV, 0x40)
        b = Access(AccKind.LOAD, 0x80)
        assert may_reorder(a, b)

    def test_strict_mode_enforces_desirable_orders(self):
        # ld x -> INV(x), WB(x) -> st x, st x <-> INV(x): keep in order.
        assert may_reorder(acc(AccKind.LOAD), acc(AccKind.INV))
        assert not may_reorder(acc(AccKind.LOAD), acc(AccKind.INV), strict=True)
        assert not may_reorder(acc(AccKind.WB), acc(AccKind.STORE), strict=True)
        assert not may_reorder(acc(AccKind.STORE), acc(AccKind.INV), strict=True)
        assert not may_reorder(acc(AccKind.INV), acc(AccKind.STORE), strict=True)

    def test_strict_mode_still_allows_load_wb(self):
        assert may_reorder(acc(AccKind.LOAD), acc(AccKind.WB), strict=True)


class TestCheckExecutionOrder:
    def test_program_order_always_legal(self):
        prog = [acc(AccKind.STORE, seq=0), acc(AccKind.WB, seq=1)]
        check_execution_order(prog, prog)

    def test_illegal_swap_detected(self):
        prog = [acc(AccKind.INV, seq=0), acc(AccKind.LOAD, seq=1)]
        with pytest.raises(OrderingError):
            check_execution_order(prog, list(reversed(prog)))

    def test_legal_swap_accepted(self):
        prog = [acc(AccKind.WB, seq=0), acc(AccKind.LOAD, seq=1)]
        check_execution_order(prog, list(reversed(prog)))

    def test_non_permutation_rejected(self):
        prog = [acc(AccKind.LOAD, seq=0)]
        with pytest.raises(OrderingError):
            check_execution_order(prog, [acc(AccKind.LOAD, seq=9)])


class TestWriteBuffer:
    def test_loads_bypass_wb_but_not_inv(self):
        wb = WriteBuffer()
        wb.retire(acc(AccKind.WB, addr=0x40))
        assert wb.load_may_proceed(0x40)
        wb.retire(acc(AccKind.INV, addr=0x40))
        assert not wb.load_may_proceed(0x40)
        assert wb.load_may_proceed(0x80)

    def test_fifo_drain_order(self):
        wb = WriteBuffer()
        first = acc(AccKind.STORE, seq=0)
        second = acc(AccKind.WB, seq=1)
        wb.retire(first)
        wb.retire(second)
        assert wb.drain_one() is first
        assert wb.drain_one() is second

    def test_store_forwarding_visibility(self):
        wb = WriteBuffer()
        wb.retire(acc(AccKind.STORE, addr=0x40))
        assert wb.pending_store_value_visible(0x40)
        assert not wb.pending_store_value_visible(0x80)

    def test_loads_never_enter(self):
        with pytest.raises(OrderingError):
            WriteBuffer().retire(acc(AccKind.LOAD))

    def test_overflow_and_drain_all(self):
        wb = WriteBuffer(capacity=2)
        wb.retire(acc(AccKind.STORE, seq=0))
        wb.retire(acc(AccKind.STORE, seq=1))
        assert wb.full
        with pytest.raises(OrderingError):
            wb.retire(acc(AccKind.STORE, seq=2))
        assert len(wb.drain_all()) == 2
        assert len(wb) == 0

    def test_empty_drain_rejected(self):
        with pytest.raises(OrderingError):
            WriteBuffer().drain_one()

    def test_capacity_validation(self):
        with pytest.raises(OrderingError):
            WriteBuffer(capacity=0)

    def test_drained_inv_unblocks_load(self):
        wb = WriteBuffer()
        wb.retire(acc(AccKind.INV, addr=0x40))
        wb.drain_one()
        assert wb.load_may_proceed(0x40)
