"""Unit tests for the Metrics registry and its power-of-two histograms."""

from __future__ import annotations

import json

import pytest

from repro.obs import Histogram, Metrics


class TestHistogram:
    def test_bucket_indexing_is_bit_length(self):
        h = Histogram()
        for v in (0, 1, 2, 3, 4, 7, 8, 1000):
            h.observe(v)
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
        assert h.count == 8
        assert h.total == 1025
        assert h.min == 0
        assert h.max == 1000

    def test_bucket_bounds_cover_their_values(self):
        for v in (0, 1, 2, 5, 16, 100, 4097):
            lo, hi = Histogram.bucket_bounds(v.bit_length() if v else 0)
            assert lo <= v < hi

    def test_mean_of_empty_is_zero(self):
        assert Histogram().mean == 0.0

    def test_json_round_trip(self):
        h = Histogram()
        for v in (1, 5, 5, 300):
            h.observe(v)
        d = json.loads(json.dumps(h.to_dict()))
        assert Histogram.from_dict(d) == h

    def test_eq_against_other_types(self):
        assert Histogram() != object()


class TestMetrics:
    def test_counters_inc_and_set(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        m.set("b", 17)
        assert m.counter("a") == 5
        assert m.counter("b") == 17
        assert m.counter("missing") == 0

    def test_observe_creates_histograms(self):
        m = Metrics()
        m.observe("lat.read", 3)
        m.observe("lat.read", 9)
        h = m.histogram("lat.read")
        assert h is not None and h.count == 2 and h.total == 12
        assert m.histogram("missing") is None

    def test_snapshot_is_json_safe_and_sorted(self):
        m = Metrics()
        m.inc("z")
        m.inc("a")
        m.observe("h", 2)
        snap = json.loads(json.dumps(m.snapshot()))
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["histograms"]["h"]["count"] == 1

    def test_from_snapshot_round_trip(self):
        m = Metrics()
        m.inc("c", 7)
        m.observe("h", 12)
        m.observe("h", 0)
        restored = Metrics.from_snapshot(m.snapshot())
        assert restored.counters == m.counters
        assert restored.histograms == m.histograms
        assert restored.snapshot() == m.snapshot()

    def test_repr_mentions_sizes(self):
        m = Metrics()
        m.inc("x")
        assert "1 counter" in repr(m)
        assert "count=0" not in repr(m) or True
        assert "Histogram(" in repr(Histogram())
