"""Unit tests for the trace schema validator and its CLI entry point."""

from __future__ import annotations

import json

import pytest

from repro.obs import TraceSchemaError, validate_event, validate_jsonl
from repro.obs.schema import main as schema_main

GOOD = {"kind": "read", "core": 0, "cycle": 3, "addr": 64, "line": 1,
        "level": "L1", "lat": 2, "op": "LD"}


def test_valid_events_pass():
    validate_event(GOOD)
    validate_event({"kind": "sync", "core": 5, "cycle": 0})


@pytest.mark.parametrize(
    "mutation",
    [
        {"kind": None},                       # wrong type
        {"kind": "teleport"},                 # unknown kind
        {"core": None},                       # missing -> required
        {"core": True},                       # bool masquerading as int
        {"cycle": -1},                        # negative int
        {"level": "L9"},                      # unknown level
        {"extra": 1},                         # unknown field
        {"lat": "fast"},                      # wrong optional type
    ],
)
def test_invalid_events_rejected(mutation):
    ev = dict(GOOD)
    for key, value in mutation.items():
        if value is None:
            ev.pop(key, None)
        else:
            ev[key] = value
    with pytest.raises(TraceSchemaError):
        validate_event(ev)


def test_non_dict_event_rejected():
    with pytest.raises(TraceSchemaError):
        validate_event([1, 2, 3])


def test_validate_jsonl_reports_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps(GOOD) + "\n\n" + json.dumps({"kind": "warp", "core": 0,
                                                "cycle": 1}) + "\n"
    )
    with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:3"):
        validate_jsonl(path)


def test_validate_jsonl_rejects_malformed_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json\n")
    with pytest.raises(TraceSchemaError, match="bad JSON"):
        validate_jsonl(path)


def test_cli_ok_and_failure(tmp_path, capsys):
    good = tmp_path / "good.jsonl"
    good.write_text(json.dumps(GOOD) + "\n")
    assert schema_main([str(good)]) == 0
    assert "1 event(s) ok" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "warp", "core": 0, "cycle": 1}\n')
    assert schema_main([str(bad)]) == 1
    assert "invalid trace" in capsys.readouterr().err

    assert schema_main([str(tmp_path / "missing.jsonl")]) == 1
    assert schema_main([]) == 2
