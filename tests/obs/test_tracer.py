"""Unit tests for the Tracer: emission, selection, JSONL and Chrome output."""

from __future__ import annotations

import json

from repro.obs import TRACE_KINDS, Tracer, validate_jsonl


def test_emit_drops_absent_fields_and_stamps_current_cycle():
    t = Tracer()
    t.cycle = 42
    t.emit("read", 1, addr=0x40, line=1, lat=3)
    t.emit("sync", 2, op="BARRIER", cycle=100)
    assert len(t) == 2
    assert t.events[0] == {
        "kind": "read", "core": 1, "cycle": 42, "addr": 0x40, "line": 1,
        "lat": 3,
    }
    # Explicit cycle overrides the published op cycle; None fields absent.
    assert t.events[1] == {"kind": "sync", "core": 2, "cycle": 100,
                           "op": "BARRIER"}


def test_selection_helpers():
    t = Tracer()
    t.emit("read", 0, addr=4)
    t.emit("write", 1, addr=8)
    t.emit("read", 1, addr=12)
    assert [e["addr"] for e in t.of_kind("read")] == [4, 12]
    assert [e["addr"] for e in t.of_kind("read", "write")] == [4, 8, 12]
    assert [e["addr"] for e in t.of_core(1)] == [8, 12]


def test_write_jsonl_round_trips_and_validates(tmp_path):
    t = Tracer()
    t.emit("fill", 0, line=2, level="L2")
    t.emit("evict", 0, line=3, level="L1")
    path = tmp_path / "t.jsonl"
    assert t.write_jsonl(path) == 2
    lines = path.read_text().splitlines()
    assert [json.loads(ln) for ln in lines] == t.events
    assert validate_jsonl(path) == 2


def test_chrome_trace_shape():
    t = Tracer()
    t.cycle = 5
    t.emit("wb", 3, addr=64, lat=10, op="WB_ALL")
    t.emit("read", 2, addr=4)  # no lat -> dur defaults to 1
    doc = t.to_chrome()
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    first, second = doc["traceEvents"]
    assert first == {
        "name": "WB_ALL", "cat": "wb", "ph": "X", "ts": 5, "dur": 10,
        "pid": 0, "tid": 3, "args": {"addr": 64, "lat": 10, "op": "WB_ALL"},
    }
    assert second["name"] == "read"
    assert second["dur"] == 1


def test_write_chrome_is_loadable_json(tmp_path):
    t = Tracer()
    t.emit("sync", 0, op="barrier_grant", cycle=9)
    path = tmp_path / "t.json"
    assert t.write_chrome(path) == 1
    doc = json.loads(path.read_text())
    assert doc["traceEvents"][0]["ph"] == "X"


def test_trace_kinds_is_the_closed_vocabulary():
    assert set(TRACE_KINDS) == {
        "read", "write", "compute", "wb", "inv", "fill", "evict", "fault",
        "sync", "epoch",
    }
