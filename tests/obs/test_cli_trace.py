"""CLI tests for `repro trace` and the figure commands' --trace/--metrics."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import validate_jsonl


def test_trace_subcommand_writes_valid_outputs(tmp_path, capsys):
    out = tmp_path / "cell.jsonl"
    chrome = tmp_path / "cell.chrome.json"
    metrics = tmp_path / "cell.metrics.json"
    rc = main([
        "trace", "volrend", "--config", "B+M+I", "--scale", "0.5",
        "--out", str(out), "--chrome", str(chrome), "--metrics", str(metrics),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "verified OK" in printed
    assert "exec time" in printed
    assert validate_jsonl(out) > 0
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"][0]["ph"] == "X"
    snap = json.loads(metrics.read_text())
    assert "counters" in snap and "histograms" in snap


def test_trace_subcommand_defaults(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main(["trace", "volrend", "--scale", "0.5"])
    assert rc == 0
    # Default config is B+M+I; default output name comes from the cell.
    assert (tmp_path / "volrend-BMI.trace.jsonl").exists()


def test_trace_subcommand_unknown_workload():
    assert main(["trace", "doom"]) == 2


def test_fig10_with_trace_and_metrics(tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    metrics_path = tmp_path / "m.json"
    rc = main([
        "fig10", "--scale", "0.25",
        "--trace", str(trace_dir), "--metrics", str(metrics_path),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "norm" in captured.out or captured.out  # the table printed
    jsonls = list(trace_dir.glob("*.trace.jsonl"))
    assert jsonls, "no per-cell traces written"
    for path in jsonls:
        assert validate_jsonl(path) > 0
    per_cell = json.loads(metrics_path.read_text())
    assert all({"HCC", "B+M+I"} <= set(v) for v in per_cell.values())
