"""Tests for traced replay helpers and metrics riding inside RunResult."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.common.errors import ConfigError
from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.runner import RunResult, run_intra
from repro.obs import validate_jsonl
from repro.obs.replay import (
    cell_trace_name,
    kind_of_app,
    run_traced,
    traced_sweep,
)

KW = dict(num_threads=4, scale=0.5)


def test_kind_of_app():
    assert kind_of_app("volrend") == "intra"
    assert kind_of_app("ep") == "inter"
    with pytest.raises(ConfigError):
        kind_of_app("doom")


def test_run_traced_rejects_unknown_kind():
    with pytest.raises(ConfigError):
        run_traced("diagonal", "volrend", INTRA_BMI)


def test_cell_trace_name_is_filesystem_safe():
    assert cell_trace_name("fft", "B+M+I") == "fft-BMI.trace.jsonl"
    assert "/" not in cell_trace_name("ep", "Addr+L")


def test_run_result_carries_metrics_snapshot():
    result, _tracer, metrics = run_traced("intra", "volrend", INTRA_BMI, **KW)
    assert result.metrics == metrics.snapshot()
    d = result.to_dict()
    assert d["metrics"] == result.metrics
    # JSON round trip (the persistent cache path) preserves the snapshot.
    restored = RunResult.from_dict(json.loads(json.dumps(d)))
    assert restored == result
    # Pickle round trip (the process-pool path) too.
    assert pickle.loads(pickle.dumps(result)) == result


def test_plain_runs_keep_dict_form_unchanged():
    plain = run_intra("volrend", INTRA_BMI, **KW)
    assert plain.metrics is None
    assert "metrics" not in plain.to_dict()  # old cache entries stay valid
    assert RunResult.from_dict(plain.to_dict()) == plain


def test_traced_sweep_writes_traces_and_metrics(tmp_path):
    trace_dir = tmp_path / "traces"
    metrics_path = tmp_path / "metrics.json"
    results = traced_sweep(
        "intra", ["volrend"], [INTRA_HCC, INTRA_BMI],
        trace_dir=trace_dir, metrics_path=metrics_path, **KW,
    )
    assert set(results["volrend"]) == {"HCC", "B+M+I"}
    for cfg in ("HCC", "BMI"):
        path = trace_dir / f"volrend-{cfg}.trace.jsonl"
        assert validate_jsonl(path) > 0
    per_cell = json.loads(metrics_path.read_text())
    assert set(per_cell["volrend"]) == {"HCC", "B+M+I"}
    assert (
        per_cell["volrend"]["B+M+I"]
        == results["volrend"]["B+M+I"].metrics
    )
