"""Tracing must be bit-identical-neutral: observing a run never changes it.

The acceptance bar for the observability subsystem: with tracing/metrics
off, nothing in the sweep results moves (they are literally the same
numbers), and with tracing on, the *simulated* statistics still match the
untraced run exactly — the tracer records, it never perturbs.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    INTER_ADDR_L,
    INTER_HCC,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.eval import report as rpt
from repro.eval.runner import run_inter, run_intra
from repro.obs.replay import run_traced, traced_sweep

INTRA_KW = dict(num_threads=4, scale=0.5)
INTER_KW = dict(num_blocks=2, cores_per_block=2, scale=0.25)


@pytest.mark.parametrize("config", [INTRA_BMI, INTRA_HCC],
                         ids=lambda c: c.name)
def test_intra_stats_identical_with_and_without_tracing(config):
    plain = run_intra("volrend", config, **INTRA_KW)
    traced, tracer, metrics = run_traced("intra", "volrend", config, **INTRA_KW)
    assert traced.stats.to_dict() == plain.stats.to_dict()
    assert len(tracer.events) > 0
    assert metrics.counters  # something was recorded, yet nothing changed


@pytest.mark.parametrize("config", [INTER_ADDR_L, INTER_HCC],
                         ids=lambda c: c.name)
def test_inter_stats_identical_with_and_without_tracing(config):
    plain = run_inter("ep", config, **INTER_KW)
    traced, tracer, metrics = run_traced("inter", "ep", config, **INTER_KW)
    assert traced.stats.to_dict() == plain.stats.to_dict()
    assert len(tracer.events) > 0


def test_traced_sweep_renders_the_same_fig9_table():
    apps = ["volrend"]
    configs = [INTRA_HCC, INTRA_BMI]
    plain = {
        app: {c.name: run_intra(app, c, **INTRA_KW) for c in configs}
        for app in apps
    }
    traced = traced_sweep("intra", apps, configs, **INTRA_KW)
    assert rpt.render_fig9(traced) == rpt.render_fig9(plain)
