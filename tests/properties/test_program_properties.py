"""Property-based tests at the programming-model level.

Random barrier-structured SPMD programs must produce interpreter-identical
results under every Table II configuration, and random affine IR programs
must match the reference interpreter under every inter-block mode — the
core soundness claim of both programming models.
"""

from hypothesis import given, settings, strategies as st

from repro import Machine, inter_block_machine, intra_block_machine
from repro.compiler import ir
from repro.compiler.executor import ModelTwoRunner
from repro.compiler.interp import interpret
from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.isa import ops as isa

N = 32  # shared array elements
THREADS = 4


# ---------------------------------------------------------------------------
# Model 1: random barrier-phase programs
# ---------------------------------------------------------------------------

#: A phase: each thread writes f(i) to a slice and reads a rotated slice.
phase_strategy = st.tuples(
    st.integers(min_value=1, max_value=THREADS),  # rotation distance
    st.integers(min_value=1, max_value=7),  # multiplier
)


@given(st.lists(phase_strategy, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_model1_random_barrier_programs_match_reference(phases):
    chunk = N // THREADS

    def reference():
        data = [0] * N
        for rot, mult in phases:
            src = list(data)
            for t in range(THREADS):
                for k in range(chunk):
                    peer = ((t + rot) % THREADS) * chunk + k
                    data[t * chunk + k] = src[peer] * mult + 1
        return data

    def program(ctx, arr):
        t = ctx.tid
        for rot, mult in phases:
            # Read the rotated peer chunk, then write own chunk.
            vals = []
            for k in range(chunk):
                peer = ((t + rot) % THREADS) * chunk + k
                v = yield isa.Read(arr.addr(peer))
                vals.append(v * mult + 1)
            yield from ctx.barrier()  # everyone done reading
            for k, v in enumerate(vals):
                yield isa.Write(arr.addr(t * chunk + k), v)
            yield from ctx.barrier()  # everyone done writing

    want = reference()
    for config in INTRA_CONFIGS:
        m = Machine(intra_block_machine(THREADS), config, num_threads=THREADS)
        arr = m.array("data", N)
        m.spawn_all(lambda ctx: program(ctx, arr))
        m.run()
        assert m.read_array(arr) == want, config.name


# ---------------------------------------------------------------------------
# Model 2: random affine stencil programs
# ---------------------------------------------------------------------------

stencil_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-2, max_value=2),  # read offset
        st.integers(min_value=1, max_value=5),  # scale
    ),
    min_size=1,
    max_size=3,
)


@given(stencil_strategy, st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_model2_random_affine_programs_match_interpreter(taps, iters):
    margin = 2
    length = N - 2 * margin

    def make_fn(scales):
        def fn(i, *vals):
            return sum(s * v for s, v in zip(scales, vals)) + 1
        return fn

    fwd = ir.ParallelFor(
        "fwd",
        length,
        (
            ir.Assign(
                ir.Ref("b", ir.Affine(1, margin)),
                tuple(
                    ir.Ref("a", ir.Affine(1, margin + off)) for off, _ in taps
                ),
                make_fn([s for _, s in taps]),
            ),
        ),
    )
    bwd = ir.ParallelFor(
        "bwd",
        length,
        (
            ir.Assign(
                ir.Ref("a", ir.Affine(1, margin)),
                (ir.Ref("b", ir.Affine(1, margin)),),
                lambda i, v: v,
            ),
        ),
    )
    program = ir.IRProgram(
        "stencil", {"a": N, "b": N}, (ir.Loop(iters, (fwd, bwd)),)
    )
    pre = {"a": list(range(N))}
    want = interpret(program, THREADS, pre)

    for config in INTER_CONFIGS:
        machine = Machine(
            inter_block_machine(2, 2), config, num_threads=THREADS
        )
        runner = ModelTwoRunner(machine, program)
        runner.preload("a", pre["a"])
        runner.spawn_all()
        machine.run()
        assert runner.result("a") == want["a"], config.name
        assert runner.result("b") == want["b"], config.name
