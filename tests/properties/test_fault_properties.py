"""Property-based tests: faults may cost cycles, never change a value.

Random fault plans applied to determinate litmus kernels must leave the
final memory image bit-identical to the fault-free run (the subsystem's
core invariant), and since every fault only *adds* latency, the degraded
execution time and total stall cycles can never drop below the fault-free
baseline on lock-free kernels (where timing cannot steer the dataflow).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import INTRA_BMI
from repro.eval.runner import run_litmus
from repro.faults.model import FaultKind, FaultPlan, FaultSpec

#: Determinate kernels with no locks: their instruction streams are fixed,
#: so extra latency can only ever slow them down.
LOCK_FREE = ("mp_flag", "mp_barrier", "store_buffering_barrier")


def _total_stalls(stats) -> int:
    return sum(core.total_cycles for core in stats.per_core)

spec_strategy = st.builds(
    FaultSpec,
    kind=st.sampled_from(list(FaultKind)),
    rate=st.floats(min_value=0.05, max_value=1.0),
    magnitude=st.integers(min_value=1, max_value=16),
)


@st.composite
def plan_strategy(draw):
    kinds = draw(
        st.lists(
            st.sampled_from(list(FaultKind)), min_size=1, max_size=4,
            unique=True,
        )
    )
    specs = tuple(
        FaultSpec(
            kind=kind,
            rate=draw(st.floats(min_value=0.05, max_value=1.0)),
            magnitude=draw(st.integers(min_value=1, max_value=16)),
        )
        for kind in kinds
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultPlan(name="prop", seed=seed, specs=specs)


@settings(max_examples=15, deadline=None)
@given(
    kernel=st.sampled_from(
        ("mp_flag", "mp_barrier", "store_buffering_barrier", "lock_counter",
         "lock_multiline_sweep", "flag_ping_pong")
    ),
    plan=plan_strategy(),
)
def test_faults_never_change_memory(kernel, plan):
    clean = run_litmus(kernel, INTRA_BMI, memory_digest=True)
    degraded = run_litmus(
        kernel, INTRA_BMI, faults=plan, memory_digest=True
    )
    assert degraded.memory_digest == clean.memory_digest


@settings(max_examples=12, deadline=None)
@given(kernel=st.sampled_from(LOCK_FREE), plan=plan_strategy())
def test_faults_only_slow_lock_free_kernels_down(kernel, plan):
    clean = run_litmus(kernel, INTRA_BMI)
    degraded = run_litmus(kernel, INTRA_BMI, faults=plan)
    assert degraded.exec_time >= clean.exec_time
    assert _total_stalls(degraded.stats) >= _total_stalls(clean.stats)


@settings(max_examples=10, deadline=None)
@given(plan=plan_strategy())
def test_armed_runs_are_reproducible(plan):
    a = run_litmus("mp_flag", INTRA_BMI, faults=plan, memory_digest=True)
    b = run_litmus("mp_flag", INTRA_BMI, faults=plan, memory_digest=True)
    assert a.exec_time == b.exec_time
    assert a.faults == b.faults
    assert a.memory_digest == b.memory_digest
