"""Property-based tests on the synchronization controller.

Random critical-section schedules must preserve mutual exclusion and lose no
increments; random flag schedules must wake exactly the satisfied waiters.
"""

from hypothesis import given, settings, strategies as st

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.isa import ops as isa

#: Per-thread schedule: a list of (lock id, hold cycles, increments).
cs_schedule = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # lock id
        st.integers(min_value=0, max_value=30),  # compute inside CS
        st.integers(min_value=1, max_value=3),  # increments to the counter
    ),
    max_size=5,
)


@given(st.lists(cs_schedule, min_size=2, max_size=4))
@settings(max_examples=25, deadline=None)
def test_random_critical_sections_lose_no_increments(schedules):
    for config in (INTRA_HCC, INTRA_BASE, INTRA_BMI):
        m = Machine(
            intra_block_machine(len(schedules)), config,
            num_threads=len(schedules),
        )
        counters = m.array("counters", 16)

        def program(ctx):
            for lid, hold, incs in schedules[ctx.tid]:
                yield from ctx.lock_acquire(lid, occ=False)
                for _ in range(incs):
                    v = yield isa.Read(counters.addr(lid))
                    yield isa.Write(counters.addr(lid), v + 1)
                if hold:
                    yield isa.Compute(hold)
                yield from ctx.lock_release(lid, occ=False)

        m.spawn_all(program)
        m.run()
        want = [0, 0, 0]
        for sched in schedules:
            for lid, _, incs in sched:
                want[lid] += incs
        got = [m.read_word(counters.addr(lid)) for lid in range(3)]
        assert got == want, (config.name, got, want)


@given(
    st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_flag_thresholds_release_exactly_when_reached(thresholds, steps):
    """One setter raises a flag step by step; waiters with random thresholds
    wake iff their threshold is ever reached, and deadlock otherwise."""
    reachable = [th for th in thresholds if th <= steps]
    if len(reachable) != len(thresholds):
        return  # unreachable waiters would (correctly) deadlock; skip
    n = 1 + len(thresholds)
    m = Machine(intra_block_machine(max(2, n)), INTRA_HCC, num_threads=n)
    order = m.array("order", 16)

    def program(ctx):
        if ctx.tid == 0:
            for step in range(1, steps + 1):
                yield isa.Compute(20)
                yield from ctx.flag_set(0, value=step)
        else:
            th = thresholds[ctx.tid - 1]
            yield from ctx.flag_wait(0, value=th)
            yield isa.Write(order.addr(ctx.tid), th)

    m.spawn_all(program)
    m.run()
    for k, th in enumerate(thresholds):
        assert m.read_word(order.addr(k + 1)) == th
