"""Property-based tests on the event trace emitted by the Tracer.

Random producer–consumer programs (random item counts, values, consumer
counts, and flag- vs barrier-based handoff) run with tracing attached, and
the resulting event stream must satisfy the paper's coherence discipline:

* **Handoff ordering** — every consumer ``read`` of a communicated word is
  preceded (in simulated time) by a matching producer ``wb`` event and a
  matching consumer ``inv`` event for that word.  That is exactly the
  WB-before-sync / INV-after-sync contract the annotation algorithm
  (Section IV-A) promises.
* **Per-core monotonicity** — events a core's CPU emits appear with
  non-decreasing cycles.  Controller-side grant events are excluded: the
  grant is stamped when the controller releases the waiter, while the
  waiter's own sync event is stamped back at issue time so its duration
  spans the wait.
* **Schema** — every emitted event validates against the trace schema.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.params import WORD_BYTES, intra_block_machine
from repro.core.config import INTRA_BASE
from repro.core.machine import Machine
from repro.obs import Metrics, Tracer, validate_event

#: (values, number of consumers, barrier-based handoff?)
mp_strategy = st.tuples(
    st.lists(st.integers(min_value=-99, max_value=99), min_size=1, max_size=6),
    st.integers(min_value=1, max_value=2),
    st.booleans(),
)


def run_mp(values, n_consumers, use_barrier):
    """One traced producer→consumers handoff; returns (tracer, metrics)."""
    tracer = Tracer()
    metrics = Metrics()
    machine = Machine(
        intra_block_machine(4),
        INTRA_BASE,
        num_threads=1 + n_consumers,
        tracer=tracer,
        metrics=metrics,
    )
    data = machine.array("data", len(values))
    # One single-word hint range per item, so every WB/INV op (and hence
    # every traced wb/inv event) carries the exact word address it covers.
    ranges = [(data.addr(i), WORD_BYTES) for i in range(len(values))]

    def producer(ctx):
        for i, v in enumerate(values):
            yield from ctx.store(data.addr(i), v)
        if use_barrier:
            yield from ctx.barrier(wb=ranges, inv=())
        else:
            yield from ctx.flag_set(1, wb=ranges)

    def consumer(ctx):
        if use_barrier:
            yield from ctx.barrier(wb=(), inv=ranges)
        else:
            yield from ctx.flag_wait(1, inv=ranges)
        got = []
        for i in range(len(values)):
            got.append((yield from ctx.load(data.addr(i))))
        assert got == values

    machine.spawn(producer)
    for _ in range(n_consumers):
        machine.spawn(consumer)
    machine.run()
    return tracer, metrics


@given(mp_strategy)
@settings(max_examples=25, deadline=None)
def test_consumer_reads_follow_wb_and_inv(case):
    values, n_consumers, use_barrier = case
    tracer, _ = run_mp(values, n_consumers, use_barrier)
    wb_by_addr: dict[int, list[dict]] = {}
    inv_by_addr: dict[tuple[int, int], list[dict]] = {}
    for ev in tracer.events:
        if ev["kind"] == "wb" and ev["core"] == 0 and "addr" in ev:
            wb_by_addr.setdefault(ev["addr"], []).append(ev)
        if ev["kind"] == "inv" and ev["core"] != 0 and "addr" in ev:
            inv_by_addr.setdefault((ev["core"], ev["addr"]), []).append(ev)

    consumer_reads = [
        ev for ev in tracer.of_kind("read") if ev["core"] != 0
    ]
    assert len(consumer_reads) == n_consumers * len(values)
    for rd in consumer_reads:
        wbs = wb_by_addr.get(rd["addr"], [])
        assert any(ev["cycle"] <= rd["cycle"] for ev in wbs), (
            f"consumer read {rd} has no earlier producer WB event"
        )
        invs = inv_by_addr.get((rd["core"], rd["addr"]), [])
        assert any(ev["cycle"] <= rd["cycle"] for ev in invs), (
            f"consumer read {rd} has no earlier invalidation by its core"
        )


@given(mp_strategy)
@settings(max_examples=25, deadline=None)
def test_event_cycles_monotone_per_core(case):
    values, n_consumers, use_barrier = case
    tracer, _ = run_mp(values, n_consumers, use_barrier)
    for core in range(1 + n_consumers):
        cycles = [
            ev["cycle"]
            for ev in tracer.of_core(core)
            if not (
                ev["kind"] == "sync" and ev.get("op", "").endswith("_grant")
            )
        ]
        assert cycles == sorted(cycles), f"core {core} cycles not monotone"


@given(mp_strategy)
@settings(max_examples=15, deadline=None)
def test_every_event_validates_and_metrics_agree(case):
    values, n_consumers, use_barrier = case
    tracer, metrics = run_mp(values, n_consumers, use_barrier)
    for ev in tracer.events:
        validate_event(ev)
    # The CPU-side counters must agree with the emitted event stream.
    cpu_wb = sum(
        n for name, n in metrics.counters.items() if name.startswith("cpu.wb.")
    )
    cpu_inv = sum(
        n for name, n in metrics.counters.items() if name.startswith("cpu.inv.")
    )
    op_events = [ev for ev in tracer.events if "op" in ev]
    assert cpu_wb == sum(1 for ev in op_events if ev["kind"] == "wb")
    assert cpu_inv == sum(1 for ev in op_events if ev["kind"] == "inv")
    reads = metrics.histogram("lat.read")
    assert reads.count == len(tracer.of_kind("read"))
