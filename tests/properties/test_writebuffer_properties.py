"""Property-based tests for the Section III-C reordering rules."""

from hypothesis import given, settings, strategies as st

from repro.common.errors import OrderingError
from repro.isa.writebuffer import (
    AccKind,
    Access,
    FORBIDDEN_SWAPS,
    WriteBuffer,
    check_execution_order,
    may_reorder,
)

kinds = st.sampled_from(list(AccKind))
addrs = st.sampled_from([0x40, 0x80, 0xC0])


@st.composite
def programs(draw, max_size=8):
    n = draw(st.integers(min_value=1, max_value=max_size))
    return [
        Access(draw(kinds), draw(addrs), seq=i) for i in range(n)
    ]


@given(programs())
@settings(max_examples=200)
def test_program_order_is_always_a_legal_execution(prog):
    check_execution_order(prog, prog)
    check_execution_order(prog, prog, strict=True)


@given(programs(), st.randoms())
@settings(max_examples=300)
def test_checker_agrees_with_pairwise_oracle(prog, rnd):
    execution = list(prog)
    rnd.shuffle(execution)
    pos = {a.seq: i for i, a in enumerate(execution)}
    legal = all(
        may_reorder(early, late)
        for i, early in enumerate(prog)
        for late in prog[i + 1 :]
        if pos[late.seq] < pos[early.seq]
    )
    try:
        check_execution_order(prog, execution)
        assert legal
    except OrderingError:
        assert not legal


@given(programs())
@settings(max_examples=200)
def test_forbidden_pairs_never_swappable(prog):
    for i, early in enumerate(prog):
        for late in prog[i + 1 :]:
            if early.addr == late.addr and (early.kind, late.kind) in FORBIDDEN_SWAPS:
                assert not may_reorder(early, late)
                assert not may_reorder(early, late, strict=True)


@given(st.lists(st.tuples(kinds, addrs), max_size=20))
@settings(max_examples=200)
def test_write_buffer_drains_in_retirement_order(entries):
    wb = WriteBuffer(capacity=32)
    retired = []
    for k, (kind, addr) in enumerate(entries):
        if kind == AccKind.LOAD:
            continue
        acc = Access(kind, addr, seq=k)
        wb.retire(acc)
        retired.append(acc)
    drained = wb.drain_all()
    assert drained == retired
    # Per-address order is a projection of global FIFO order.
    for addr in {a.addr for a in retired}:
        assert [a.seq for a in drained if a.addr == addr] == sorted(
            a.seq for a in retired if a.addr == addr
        )


@given(st.lists(st.tuples(kinds, addrs), max_size=16), addrs)
@settings(max_examples=200)
def test_load_blocked_iff_pending_inv(entries, load_addr):
    wb = WriteBuffer(capacity=32)
    pending_inv = set()
    for k, (kind, addr) in enumerate(entries):
        if kind == AccKind.LOAD:
            continue
        wb.retire(Access(kind, addr, seq=k))
        if kind == AccKind.INV:
            pending_inv.add(addr)
    assert wb.load_may_proceed(load_addr) == (load_addr not in pending_inv)
