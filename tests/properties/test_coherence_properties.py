"""Property-based tests on the coherence protocols' key invariants."""

from hypothesis import given, settings, strategies as st

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.mesi import MESIProtocol
from repro.common.params import inter_block_machine, intra_block_machine
from repro.mem.line import MESIState
from repro.sim.stats import MachineStats

BASE = 0x4000
NCORES = 3

#: A step: (core, "read"/"write"/"wb"/"inv"/"wb_all"/"inv_all", word index).
step_strategy = st.tuples(
    st.integers(min_value=0, max_value=NCORES - 1),
    st.sampled_from(["read", "write", "wb", "inv", "wb_all", "inv_all"]),
    st.integers(min_value=0, max_value=47),  # 3 lines' worth of words
)


def fresh(protocol_cls):
    machine = intra_block_machine(NCORES + 1)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    return protocol_cls(hier), hier


def apply_steps(proto, steps, log):
    counter = 0
    for core, kind, word in steps:
        addr = BASE + 4 * word
        if kind == "read":
            proto.read(core, addr)
        elif kind == "write":
            counter += 1
            value = (core, counter)
            proto.write(core, addr, value)
            log.append((core, word, value))
        elif kind == "wb":
            proto.wb_range(core, addr, 4)
        elif kind == "inv":
            proto.inv_range(core, addr, 4)
        elif kind == "wb_all":
            proto.wb_all(core)
        elif kind == "inv_all":
            proto.inv_all(core)


@given(st.lists(step_strategy, max_size=80))
@settings(max_examples=150, deadline=None)
def test_incoherent_never_loses_the_last_writer_per_core(steps):
    """WB/INV never lose data: after finalize, each word in memory holds a
    value some core actually wrote last *for that word from that core's
    perspective* — specifically, the globally last write to each word by
    the core that performed it survives if no other core wrote it later.
    """
    proto, hier = fresh(IncoherentProtocol)
    log = []
    apply_steps(proto, steps, log)
    proto.finalize()
    last_write = {}
    for core, word, value in log:
        last_write[word] = value
    for word, value in last_write.items():
        got = hier.memory.read_word((BASE + 4 * word) // 4)
        # The final memory value is the value of *some* write to this word
        # (never a torn/garbage value), and if only one core ever wrote the
        # word, it is exactly the last write.
        writers = {c for c, w, _ in log if w == word}
        if len(writers) == 1:
            assert got == value
        else:
            assert got in {v for c, w, v in log if w == word}


@given(st.lists(step_strategy, max_size=80))
@settings(max_examples=150, deadline=None)
def test_mesi_is_sequentially_consistent_per_word(steps):
    """Under MESI the final memory value is exactly the last write."""
    proto, hier = fresh(MESIProtocol)
    log = []
    apply_steps(proto, steps, log)
    proto.finalize()
    last_write = {}
    for core, word, value in log:
        last_write[word] = value
    for word, value in last_write.items():
        assert hier.memory.read_word((BASE + 4 * word) // 4) == value


@given(st.lists(step_strategy, max_size=60))
@settings(max_examples=150, deadline=None)
def test_mesi_single_owner_invariant(steps):
    """At every point, at most one L1 holds any line in M state."""
    proto, hier = fresh(MESIProtocol)
    for core, kind, word in steps:
        addr = BASE + 4 * word
        if kind == "read":
            proto.read(core, addr)
        elif kind == "write":
            proto.write(core, addr, word)
        la = hier.line_of(addr)
        owners = [
            c
            for c, l1 in enumerate(hier.l1s)
            if (line := l1.lookup(la, touch=False)) is not None
            and line.state == MESIState.M
        ]
        assert len(owners) <= 1
        # M excludes S/E copies elsewhere.
        if owners:
            others = [
                c
                for c, l1 in enumerate(hier.l1s)
                if c != owners[0] and l1.lookup(la, touch=False) is not None
            ]
            assert not others


@given(st.lists(step_strategy, max_size=60))
@settings(max_examples=100, deadline=None)
def test_incoherent_wb_is_idempotent(steps):
    """Running WB ALL twice in a row changes nothing the second time."""
    proto, hier = fresh(IncoherentProtocol)
    apply_steps(proto, steps, [])
    for core in range(NCORES):
        proto.wb_all(core)
    snapshot = {
        (b, la.line_addr): (list(la.data), la.dirty_mask)
        for b, bank_list in enumerate(hier.l2_banks)
        for bank in bank_list
        for la in bank.lines()
    }
    for core in range(NCORES):
        proto.wb_all(core)
    snapshot2 = {
        (b, la.line_addr): (list(la.data), la.dirty_mask)
        for b, bank_list in enumerate(hier.l2_banks)
        for bank in bank_list
        for la in bank.lines()
    }
    assert snapshot == snapshot2


def fresh_inter(protocol_cls):
    machine = inter_block_machine(2, 2)
    stats = MachineStats.for_cores(machine.num_cores)
    hier = Hierarchy(machine, stats)
    return protocol_cls(hier), hier


@given(st.lists(step_strategy, max_size=60))
@settings(max_examples=100, deadline=None)
def test_hierarchical_mesi_is_sequentially_consistent_per_word(steps):
    """The two-level directory preserves last-write semantics across blocks."""
    proto, hier = fresh_inter(MESIProtocol)
    log = []
    apply_steps(proto, steps, log)
    proto.finalize()
    last_write = {}
    for core, word, value in log:
        last_write[word] = value
    for word, value in last_write.items():
        assert hier.memory.read_word((BASE + 4 * word) // 4) == value


@given(st.lists(step_strategy, max_size=60))
@settings(max_examples=100, deadline=None)
def test_hierarchical_mesi_reads_always_fresh(steps):
    """Every read under hierarchical MESI returns the latest written value."""
    proto, hier = fresh_inter(MESIProtocol)
    shadow = {}
    counter = 0
    for core, kind, word in steps:
        addr = BASE + 4 * word
        if kind == "write":
            counter += 1
            value = (core, counter)
            proto.write(core, addr, value)
            shadow[word] = value
        elif kind == "read":
            _, got = proto.read(core, addr)
            assert got == shadow.get(word, 0), (core, word)
