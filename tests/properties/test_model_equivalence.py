"""Property: software memory models are value-equivalent to the oracle.

Hypothesis samples (kernel × model × engine) points: on every determinate
litmus kernel, the Regional Consistency and SISD backends must leave final
main memory bit-identical to the hardware-coherent MESI reference — on
both simulator engines, and independent of the engine the oracle itself
ran on.  This is the matrix invariant restated as a property, so shrinking
hands back the smallest (kernel, model, engine) witness on regression.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.core.config import (
    INTER_ADDR_L,
    INTER_HCC,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.eval.runner import run_litmus
from repro.workloads.litmus import LITMUS

DETERMINATE = tuple(n for n, k in LITMUS.items() if k.determinate)


def _digest(kernel: str, model: str, engine: str) -> str:
    inter = LITMUS[kernel].model == "inter"
    if model == "hcc":
        config = INTER_HCC if inter else INTRA_HCC
    else:
        config = INTER_ADDR_L if inter else INTRA_BMI
    return run_litmus(
        kernel, config, verify=False, memory_digest=True,
        model=model, engine=engine,
    ).memory_digest


@lru_cache(maxsize=None)
def _oracle(kernel: str) -> str:
    return _digest(kernel, "hcc", "ref")


@settings(max_examples=40, deadline=None)
@given(
    kernel=st.sampled_from(DETERMINATE),
    model=st.sampled_from(("rc", "sisd")),
    engine=st.sampled_from(("ref", "fast")),
)
def test_new_models_match_oracle_on_determinate_kernels(
    kernel, model, engine
):
    assert _digest(kernel, model, engine) == _oracle(kernel)


@settings(max_examples=12, deadline=None)
@given(kernel=st.sampled_from(DETERMINATE))
def test_oracle_is_engine_independent(kernel):
    assert _digest(kernel, "hcc", "fast") == _oracle(kernel)
