"""Properties of the seeded generative traffic engine.

Hypothesis draws random :class:`~repro.workloads.gen.spec.ScenarioSpec`
parameters and checks the generator's advertised guarantees:

* **Determinism** — the same spec always expands to the same program
  digest, and running it twice produces identical stats and final-memory
  digests (the digest is what the result cache and the fleet key on).
* **Coherence by construction** — the final memory image on an incoherent
  software-managed configuration equals the hardware-coherent (HCC)
  image, because generated programs are data-race-free and carry correct
  WB/INV annotations from the ThreadCtx helpers.
* **Lint cleanliness** — every generated program passes the Section IV-A
  static analyzer on every software-coherent configuration it runs under.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.workloads.gen import (
    PATTERNS,
    ScenarioSpec,
    build_scenario,
    lint_scenario,
    run_gen,
)

spec_strategy = st.builds(
    ScenarioSpec,
    pattern=st.sampled_from(PATTERNS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    threads=st.integers(min_value=2, max_value=4),
    footprint_lines=st.integers(min_value=1, max_value=4),
    rounds=st.integers(min_value=1, max_value=3),
    skew=st.floats(min_value=0.2, max_value=2.5, allow_nan=False),
)


@given(spec_strategy)
@settings(max_examples=25, deadline=None)
def test_same_seed_same_program_same_run(spec):
    assert build_scenario(spec).program_digest() == \
        build_scenario(spec).program_digest()
    a = run_gen(spec, INTRA_BMI, memory_digest=True)
    b = run_gen(spec, INTRA_BMI, memory_digest=True)
    assert a.stats == b.stats
    assert a.memory_digest == b.memory_digest


@given(spec_strategy)
@settings(max_examples=15, deadline=None)
def test_incoherent_config_matches_hcc_oracle(spec):
    base = run_gen(spec, INTRA_BASE, memory_digest=True)
    hcc = run_gen(spec, INTRA_HCC, memory_digest=True)
    assert base.memory_digest == hcc.memory_digest


@given(spec_strategy)
@settings(max_examples=15, deadline=None)
def test_every_generated_program_lints_clean(spec):
    for config in (INTRA_BASE, INTRA_BMI):
        report = lint_scenario(spec, config)
        assert report.clean, (
            f"{spec.name} under {config.name}: "
            f"{[f.rule_id for f in report.findings]}"
        )


@given(
    st.sampled_from(PATTERNS),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_distinct_seeds_give_distinct_digests_usually(pattern, seed):
    """Digest covers the seed: consecutive seeds never collide."""
    a = ScenarioSpec(pattern=pattern, seed=seed)
    b = ScenarioSpec(pattern=pattern, seed=seed + 1)
    assert a.digest() != b.digest()
